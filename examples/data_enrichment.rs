//! Data enrichment for machine learning (the paper's Table V workflow):
//! discover joinable tables in a synthetic lake, left-join them onto a
//! query table, and measure how much the added features improve a random
//! forest, compared to no-join and equi-join.
//!
//! ```bash
//! cargo run --release --example data_enrichment
//! ```

use pexeso::baselines::stringjoin::{EquiJoinIndex, StringColumns};
use pexeso::ml::augment::{AugmentConfig, JoinMapping};
use pexeso::ml::tasks::{evaluate_with_mapping, make_task, TaskKind, TaskSpec};
use pexeso::pipeline::{dedupe_mapping, embed_query, embed_synthetic_lake, join_mapping};
use pexeso::prelude::*;

fn main() -> Result<()> {
    // A WDC-like lake with planted latent signal.
    let lake = SyntheticLake::generate(GeneratorConfig::wdc_like(0.05, 7));
    let embedder = SemanticEmbedder::new(48, lake.lexicon.clone());
    let mut embedded = embed_synthetic_lake(&embedder, &lake)?;
    embedded.columns.store_mut().normalize_all();
    let index = PexesoIndex::build(embedded.columns.clone(), Euclidean, IndexOptions::default())?;
    println!(
        "lake: {} tables, {} key cells | index: {:.1} MB built in {:?}\n",
        lake.tables.len(),
        lake.total_key_cells(),
        index.index_bytes() as f64 / 1e6,
        index.build_time()
    );

    // A classification task whose signal lives in the lake.
    let task = make_task(
        &lake,
        TaskSpec {
            name: "category prediction".into(),
            kind: TaskKind::Classification,
            domain: 0,
            n_rows: 100,
            seed: 3,
        },
    );
    let aug = AugmentConfig {
        min_coverage: 10,
        ..Default::default()
    };

    // no-join baseline.
    let empty = JoinMapping::new(100);
    let (no_join, _) = evaluate_with_mapping(&task, &lake, &empty, &aug);
    println!(
        "no-join      micro-F1 = {:.3} ± {:.3}",
        no_join.metric_mean, no_join.metric_std
    );

    // equi-join enrichment.
    let mut repo = StringColumns::default();
    for t in &lake.tables {
        repo.add(t.table.name(), t.key_values().to_vec());
    }
    let equi = EquiJoinIndex::build(&repo);
    let (equi_hits, _) = equi.search(task.query.key_values(), 0.5);
    let mut equi_mapping = JoinMapping::new(100);
    for hit in &equi_hits {
        let table = &lake.tables[hit.column];
        for (qi, q) in task.query.key_values().iter().enumerate() {
            for (ri, s) in table.key_values().iter().enumerate() {
                if q.trim() == s.trim() {
                    equi_mapping.matches[qi].push((hit.column, ri));
                }
            }
        }
    }
    let (equi_out, _) = evaluate_with_mapping(&task, &lake, &equi_mapping, &aug);
    println!(
        "equi-join    micro-F1 = {:.3} ± {:.3}   ({} tables joined, {:.0}% rows matched)",
        equi_out.metric_mean,
        equi_out.metric_std,
        equi_hits.len(),
        equi_mapping.row_match_rate() * 100.0
    );

    // PEXESO enrichment.
    let tau = Tau::Ratio(0.06);
    let query = embed_query(&embedder, task.query.key_values());
    let result = index.execute(
        &Query::threshold(tau, JoinThreshold::Ratio(0.5)),
        query.store(),
    )?;
    let cols: Vec<ColumnId> = result
        .hits
        .iter()
        .map(|h| ColumnId(h.external_id as u32))
        .collect();
    let mut mapping = join_mapping(&index, &embedded, &query, &cols, tau)?;
    dedupe_mapping(&mut mapping);
    let (pexeso_out, n_features) = evaluate_with_mapping(&task, &lake, &mapping, &aug);
    println!(
        "PEXESO       micro-F1 = {:.3} ± {:.3}   ({} tables joined, {:.0}% rows matched, {} features added)",
        pexeso_out.metric_mean,
        pexeso_out.metric_std,
        cols.len(),
        mapping.row_match_rate() * 100.0,
        n_features
    );
    Ok(())
}
