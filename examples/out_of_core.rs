//! Out-of-core search over a lake too big to hold one index in memory
//! (Section IV): partition the columns with JSD clustering, persist one
//! PEXESO index per partition, then answer queries by streaming partitions
//! from disk — sequentially (the paper's mode) and with a parallel-worker
//! extension.
//!
//! ```bash
//! cargo run --release --example out_of_core
//! ```

use pexeso::pipeline::{embed_query, embed_synthetic_lake};
use pexeso::prelude::*;

fn main() -> Result<()> {
    // A larger WDC-like lake.
    let lake = SyntheticLake::generate(GeneratorConfig::wdc_like(0.2, 9));
    let embedder = SemanticEmbedder::new(48, lake.lexicon.clone());
    let mut embedded = embed_synthetic_lake(&embedder, &lake)?;
    embedded.columns.store_mut().normalize_all();
    println!(
        "lake: {} tables / {} columns / {} vectors",
        lake.tables.len(),
        embedded.columns.n_columns(),
        embedded.columns.n_vectors()
    );

    // Partition with JSD clustering and persist to disk.
    let dir = std::env::temp_dir().join("pexeso_out_of_core_example");
    let partitioned = PartitionedLake::build(
        &embedded.columns,
        Euclidean,
        &PartitionConfig {
            k: 6,
            method: PartitionMethod::JsdKmeans,
            ..Default::default()
        },
        &IndexOptions {
            num_pivots: 3,
            levels: Some(4),
            ..Default::default()
        },
        &dir,
    )?;
    println!(
        "partitioned into {} files, {:.1} MB on disk at {}\n",
        partitioned.num_partitions(),
        partitioned.disk_bytes()? as f64 / 1e6,
        dir.display()
    );

    // Query: one of the generated domains.
    let gen_query = lake.make_query(0, 20, 123);
    let query = embed_query(&embedder, gen_query.key_values());
    let tau = Tau::Ratio(0.06);
    let t = JoinThreshold::Ratio(0.5);

    // Sequential out-of-core search (disk load included in the timing).
    let resp = partitioned.execute(&Query::threshold(tau, t), query.store())?;
    let (hits, stats) = (resp.hits, resp.stats);
    println!(
        "sequential search: {} joinable columns in {:?} ({} exact distance computations)",
        hits.len(),
        stats.total_time,
        stats.distance_computations
    );
    for h in hits.iter().take(5) {
        println!(
            "  {} . {}  (match_count {})",
            h.table_name, h.column_name, h.match_count
        );
    }
    if hits.len() > 5 {
        println!("  … and {} more", hits.len() - 5);
    }

    // Parallel extension: identical results, overlapping I/O and CPU.
    let par = partitioned.execute(
        &Query::threshold(tau, t).with_policy(ExecPolicy::Parallel { threads: 3 }),
        query.store(),
    )?;
    let (par_hits, par_stats) = (par.hits, par.stats);
    assert_eq!(hits, par_hits);
    println!(
        "\nparallel search (3 workers): same results in {:?}",
        par_stats.total_time
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
