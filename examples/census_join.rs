//! The paper's motivating example (Table I): joining a population table's
//! "Race" column with a median-household-income table whose categories use
//! different terminology. Equi-join finds only the exact matches; PEXESO's
//! semantic similarity join recovers all four.
//!
//! ```bash
//! cargo run --release --example census_join
//! ```

use pexeso::baselines::stringjoin::{string_join_search, EquiMatcher, StringColumns};
use pexeso::pipeline::{dedupe_mapping, embed_query, join_mapping, EmbeddedLakeBuilder};
use pexeso::prelude::*;

fn main() -> Result<()> {
    // Table Ia: Population (the query table).
    let race = vec![
        "White".to_string(),
        "Black".to_string(),
        "American Indian/Alaska Native".to_string(),
        "Hawaiian/Guamanian/Samoan".to_string(),
    ];
    // Table Ib: Median household income (in the data lake).
    let income_col1 = vec![
        "White".to_string(),
        "Black".to_string(),
        "Mainland Indigenous".to_string(),
        "Pacific Islander".to_string(),
    ];
    let income_col2 = ["65,902", "41,511", "44,772", "61,911"];

    // The semantic knowledge a pre-trained embedding model would supply.
    let mut lexicon = Lexicon::new();
    lexicon.add_synonym_set(["American Indian/Alaska Native", "Mainland Indigenous"]);
    lexicon.add_synonym_set(["Hawaiian/Guamanian/Samoan", "Pacific Islander"]);
    let embedder = SemanticEmbedder::new(96, lexicon);

    // --- equi-join baseline -------------------------------------------
    let mut repo = StringColumns::default();
    repo.add("income.Col 1", income_col1.clone());
    let (equi_hits, _) = string_join_search(&EquiMatcher, &race, &repo, 0.9);
    println!("equi-join: {} joinable tables at T=90%", equi_hits.len());
    let (equi_hits_loose, _) = string_join_search(&EquiMatcher, &race, &repo, 0.5);
    println!(
        "equi-join at T=50%: {} joinable (only 'White'/'Black' match exactly)\n",
        equi_hits_loose.len()
    );

    // --- PEXESO --------------------------------------------------------
    let lake = EmbeddedLakeBuilder::new(&embedder)
        .add_column("income", "Col 1", &income_col1)
        .build()?;
    let index = PexesoIndex::build(lake.columns.clone(), Euclidean, IndexOptions::default())?;
    let query = embed_query(&embedder, &race);
    let tau = Tau::Ratio(0.06);
    let result = index.execute(
        &Query::threshold(tau, JoinThreshold::Ratio(0.9)),
        query.store(),
    )?;
    println!("PEXESO: {} joinable tables at T=90%", result.hits.len());

    // Present the record-level mapping, as the framework does for users
    // (external ids equal insertion order in the embedded lake).
    let cols: Vec<ColumnId> = result
        .hits
        .iter()
        .map(|h| ColumnId(h.external_id as u32))
        .collect();
    let mut mapping = join_mapping(&index, &lake, &query, &cols, tau)?;
    dedupe_mapping(&mut mapping);
    println!("\njoined result (Race -> income category -> Median income):");
    for (qi, matches) in mapping.matches.iter().enumerate() {
        for &(_, row) in matches {
            println!(
                "  {:<33} -> {:<20} -> ${}",
                race[qi], income_col1[row], income_col2[row]
            );
        }
        if matches.is_empty() {
            println!("  {:<33} -> (no match)", race[qi]);
        }
    }
    Ok(())
}
