//! Quickstart: index a few lake columns and find the ones joinable with a
//! query column.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use pexeso::pipeline::{embed_query, EmbeddedLakeBuilder};
use pexeso::prelude::*;

fn main() -> Result<()> {
    // 1. The embedding model. A lexicon carries the semantic knowledge a
    //    pre-trained model would have learned from its corpus; here we
    //    register one synonym pair by hand.
    let mut lexicon = Lexicon::new();
    lexicon.add_synonym_set(["New York City", "NYC", "Big Apple"]);
    let embedder = SemanticEmbedder::new(64, lexicon);

    // 2. Offline: embed the key columns of the data lake and build the
    //    PEXESO index.
    let cities = vec![
        "Big Apple".to_string(),
        "Los Angeles".to_string(),
        "Chicago".to_string(),
        "Houston".to_string(),
    ];
    let products = vec![
        "Widget".to_string(),
        "Gadget".to_string(),
        "Sprocket".to_string(),
        "Doohickey".to_string(),
    ];
    let lake = EmbeddedLakeBuilder::new(&embedder)
        .add_column("city_stats", "city", &cities)
        .add_column("inventory", "product", &products)
        .build()?;
    let index = PexesoIndex::build(lake.columns.clone(), Euclidean, IndexOptions::default())?;

    // 3. Online: embed the query column and search. τ is 6 % of the
    //    maximum distance, T requires 75 % of query records to match.
    let query_values = vec![
        "new york city".to_string(),
        "los angeles".to_string(),
        "chicago".to_string(),
        "houstan".to_string(), // misspelled on purpose
    ];
    let query = embed_query(&embedder, &query_values);
    // One request type for every ranking mode and backend.
    let q = Query::threshold(Tau::Ratio(0.06), JoinThreshold::Ratio(0.75));
    let result = index.execute(&q, query.store())?;

    println!("query column: {query_values:?}\n");
    println!("joinable columns ({} found):", result.hits.len());
    for hit in &result.hits {
        println!(
            "  {}.{}  ({} of {} query records matched)",
            hit.table_name,
            hit.column_name,
            hit.match_count,
            query_values.len()
        );
    }
    println!("\nsearch stats:");
    println!(
        "  distance computations: {}",
        result.stats.distance_computations
    );
    println!("  candidate pairs:       {}", result.stats.candidate_pairs);
    println!("  total time:            {:?}", result.stats.total_time);
    Ok(())
}
