//! End-to-end integration: synthetic lake → embedding → index → search →
//! ground-truth evaluation → join mapping → ML augmentation. Exercises the
//! full Fig.-1 workflow across all five crates.

use std::collections::HashSet;

use pexeso::pipeline::{
    dedupe_mapping, embed_query, embed_synthetic_lake, embed_tables, join_mapping,
};
use pexeso::prelude::*;
use pexeso_lake::generator::GeneratorConfig;
use pexeso_lake::keycol::KeyColumnConfig;
use pexeso_ml::augment::AugmentConfig;
use pexeso_ml::tasks::{evaluate_with_mapping, make_task, TaskKind, TaskSpec};

fn wdc_workload(
    seed: u64,
) -> (
    SyntheticLake,
    SemanticEmbedder,
    pexeso::pipeline::EmbeddedLake,
) {
    let mut cfg = GeneratorConfig::wdc_like(0.05, seed);
    cfg.num_tables = 60;
    let lake = SyntheticLake::generate(cfg);
    let embedder = SemanticEmbedder::new(48, lake.lexicon.clone());
    let mut embedded = embed_synthetic_lake(&embedder, &lake).unwrap();
    embedded.columns.store_mut().normalize_all();
    (lake, embedder, embedded)
}

#[test]
fn discovery_recall_beats_equi_join_on_noisy_lake() {
    let (lake, embedder, embedded) = wdc_workload(5);
    let index =
        PexesoIndex::build(embedded.columns.clone(), Euclidean, IndexOptions::default()).unwrap();

    let t_ratio = 0.5;
    let mut pexeso_recalls = Vec::new();
    let mut equi_recalls = Vec::new();
    let equi_repo = {
        let mut repo = pexeso::baselines::stringjoin::StringColumns::default();
        for t in &lake.tables {
            repo.add(t.table.name(), t.key_values().to_vec());
        }
        pexeso::baselines::stringjoin::EquiJoinIndex::build(&repo)
    };

    let mut evaluated = 0;
    for i in 0..30 {
        let q = lake.make_query(i % lake.config.num_domains, 15, 1000 + i as u64);
        let truth = lake.ground_truth(&q, t_ratio);
        if truth.is_empty() {
            continue;
        }
        evaluated += 1;
        // PEXESO.
        let emb = embed_query(&embedder, q.key_values());
        let result = index
            .execute(
                &Query::threshold(Tau::Ratio(0.06), JoinThreshold::Ratio(t_ratio)),
                emb.store(),
            )
            .unwrap();
        let retrieved: HashSet<usize> = result
            .hits
            .iter()
            .map(|h| embedded.provenance[h.external_id as usize].table_idx)
            .collect();
        let inter = retrieved.intersection(&truth).count();
        pexeso_recalls.push(inter as f64 / truth.len() as f64);
        // Precision should be near-perfect: cross-entity matches are rare.
        if !retrieved.is_empty() {
            let p = inter as f64 / retrieved.len() as f64;
            assert!(p >= 0.6, "query {i}: precision {p} too low");
        }
        // equi-join.
        let (equi_hits, _) = equi_repo.search(q.key_values(), t_ratio);
        let equi_retrieved: HashSet<usize> = equi_hits.iter().map(|h| h.column).collect();
        equi_recalls.push(equi_retrieved.intersection(&truth).count() as f64 / truth.len() as f64);
    }
    assert!(evaluated >= 5, "need non-trivial queries, got {evaluated}");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (pr, er) = (mean(&pexeso_recalls), mean(&equi_recalls));
    assert!(
        pr > er + 0.1,
        "semantic search should out-recall equi-join: PEXESO {pr} vs equi {er}"
    );
    assert!(pr > 0.7, "PEXESO recall too low: {pr}");
}

#[test]
fn full_enrichment_pipeline_improves_model() {
    let (lake, embedder, embedded) = wdc_workload(6);
    let index =
        PexesoIndex::build(embedded.columns.clone(), Euclidean, IndexOptions::default()).unwrap();

    let task = make_task(
        &lake,
        TaskSpec {
            name: "clf".into(),
            kind: TaskKind::Classification,
            domain: 0,
            n_rows: 80,
            seed: 9,
        },
    );
    let tau = Tau::Ratio(0.06);
    let query = embed_query(&embedder, task.query.key_values());
    let result = index
        .execute(
            &Query::threshold(tau, JoinThreshold::Ratio(0.5)),
            query.store(),
        )
        .unwrap();
    // External ids equal insertion order in the embedded lake.
    let cols: Vec<ColumnId> = result
        .hits
        .iter()
        .map(|h| ColumnId(h.external_id as u32))
        .collect();
    assert!(!cols.is_empty(), "discovery must find joinable tables");

    let mut mapping = join_mapping(&index, &embedded, &query, &cols, tau).unwrap();
    dedupe_mapping(&mut mapping);
    assert!(
        mapping.row_match_rate() > 0.5,
        "most query rows should be matched"
    );

    let aug_cfg = AugmentConfig {
        min_coverage: 8,
        ..Default::default()
    };
    let empty = pexeso_ml::augment::JoinMapping::new(80);
    let (no_join, _) = evaluate_with_mapping(&task, &lake, &empty, &aug_cfg);
    let (with_join, n_features) = evaluate_with_mapping(&task, &lake, &mapping, &aug_cfg);
    assert!(n_features > 0, "augmentation must add features");
    assert!(
        with_join.metric_mean > no_join.metric_mean,
        "join features should help: {} vs {}",
        with_join.metric_mean,
        no_join.metric_mean
    );
}

#[test]
fn csv_ingestion_to_search_roundtrip() {
    // Write three CSV tables to disk, ingest via the real CSV + key-column
    // path, search with a query column, check the expected table wins.
    let dir = std::env::temp_dir().join(format!("pexeso_e2e_csv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let games = "Name,Year\nSuper Mario World,1990\nZelda Ocarina,1998\nMetroid Prime,2002\nHalo Infinite,2021\nDoom Eternal,2020\n";
    let cities = "City,Population\nOslo,700000\nBergen,290000\nTrondheim,210000\nStavanger,140000\nDrammen,100000\n";
    let sales = "title,units\nsuper mario world,20000\nzelda ocarina,15000\nmetroid prime,9000\nhalo infinite,12000\ndoom eternal,11000\n";
    for (name, text) in [("games", games), ("cities", cities), ("sales", sales)] {
        std::fs::write(dir.join(format!("{name}.csv")), text).unwrap();
    }

    let mut tables = Vec::new();
    for name in ["games", "cities", "sales"] {
        tables.push(pexeso_lake::csv::read_table_file(&dir.join(format!("{name}.csv"))).unwrap());
    }
    let embedder = HashEmbedder::new(64);
    let mut lake = embed_tables(
        &embedder,
        &tables,
        &KeyColumnConfig {
            min_rows: 3,
            ..Default::default()
        },
    )
    .unwrap();
    lake.columns.store_mut().normalize_all();
    assert_eq!(
        lake.columns.n_columns(),
        3,
        "all three tables have key columns"
    );

    let index =
        PexesoIndex::build(lake.columns.clone(), Euclidean, IndexOptions::default()).unwrap();
    let query_vals: Vec<String> = ["Super Mario World", "Zelda Ocarina", "Metroid Prime"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let query = embed_query(&embedder, &query_vals);
    let result = index
        .execute(
            &Query::threshold(Tau::Ratio(0.06), JoinThreshold::Ratio(0.9)),
            query.store(),
        )
        .unwrap();
    let hit_tables: Vec<usize> = result
        .hits
        .iter()
        .map(|h| lake.provenance[h.external_id as usize].table_idx)
        .collect();
    // Both the games table and the lower-cased sales table join; cities not.
    assert!(hit_tables.contains(&0), "games should join: {hit_tables:?}");
    assert!(
        hit_tables.contains(&2),
        "sales (case-noisy) should join: {hit_tables:?}"
    );
    assert!(
        !hit_tables.contains(&1),
        "cities must not join: {hit_tables:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn persisted_partitions_survive_reopen_and_match_in_memory() {
    let (_lake, embedder, embedded) = wdc_workload(7);
    let dir = std::env::temp_dir().join(format!("pexeso_e2e_ooc_{}", std::process::id()));

    let built = PartitionedLake::build(
        &embedded.columns,
        Euclidean,
        &PartitionConfig {
            k: 4,
            method: PartitionMethod::JsdKmeans,
            ..Default::default()
        },
        &IndexOptions::default(),
        &dir,
    )
    .unwrap();
    assert!(built.num_partitions() >= 2);

    let index =
        PexesoIndex::build(embedded.columns.clone(), Euclidean, IndexOptions::default()).unwrap();
    let q_values: Vec<String> = embedded
        .provenance
        .iter()
        .take(1)
        .flat_map(|_| {
            // Use a handful of repository strings as the query.
            Vec::new()
        })
        .collect();
    let _ = q_values;
    let query = {
        let mut store = VectorStore::new(embedded.columns.dim());
        for i in 0..10 {
            store.push(embedded.columns.store().get_raw(i * 3)).unwrap();
        }
        store
    };
    let tau = Tau::Ratio(0.06);
    let t = JoinThreshold::Ratio(0.3);
    let in_mem: Vec<u64> = index
        .execute(&Query::threshold(tau, t), &query)
        .unwrap()
        .hits
        .iter()
        .map(|h| h.external_id)
        .collect();

    let reopened = PartitionedLake::open(&dir).unwrap();
    let resp = reopened.execute(&Query::threshold(tau, t), &query).unwrap();
    let got: Vec<u64> = resp.hits.iter().map(|h| h.external_id).collect();
    assert_eq!(got, in_mem);
    assert!(resp.stats.total_time.as_nanos() > 0);
    let _ = embedder;

    std::fs::remove_dir_all(&dir).ok();
}
