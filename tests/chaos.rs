//! Process-level crash recovery: SIGKILL a real `pexeso serve` daemon
//! mid-`APPLY` and prove a restarted daemon serves exactly what a fresh
//! open of the directory computes.
//!
//! This is the one failure shape the in-process chaos sweep
//! (`crates/pexeso-delta/tests/crash_chaos.rs`) cannot produce: the
//! whole OS process dies — worker threads, queued connections, the
//! snapshot cell, everything — with the deployment directory left
//! behind. The daemon is armed with `--fault-profile
//! serve.apply:0:delay:...`, which holds the first APPLY open long
//! enough for the kill to land inside it deterministically.

use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pexeso")
}

fn run(args: &[&str]) -> String {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn pexeso");
    assert!(
        out.status.success(),
        "pexeso {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Start a daemon on an ephemeral port and parse the bound address from
/// its startup line (printed only once the listener is accepting).
fn start_daemon(index: &Path, fault_profile: Option<&str>) -> (Child, String) {
    let mut args = vec![
        "serve".to_string(),
        "--index".to_string(),
        index.display().to_string(),
        "--addr".to_string(),
        "127.0.0.1:0".to_string(),
        "--workers".to_string(),
        "2".to_string(),
    ];
    if let Some(profile) = fault_profile {
        args.push("--fault-profile".to_string());
        args.push(profile.to_string());
    }
    let mut child = Command::new(bin())
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    let stdout = child.stdout.take().expect("daemon stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read daemon startup line");
    let addr = line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unparsable startup line: {line:?}"))
        .to_string();
    (child, addr)
}

/// The `  table . column  (n records matched)` lines of a report.
fn hit_lines(report: &str) -> Vec<String> {
    report
        .lines()
        .filter(|l| l.starts_with("  "))
        .map(|l| l.to_string())
        .collect()
}

#[test]
fn daemon_killed_mid_apply_recovers_on_restart() {
    let root = std::env::temp_dir().join(format!("pexeso_proc_chaos_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let lake = root.join("lake");
    let newlake = root.join("new");
    let idx = root.join("idx");
    std::fs::create_dir_all(&lake).unwrap();
    std::fs::create_dir_all(&newlake).unwrap();

    // Three base tables; table1 and the later delta table share names
    // with the query, so both must join.
    for (t, city, joins) in [(1, "Berlin", true), (2, "Rome", false), (3, "Oslo", false)] {
        let mut csv = String::from("name,city\n");
        for i in 1..=12 {
            if joins {
                csv.push_str(&format!("Person Alpha {i},{city}\n"));
            } else {
                csv.push_str(&format!("Other {t}_{i} Item,{city}\n"));
            }
        }
        std::fs::write(lake.join(format!("table{t}.csv")), csv).unwrap();
    }
    let mut delta_csv = String::from("name,city\n");
    for i in 1..=10 {
        delta_csv.push_str(&format!("Person Alpha {i},Madrid\n"));
    }
    std::fs::write(newlake.join("table9.csv"), delta_csv).unwrap();
    let mut query_csv = String::from("name,score\n");
    for i in 1..=10 {
        query_csv.push_str(&format!("Person Alpha {i},{i}\n"));
    }
    let query = root.join("query.csv");
    std::fs::write(&query, query_csv).unwrap();

    run(&[
        "index",
        "--lake",
        lake.to_str().unwrap(),
        "--out",
        idx.to_str().unwrap(),
        "--dim",
        "32",
        "--partitions",
        "2",
    ]);

    // Daemon A: the first APPLY stalls for 5 s inside the armed fault
    // window — plenty of room to SIGKILL it mid-publish.
    let (mut daemon_a, addr_a) = start_daemon(&idx, Some("serve.apply:0:delay:5000"));

    // Append a new table to the delta log offline, then ask the daemon
    // to publish it; kill -9 while the APPLY is in flight.
    run(&[
        "ingest",
        "--index",
        idx.to_str().unwrap(),
        "--lake",
        newlake.to_str().unwrap(),
    ]);
    let mut apply = Command::new(bin())
        .args(["query", "--addr", &addr_a, "--apply"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn apply client");
    std::thread::sleep(Duration::from_millis(500));
    daemon_a.kill().expect("SIGKILL daemon");
    daemon_a.wait().expect("reap daemon");
    // The apply client loses its connection and exits with an error —
    // that is the point.
    let apply_status = apply.wait().expect("reap apply client");
    assert!(
        !apply_status.success(),
        "APPLY must fail when the daemon dies"
    );

    // Daemon B: plain restart over the same directory. Recovery must be
    // automatic — WAL replay on snapshot load, no operator step.
    let (daemon_b, addr_b) = start_daemon(&idx, None);
    let served = run(&[
        "query",
        "--addr",
        &addr_b,
        "--query",
        query.to_str().unwrap(),
        "--t",
        "0.5",
    ]);
    let local = run(&[
        "search",
        "--index",
        idx.to_str().unwrap(),
        "--query",
        query.to_str().unwrap(),
        "--t",
        "0.5",
    ]);

    let served_hits = hit_lines(&served);
    let local_hits = hit_lines(&local);
    assert!(
        served_hits.iter().any(|l| l.contains("table9")),
        "delta table ingested before the crash must survive it: {served}"
    );
    assert_eq!(
        served_hits, local_hits,
        "restarted daemon must serve exactly what a fresh open computes\n\
         served:\n{served}\nlocal:\n{local}"
    );

    run(&["query", "--addr", &addr_b, "--shutdown"]);
    let mut daemon_b = daemon_b;
    daemon_b.wait().expect("reap daemon B");
    std::fs::remove_dir_all(&root).ok();
}
