//! Shim-compat suite: the **only** module that may call the deprecated
//! legacy entry points. Each shim must be a faithful thin delegate of the
//! unified `Query`/`Queryable` path: same hits, same counts, same
//! ordering under its own documented (legacy) contract.
#![allow(deprecated)]

use pexeso::prelude::*;
use pexeso_core::partition::PartitionMethod;

fn instance(seed: u64, n_cols: usize, col_len: usize, nq: usize) -> (ColumnSet, VectorStore) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let dim = 10;
    let mut rng = StdRng::seed_from_u64(seed);
    let unit = move |rng: &mut StdRng| {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n.max(1e-9));
        v
    };
    let mut columns = ColumnSet::new(dim);
    for c in 0..n_cols {
        let vecs: Vec<Vec<f32>> = (0..col_len).map(|_| unit(&mut rng)).collect();
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column("t", &format!("c{c}"), c as u64, refs)
            .unwrap();
    }
    let mut query = VectorStore::new(dim);
    for _ in 0..nq {
        let v = unit(&mut rng);
        query.push(&v).unwrap();
    }
    (columns, query)
}

fn build(columns: ColumnSet) -> PexesoIndex<Euclidean> {
    PexesoIndex::build(
        columns,
        Euclidean,
        IndexOptions {
            num_pivots: 3,
            levels: Some(3),
            seed: 7,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Legacy in-memory entry points delegate to the same engine `execute`
/// runs: identical hit sets and counts (legacy hits are ColumnId-keyed;
/// external ids equal insertion order in this fixture).
#[test]
fn index_shims_match_execute() {
    let (columns, query) = instance(3, 12, 18, 8);
    let index = build(columns);
    let tau = Tau::Ratio(0.2);
    let t = JoinThreshold::Ratio(0.4);

    let unified = index.execute(&Query::threshold(tau, t), &query).unwrap();
    let to_pairs = |hits: &[SearchHit]| -> Vec<(u32, u32)> {
        hits.iter().map(|h| (h.column.0, h.match_count)).collect()
    };
    let g_pairs: Vec<(u32, u32)> = unified
        .hits
        .iter()
        .map(|h| (h.external_id as u32, h.match_count))
        .collect();

    assert_eq!(
        to_pairs(&index.search(&query, tau, t).unwrap().hits),
        g_pairs
    );
    assert_eq!(
        to_pairs(
            &index
                .search_with(&query, tau, t, SearchOptions::default())
                .unwrap()
                .hits
        ),
        g_pairs
    );
    let batched = index
        .search_many(
            &[&query, &query],
            tau,
            t,
            SearchOptions::default(),
            ExecPolicy::Parallel { threads: 2 },
        )
        .unwrap();
    for r in batched {
        assert_eq!(to_pairs(&r.hits), g_pairs);
    }

    for k in [0usize, 1, 4, 100] {
        let unified = index.execute(&Query::topk(tau, k), &query).unwrap();
        let g_pairs: Vec<(u32, u32)> = unified
            .hits
            .iter()
            .map(|h| (h.external_id as u32, h.match_count))
            .collect();
        assert_eq!(
            to_pairs(&index.search_topk(&query, tau, k).unwrap().hits),
            g_pairs,
            "k={k}"
        );
        assert_eq!(
            to_pairs(
                &index
                    .search_topk_with(&query, tau, k, SearchOptions::default())
                    .unwrap()
                    .hits
            ),
            g_pairs,
            "k={k}"
        );
        assert_eq!(
            to_pairs(&index.search_topk_exhaustive(&query, tau, k).unwrap().hits),
            g_pairs,
            "exhaustive k={k}"
        );
        let batched = index
            .search_topk_many(
                &[&query],
                tau,
                k,
                SearchOptions::default(),
                ExecPolicy::Sequential,
            )
            .unwrap();
        assert_eq!(to_pairs(&batched[0].hits), g_pairs, "batched k={k}");
    }
}

/// Legacy out-of-core and resident entry points delegate to the unified
/// partition loop: identical global hits.
#[test]
fn lake_and_resident_shims_match_execute() {
    let (columns, query) = instance(5, 14, 14, 7);
    let dir = std::env::temp_dir().join(format!("pexeso_shim_ooc_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let lake = PartitionedLake::build(
        &columns,
        Euclidean,
        &PartitionConfig {
            k: 3,
            method: PartitionMethod::JsdKmeans,
            ..Default::default()
        },
        &IndexOptions {
            num_pivots: 3,
            levels: Some(3),
            ..Default::default()
        },
        &dir,
    )
    .unwrap();
    let resident = ResidentPartitions::load(&lake, Euclidean).unwrap();
    let tau = Tau::Ratio(0.2);
    let t = JoinThreshold::Ratio(0.4);
    for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel { threads: 3 }] {
        let unified = lake
            .execute(&Query::threshold(tau, t).with_policy(policy), &query)
            .unwrap();
        let (hits, _) = lake
            .search_with_policy(Euclidean, &query, tau, t, SearchOptions::default(), policy)
            .unwrap();
        assert_eq!(hits, unified.hits, "lake threshold {policy:?}");
        let (hits, _) = resident
            .search_with_policy(&query, tau, t, SearchOptions::default(), policy)
            .unwrap();
        assert_eq!(hits, unified.hits, "resident threshold {policy:?}");

        let unified_k = lake
            .execute(&Query::topk(tau, 5).with_policy(policy), &query)
            .unwrap();
        let (hits, _) = lake
            .search_topk_with_policy(Euclidean, &query, tau, 5, SearchOptions::default(), policy)
            .unwrap();
        assert_eq!(hits, unified_k.hits, "lake topk {policy:?}");
        let (hits, _) = resident
            .search_topk_with_policy(&query, tau, 5, SearchOptions::default(), policy)
            .unwrap();
        assert_eq!(hits, unified_k.hits, "resident topk {policy:?}");
    }
    let (seq, _) = lake
        .search(Euclidean, &query, tau, t, SearchOptions::default())
        .unwrap();
    let (par, _) = lake
        .search_parallel(Euclidean, &query, tau, t, SearchOptions::default(), 3)
        .unwrap();
    let (k_seq, _) = lake
        .search_topk(Euclidean, &query, tau, 5, SearchOptions::default())
        .unwrap();
    let unified = lake.execute(&Query::threshold(tau, t), &query).unwrap();
    let unified_k = lake.execute(&Query::topk(tau, 5), &query).unwrap();
    assert_eq!(seq, unified.hits);
    assert_eq!(par, unified.hits);
    assert_eq!(k_seq, unified_k.hits);
    std::fs::remove_dir_all(&dir).ok();
}

/// `ServeClient::topk` is a deprecated alias of `search_topk`: same
/// request bytes, same reply.
#[test]
fn client_topk_alias_matches_search_topk() {
    use pexeso::serve::{query_payload, ServeClient, ServeConfig, Server};
    let (columns, query) = instance(9, 8, 12, 6);
    let dir = std::env::temp_dir().join(format!("pexeso_shim_serve_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    PartitionedLake::build(
        &columns,
        Euclidean,
        &PartitionConfig {
            k: 2,
            ..Default::default()
        },
        &IndexOptions {
            num_pivots: 3,
            levels: Some(3),
            ..Default::default()
        },
        &dir,
    )
    .unwrap();
    LakeManifest::next_build(&dir, "test", 10)
        .unwrap()
        .write(&dir)
        .unwrap();
    let handle = Server::start(&dir, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let client = ServeClient::connect(handle.addr()).unwrap();
    let payload = || query_payload("euclidean", Tau::Ratio(0.2), ExecPolicy::Sequential, &query);
    let via_new = client.search_topk(payload(), 5).unwrap();
    let via_alias = client.topk(payload(), 5).unwrap();
    assert_eq!(via_new.hits, via_alias.hits);
    assert_eq!(via_new.generation, via_alias.generation);
    client.shutdown().unwrap();
    drop(client);
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}
