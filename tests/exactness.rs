//! The central correctness property of the paper: PEXESO is an **exact**
//! algorithm. Across random instances, parameter settings, and ablations,
//! its answer set must equal the naive scan's — and so must every exact
//! baseline (CTREE, EPT, PEXESO-H, partitioned/out-of-core search).

use proptest::prelude::*;

use pexeso::baselines::covertree::CoverTreeIndex;
use pexeso::baselines::ept::EptIndex;
use pexeso::baselines::pexeso_h::PexesoHIndex;
use pexeso::baselines::VectorJoinSearch;
use pexeso::prelude::*;

/// Build a unit-normalised random repository + query from a seed.
fn instance(
    seed: u64,
    n_cols: usize,
    col_len: usize,
    nq: usize,
    dim: usize,
) -> (ColumnSet, VectorStore) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let unit = |rng: &mut StdRng| {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n.max(1e-9));
        v
    };
    let mut columns = ColumnSet::new(dim);
    for c in 0..n_cols {
        let vecs: Vec<Vec<f32>> = (0..col_len).map(|_| unit(&mut rng)).collect();
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column("t", &format!("c{c}"), c as u64, refs)
            .unwrap();
    }
    let mut query = VectorStore::new(dim);
    for _ in 0..nq {
        let v = unit(&mut rng);
        query.push(&v).unwrap();
    }
    (columns, query)
}

fn expected_ids(
    columns: &ColumnSet,
    query: &VectorStore,
    tau: Tau,
    t: JoinThreshold,
) -> Vec<ColumnId> {
    let (hits, _) = naive_search(columns, &Euclidean, query, tau, t, false).unwrap();
    hits.into_iter().map(|h| h.column).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// PEXESO ≡ naive scan over random instances and parameters.
    #[test]
    fn pexeso_equals_naive(
        seed in 0u64..10_000,
        tau_pct in 0.02f32..0.3,
        t_ratio in 0.1f64..0.9,
        pivots in 1usize..6,
        levels in 1usize..7,
    ) {
        let (columns, query) = instance(seed, 10, 15, 6, 12);
        let tau = Tau::Ratio(tau_pct);
        let t = JoinThreshold::Ratio(t_ratio);
        let expected = expected_ids(&columns, &query, tau, t);
        let index = PexesoIndex::build(
            columns,
            Euclidean,
            IndexOptions {
                num_pivots: pivots,
                levels: Some(levels),
                pivot_selection: PivotSelection::Pca,
                seed,
                ..Default::default()
            },
        ).unwrap();
        // External ids equal insertion order in these fixtures, so the
        // unified external-id ordering matches the naive column-id order.
        let got: Vec<ColumnId> = index.execute(&Query::threshold(tau, t), &query).unwrap()
            .hits.iter().map(|h| ColumnId(h.external_id as u32)).collect();
        prop_assert_eq!(got, expected);
    }

    /// Every lemma ablation and quick-browse toggle stays exact.
    #[test]
    fn ablations_stay_exact(seed in 0u64..10_000, tau_pct in 0.03f32..0.25) {
        let (columns, query) = instance(seed, 8, 12, 5, 10);
        let tau = Tau::Ratio(tau_pct);
        let t = JoinThreshold::Ratio(0.4);
        let expected = expected_ids(&columns, &query, tau, t);
        let index = PexesoIndex::build(columns, Euclidean, IndexOptions::default()).unwrap();
        for flags in [
            LemmaFlags::all(),
            LemmaFlags::without_lemma1(),
            LemmaFlags::without_lemma2(),
            LemmaFlags::without_lemma34(),
            LemmaFlags::without_lemma56(),
        ] {
            for quick_browse in [true, false] {
                let q = Query::threshold(tau, t).with_flags(flags).quick_browse(quick_browse);
                let got: Vec<ColumnId> = index
                    .execute(&q, &query)
                    .unwrap()
                    .hits.iter().map(|h| ColumnId(h.external_id as u32)).collect();
                prop_assert_eq!(&got, &expected, "flags={:?} qb={}", flags, quick_browse);
            }
        }
    }

    /// Exact baselines agree with the naive scan too.
    #[test]
    fn exact_baselines_agree(seed in 0u64..10_000, tau_pct in 0.03f32..0.25) {
        let (columns, query) = instance(seed, 8, 12, 5, 10);
        let tau = Tau::Ratio(tau_pct);
        let t = JoinThreshold::Ratio(0.5);
        let expected = expected_ids(&columns, &query, tau, t);

        let ctree = CoverTreeIndex::build(&columns, Euclidean).unwrap();
        let got: Vec<ColumnId> = ctree.search(&query, tau, t).unwrap().0.iter().map(|h| h.column).collect();
        prop_assert_eq!(&got, &expected, "CTREE");

        let ept = EptIndex::build(&columns, Euclidean, 3, seed).unwrap();
        let got: Vec<ColumnId> = ept.search(&query, tau, t).unwrap().0.iter().map(|h| h.column).collect();
        prop_assert_eq!(&got, &expected, "EPT");

        let h = PexesoHIndex::build(&columns, Euclidean, IndexOptions::default()).unwrap();
        let got: Vec<ColumnId> = h.search(&query, tau, t).unwrap().0.iter().map(|h| h.column).collect();
        prop_assert_eq!(&got, &expected, "PEXESO-H");
    }

    /// Out-of-core partitioned search (every partitioning method) merges to
    /// the same answer as in-memory search.
    #[test]
    fn partitioned_search_is_exact(seed in 0u64..5_000, k in 2usize..5) {
        let (columns, query) = instance(seed, 12, 10, 5, 10);
        let tau = Tau::Ratio(0.12);
        let t = JoinThreshold::Ratio(0.4);
        let expected: Vec<u64> = expected_ids(&columns, &query, tau, t)
            .into_iter().map(|c| c.0 as u64).collect();
        for method in [PartitionMethod::JsdKmeans, PartitionMethod::AvgKmeans, PartitionMethod::Random] {
            let dir = std::env::temp_dir().join(format!(
                "pexeso_prop_ooc_{}_{:?}_{}_{}", seed, method, k, std::process::id()
            ));
            let lake = PartitionedLake::build(
                &columns,
                Euclidean,
                &PartitionConfig { k, method, ..Default::default() },
                &IndexOptions { num_pivots: 3, levels: Some(3), ..Default::default() },
                &dir,
            ).unwrap();
            let resp = lake.execute(&Query::threshold(tau, t), &query).unwrap();
            let got: Vec<u64> = resp.hits.iter().map(|h| h.external_id).collect();
            std::fs::remove_dir_all(&dir).ok();
            prop_assert_eq!(&got, &expected, "method={:?}", method);
        }
    }

    /// Metric-genericity: exactness holds under Manhattan and Chebyshev too.
    #[test]
    fn exact_under_other_metrics(seed in 0u64..5_000, tau_pct in 0.02f32..0.15) {
        let (columns, query) = instance(seed, 8, 10, 5, 8);
        let t = JoinThreshold::Ratio(0.4);

        let tau = Tau::Ratio(tau_pct);
        let (naive_m, _) = naive_search(&columns, &Manhattan, &query, tau, t, false).unwrap();
        let index = PexesoIndex::build(columns.clone(), Manhattan, IndexOptions::default()).unwrap();
        let got: Vec<ColumnId> = index.execute(&Query::threshold(tau, t).expect_metric("manhattan"), &query)
            .unwrap().hits.iter().map(|h| ColumnId(h.external_id as u32)).collect();
        let expected: Vec<ColumnId> = naive_m.iter().map(|h| h.column).collect();
        prop_assert_eq!(got, expected, "Manhattan");

        let (naive_c, _) = naive_search(&columns, &Chebyshev, &query, tau, t, false).unwrap();
        let index = PexesoIndex::build(columns, Chebyshev, IndexOptions::default()).unwrap();
        let got: Vec<ColumnId> = index.execute(&Query::threshold(tau, t).expect_metric("chebyshev"), &query)
            .unwrap().hits.iter().map(|h| ColumnId(h.external_id as u32)).collect();
        let expected: Vec<ColumnId> = naive_c.iter().map(|h| h.column).collect();
        prop_assert_eq!(got, expected, "Chebyshev");
    }
}

/// Degenerate geometries that random sampling rarely produces.
#[test]
fn exactness_on_adversarial_layouts() {
    let dim = 4;
    // All vectors identical; all on a line; clustered at cell boundaries.
    let layouts: Vec<Vec<Vec<f32>>> = vec![
        vec![vec![0.5, 0.5, 0.5, 0.5]; 12],
        (0..12)
            .map(|i| {
                let x = i as f32 / 11.0;
                let mut v = vec![x, 1.0 - x, 0.0, 0.0];
                let n: f32 = v.iter().map(|a| a * a).sum::<f32>().sqrt();
                v.iter_mut().for_each(|a| *a /= n.max(1e-9));
                v
            })
            .collect(),
        (0..12)
            .map(|i| {
                // Values engineered to sit exactly on power-of-two fractions of
                // the span, stressing the cell-boundary epsilon handling.
                let x = (i % 4) as f32 * 0.25;
                let mut v = vec![x, 0.3, 0.1, 1.0];
                let n: f32 = v.iter().map(|a| a * a).sum::<f32>().sqrt();
                v.iter_mut().for_each(|a| *a /= n.max(1e-9));
                v
            })
            .collect(),
    ];
    for (li, layout) in layouts.into_iter().enumerate() {
        let mut columns = ColumnSet::new(dim);
        for (c, chunk) in layout.chunks(4).enumerate() {
            let refs: Vec<&[f32]> = chunk.iter().map(|v| v.as_slice()).collect();
            columns
                .add_column("t", &format!("c{c}"), c as u64, refs)
                .unwrap();
        }
        let mut query = VectorStore::new(dim);
        for v in layout.iter().take(3) {
            query.push(v).unwrap();
        }
        for tau in [Tau::Ratio(0.001), Tau::Ratio(0.05), Tau::Ratio(0.5)] {
            for t in [JoinThreshold::Count(1), JoinThreshold::Ratio(1.0)] {
                let expected = expected_ids(&columns, &query, tau, t);
                let index = PexesoIndex::build(columns.clone(), Euclidean, IndexOptions::default())
                    .unwrap();
                let got: Vec<ColumnId> = index
                    .execute(&Query::threshold(tau, t), &query)
                    .unwrap()
                    .hits
                    .iter()
                    .map(|h| ColumnId(h.external_id as u32))
                    .collect();
                assert_eq!(got, expected, "layout {li} tau={tau:?} t={t:?}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The DaaT-heap verification strategy returns the same answer set as
    /// the default stamp-based one on full end-to-end searches.
    #[test]
    fn daat_strategy_is_exact(seed in 0u64..5_000, tau_pct in 0.03f32..0.25) {
        let (columns, query) = instance(seed, 9, 12, 6, 10);
        let tau = Tau::Ratio(tau_pct);
        let t = JoinThreshold::Ratio(0.5);
        let expected = expected_ids(&columns, &query, tau, t);
        let index = PexesoIndex::build(columns, Euclidean, IndexOptions::default()).unwrap();
        let opts = SearchOptions { verify_strategy: VerifyStrategy::DaatHeap, ..Default::default() };
        let got: Vec<ColumnId> = index
            .execute(&Query::threshold(tau, t).with_options(opts), &query)
            .unwrap()
            .hits.iter().map(|h| ColumnId(h.external_id as u32)).collect();
        prop_assert_eq!(got, expected);
    }
}

// ---------------------------------------------------------------------------
// Differential tests: ExecPolicy::Parallel and the batched early-exit
// distance kernels must be byte-identical to the sequential scalar path.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Parallel build + parallel search produce exactly the sequential
    /// hits, match counts, and verification counters.
    #[test]
    fn parallel_policy_is_byte_identical(
        seed in 0u64..10_000,
        tau_pct in 0.03f32..0.3,
        t_ratio in 0.1f64..0.9,
        threads in 2usize..9,
    ) {
        let (columns, query) = instance(seed, 12, 14, 7, 12);
        let tau = Tau::Ratio(tau_pct);
        let t = JoinThreshold::Ratio(t_ratio);

        let seq_index = PexesoIndex::build(
            columns.clone(),
            Euclidean,
            IndexOptions { exec: ExecPolicy::Sequential, ..Default::default() },
        ).unwrap();
        let par_index = PexesoIndex::build(
            columns,
            Euclidean,
            IndexOptions { exec: ExecPolicy::Parallel { threads }, ..Default::default() },
        ).unwrap();
        // The parallel build must assemble the exact same structures.
        prop_assert_eq!(seq_index.pivots(), par_index.pivots());
        prop_assert_eq!(seq_index.rv_mapped().raw_data(), par_index.rv_mapped().raw_data());

        let seq = seq_index.execute(&Query::threshold(tau, t), &query).unwrap();
        // The adaptive planner may clamp `Parallel` to the inline path
        // (small inputs, few cores); `Fixed` bypasses the clamp and forces
        // real fan-out. Both must be byte-identical to sequential — the
        // planner's choice can never change an answer or a counter.
        for policy in [
            ExecPolicy::Parallel { threads },
            ExecPolicy::Fixed { threads },
        ] {
            let par = par_index.execute(
                &Query::threshold(tau, t).with_exec(policy),
                &query,
            ).unwrap();
            prop_assert_eq!(&seq.hits, &par.hits, "policy={:?}", policy);
            // Counter-level equality pins the shard merge, not just the answer.
            prop_assert_eq!(seq.stats.distance_computations, par.stats.distance_computations);
            prop_assert_eq!(seq.stats.lemma1_filtered, par.stats.lemma1_filtered);
            prop_assert_eq!(seq.stats.lemma2_matched, par.stats.lemma2_matched);
            prop_assert_eq!(seq.stats.candidate_pairs, par.stats.candidate_pairs);
            prop_assert_eq!(seq.stats.matching_pairs, par.stats.matching_pairs);
            prop_assert_eq!(seq.stats.early_joinable, par.stats.early_joinable);
            prop_assert_eq!(seq.stats.lemma7_pruned, par.stats.lemma7_pruned);
        }
    }

    /// `dist_le` and `dist_batch` agree exactly with scalar `dist` for all
    /// built-in metrics, including at the threshold boundary.
    #[test]
    fn kernels_agree_with_scalar_dist(seed in 0u64..10_000, dim in 1usize..80) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let rows = 8;
        let flat: Vec<f32> = (0..rows * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

        fn check<M: Metric>(m: M, a: &[f32], flat: &[f32], dim: usize, rows: usize) -> Result<()> {
            let mut out = vec![0.0f32; rows];
            m.dist_batch(a, flat, &mut out);
            for (i, row) in flat.chunks_exact(dim).enumerate() {
                let d = m.dist(a, row);
                assert_eq!(out[i], d, "{} dist_batch row {i}", m.name());
                for tau in [d, d * 0.999, d * 1.001, 0.0, 0.5] {
                    assert_eq!(
                        m.dist_le(a, row, tau),
                        d <= tau,
                        "{} dist_le d={d} tau={tau}",
                        m.name()
                    );
                }
            }
            Ok(())
        }
        check(Euclidean, &a, &flat, dim, rows).unwrap();
        check(Manhattan, &a, &flat, dim, rows).unwrap();
        check(Chebyshev, &a, &flat, dim, rows).unwrap();
        check(Angular, &a, &flat, dim, rows).unwrap();
    }

    /// Batched multi-query search equals one-at-a-time search, under both
    /// outer policies.
    #[test]
    fn search_many_equals_individual_searches(seed in 0u64..5_000, nq in 2usize..5) {
        let (columns, _) = instance(seed, 10, 12, 5, 10);
        let queries: Vec<VectorStore> = (0..nq)
            .map(|i| instance(seed * 31 + i as u64 + 1, 1, 1, 6, 10).1)
            .collect();
        let tau = Tau::Ratio(0.15);
        let t = JoinThreshold::Ratio(0.4);
        let index = PexesoIndex::build(columns, Euclidean, IndexOptions::default()).unwrap();
        let base = Query::threshold(tau, t);
        let expected: Vec<Vec<GlobalHit>> = queries
            .iter()
            .map(|q| index.execute(&base, q).unwrap().hits)
            .collect();
        let stores: Vec<&VectorStore> = queries.iter().collect();
        for policy in [
            ExecPolicy::Sequential,
            ExecPolicy::Parallel { threads: 4 },
            ExecPolicy::Fixed { threads: 4 },
        ] {
            let got: Vec<Vec<GlobalHit>> = index
                .execute_many(&base.clone().with_policy(policy), &stores)
                .unwrap()
                .into_iter()
                .map(|r| r.hits)
                .collect();
            prop_assert_eq!(&got, &expected, "policy={:?}", policy);
        }
    }

    /// Out-of-core search under a parallel policy merges to the sequential
    /// answer.
    #[test]
    fn partitioned_parallel_policy_is_exact(seed in 0u64..3_000, threads in 2usize..6) {
        let (columns, query) = instance(seed, 12, 10, 5, 10);
        let tau = Tau::Ratio(0.12);
        let t = JoinThreshold::Ratio(0.4);
        let dir = std::env::temp_dir().join(format!(
            "pexeso_prop_ooc_par_{}_{}_{}", seed, threads, std::process::id()
        ));
        let lake = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig { k: 3, ..Default::default() },
            &IndexOptions { num_pivots: 3, levels: Some(3), ..Default::default() },
            &dir,
        ).unwrap();
        let seq = lake.execute(&Query::threshold(tau, t), &query).unwrap();
        let par = lake.execute(
            &Query::threshold(tau, t).with_policy(ExecPolicy::Parallel { threads }),
            &query,
        ).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(seq.hits, par.hits);
    }
}
