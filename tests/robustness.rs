//! Robustness and failure-injection tests: degenerate inputs, extreme
//! thresholds, unicode, and corrupted persistence must produce typed
//! errors or correct results — never panics or wrong answers.

use pexeso::pipeline::{embed_query, EmbeddedLakeBuilder};
use pexeso::prelude::*;

fn unit_vec(dim: usize, seed: u64) -> Vec<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

#[test]
fn single_vector_columns_and_queries() {
    let dim = 6;
    let mut columns = ColumnSet::new(dim);
    for c in 0..4u64 {
        let v = unit_vec(dim, c);
        columns
            .add_column("t", &format!("c{c}"), c, vec![v.as_slice()])
            .unwrap();
    }
    let index = PexesoIndex::build(columns.clone(), Euclidean, IndexOptions::default()).unwrap();
    let mut q = VectorStore::new(dim);
    q.push(&unit_vec(dim, 0)).unwrap();
    let r = index
        .execute(
            &Query::threshold(Tau::Ratio(0.01), JoinThreshold::Ratio(1.0)),
            &q,
        )
        .unwrap();
    assert_eq!(r.hits.len(), 1);
    assert_eq!(r.hits[0].external_id, 0);
}

#[test]
fn extreme_thresholds() {
    let dim = 6;
    let mut columns = ColumnSet::new(dim);
    let vecs: Vec<Vec<f32>> = (0..10).map(|i| unit_vec(dim, i)).collect();
    let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
    columns.add_column("t", "c", 0, refs).unwrap();
    let index = PexesoIndex::build(columns, Euclidean, IndexOptions::default()).unwrap();
    let mut q = VectorStore::new(dim);
    q.push(&unit_vec(dim, 3)).unwrap();

    // tau = 0: only exact duplicates match.
    let r = index
        .execute(
            &Query::threshold(Tau::Absolute(0.0), JoinThreshold::Count(1)),
            &q,
        )
        .unwrap();
    assert_eq!(r.hits.len(), 1);
    // tau = max distance: everything matches.
    let r = index
        .execute(
            &Query::threshold(Tau::Ratio(1.0), JoinThreshold::Ratio(1.0)),
            &q,
        )
        .unwrap();
    assert_eq!(r.hits.len(), 1);
    // Unsatisfiable T (count beyond |Q|) finds nothing but must not panic.
    let r = index
        .execute(
            &Query::threshold(Tau::Ratio(1.0), JoinThreshold::Count(5)),
            &q,
        )
        .unwrap();
    assert!(r.hits.is_empty());
}

#[test]
fn pipeline_handles_pathological_strings() {
    let e = HashEmbedder::new(48);
    let weird = vec![
        "".to_string(),
        "   ".to_string(),
        "🦀🦀🦀".to_string(),
        "a".repeat(10_000),
        "Łódź — Göteborg — 北京".to_string(),
        "comma,quote\"newline\n".to_string(),
        "\u{0}\u{1}\u{2}".to_string(),
    ];
    // Builder must skip unusable cells (emoji and control characters have
    // no alphanumeric tokens) and keep the rest.
    let lake = EmbeddedLakeBuilder::new(&e)
        .add_column("t", "weird", &weird)
        .build()
        .unwrap();
    assert_eq!(
        lake.columns.n_vectors(),
        3,
        "exactly the three tokenisable strings embed"
    );
    let index = PexesoIndex::build(lake.columns, Euclidean, IndexOptions::default()).unwrap();
    let q = embed_query(&e, &["Łódź — Göteborg — 北京".to_string()]);
    let probe = Query::threshold(Tau::Ratio(0.01), JoinThreshold::Count(1));
    let r = index.execute(&probe, q.store()).unwrap();
    assert_eq!(r.hits.len(), 1, "the unicode string must find itself");
    // A query with no embeddable content must error cleanly, not panic.
    let crab = embed_query(&e, &["🦀🦀🦀".to_string()]);
    assert!(index.execute(&probe, crab.store()).is_err());
}

#[test]
fn non_finite_vectors_detected_before_indexing() {
    let mut store = VectorStore::new(4);
    store.push(&[0.5, 0.5, 0.5, 0.5]).unwrap();
    store.push(&[f32::NAN, 0.0, 0.0, 0.0]).unwrap();
    assert!(store.has_non_finite());
}

#[test]
fn corrupted_partition_file_yields_typed_error() {
    let dim = 6;
    let mut columns = ColumnSet::new(dim);
    for c in 0..6u64 {
        let vecs: Vec<Vec<f32>> = (0..5).map(|i| unit_vec(dim, c * 10 + i)).collect();
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns.add_column("t", &format!("c{c}"), c, refs).unwrap();
    }
    let dir = std::env::temp_dir().join(format!("pexeso_rob_corrupt_{}", std::process::id()));
    let lake = PartitionedLake::build(
        &columns,
        Euclidean,
        &PartitionConfig {
            k: 2,
            ..Default::default()
        },
        &IndexOptions::default(),
        &dir,
    )
    .unwrap();

    // Flip bytes in the middle of the first partition file.
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "pex"))
        .collect();
    files.sort();
    let mut bytes = std::fs::read(&files[0]).unwrap();
    let mid = bytes.len() / 2;
    let end = (mid + 32).min(bytes.len());
    for b in &mut bytes[mid..end] {
        *b ^= 0xa5;
    }
    std::fs::write(&files[0], &bytes).unwrap();

    let mut q = VectorStore::new(dim);
    q.push(&unit_vec(dim, 3)).unwrap();
    let err = lake.execute(
        &Query::threshold(Tau::Ratio(0.1), JoinThreshold::Count(1)),
        &q,
    );
    assert!(
        err.is_err(),
        "corruption must surface as an error, not wrong results"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_heavy_columns() {
    // The paper keeps duplicate query values as independent records; a
    // column of one repeated vector must count every query duplicate.
    let dim = 4;
    let v = unit_vec(dim, 9);
    let mut columns = ColumnSet::new(dim);
    columns
        .add_column("t", "dups", 0, std::iter::repeat_n(v.as_slice(), 20))
        .unwrap();
    let index = PexesoIndex::build(columns, Euclidean, IndexOptions::default()).unwrap();
    let mut q = VectorStore::new(dim);
    for _ in 0..5 {
        q.push(&v).unwrap();
    }
    let r = index
        .execute(
            &Query::threshold(Tau::Absolute(0.0), JoinThreshold::Ratio(1.0)),
            &q,
        )
        .unwrap();
    assert_eq!(r.hits.len(), 1);
    assert_eq!(
        r.hits[0].match_count, 5,
        "every duplicate query record counts"
    );
}

#[test]
fn csv_reader_rejects_garbage_gracefully() {
    use pexeso_lake::csv;
    // Binary noise: must error or parse, never panic.
    let noise: String = (0u8..=255).map(|b| b as char).collect();
    let _ = csv::parse(&noise);
    // Deeply quoted but unterminated.
    assert!(csv::parse("\"\"\"\"\"").is_err());
}

#[test]
fn partitioning_single_column_lake() {
    let dim = 4;
    let mut columns = ColumnSet::new(dim);
    let vecs: Vec<Vec<f32>> = (0..8).map(|i| unit_vec(dim, i)).collect();
    let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
    columns.add_column("t", "only", 0, refs).unwrap();
    // k far exceeds the column count; must clamp, not crash.
    let p = pexeso_core::partition::partition_columns(
        &columns,
        &PartitionConfig {
            k: 64,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(p.assignments.len(), 1);
}
