//! The EXPLAIN differential contract: asking for a query plan can never
//! change the answer. On every backend — in-memory [`PexesoIndex`],
//! disk-backed [`PartitionedLake`], fully resident
//! [`ResidentPartitions`], and the remote [`ServeClient`] over loopback
//! — an explained query returns hits **and** stats byte-identical to
//! the unexplained run (wall-clock timings exempt), a report arrives
//! exactly when one was asked for, and the funnel arithmetic mirrors
//! [`SearchStats`] counter for counter.

use std::path::PathBuf;
use std::time::Duration;

use pexeso::prelude::*;
use pexeso::serve::{ServeClient, ServeConfig, Server};
use pexeso_core::explain::ExplainReport;
use pexeso_core::partition::PartitionMethod;
use pexeso_core::stats::SearchStats;

const DIM: usize = 12;

fn unit(rng: &mut rand::rngs::StdRng) -> Vec<f32> {
    use rand::Rng;
    let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

/// Same workload shape as `tests/query_api.rs`: joinable columns planted
/// in the first three, plus tie-prone twin columns, so both the blocking
/// and the verification stages do real pruning work.
fn workload(seed: u64) -> (ColumnSet, VectorStore) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let query_vecs: Vec<Vec<f32>> = (0..6).map(|_| unit(&mut rng)).collect();
    let mut columns = ColumnSet::new(DIM);
    for c in 0..10u64 {
        let mut vecs: Vec<Vec<f32>> = (0..14).map(|_| unit(&mut rng)).collect();
        if c < 3 {
            for (slot, q) in vecs.iter_mut().zip(&query_vecs) {
                slot.clone_from(q);
            }
        }
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column(&format!("tab{c}"), "key", c, refs)
            .unwrap();
    }
    let twin: Vec<Vec<f32>> = query_vecs.iter().take(4).cloned().collect();
    for (name, ext) in [("twin_hi", 21u64), ("twin_lo", 20)] {
        let refs: Vec<&[f32]> = twin.iter().map(|v| v.as_slice()).collect();
        columns.add_column("twins", name, ext, refs).unwrap();
    }
    let mut query = VectorStore::new(DIM);
    for q in &query_vecs {
        query.push(q).unwrap();
    }
    (columns, query)
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pexeso_explain_{name}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn index_options() -> IndexOptions {
    IndexOptions {
        num_pivots: 3,
        levels: Some(3),
        pivot_selection: PivotSelection::Pca,
        seed: 7,
        ..Default::default()
    }
}

struct Backends {
    index: PexesoIndex<Euclidean>,
    lake: PartitionedLake,
    resident: ResidentPartitions<Euclidean>,
    client: ServeClient,
    handle: Option<pexeso::serve::ServerHandle>,
    dir: PathBuf,
}

impl Backends {
    fn build(seed: u64, tag: &str) -> (Self, VectorStore) {
        let (columns, query) = workload(seed);
        let dir = tempdir(tag);
        let index = PexesoIndex::build(columns.clone(), Euclidean, index_options()).unwrap();
        let lake = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig {
                k: 3,
                method: PartitionMethod::JsdKmeans,
                ..Default::default()
            },
            &index_options(),
            &dir,
        )
        .unwrap();
        assert!(lake.num_partitions() > 1, "need a real partition merge");
        LakeManifest::next_build(&dir, "test", DIM)
            .unwrap()
            .write(&dir)
            .unwrap();
        let resident = ResidentPartitions::load(&lake, Euclidean).unwrap();
        let handle = Server::start(&dir, "127.0.0.1:0", ServeConfig::default()).unwrap();
        let client = ServeClient::connect(handle.addr()).unwrap();
        (
            Self {
                index,
                lake,
                resident,
                client,
                handle: Some(handle),
                dir,
            },
            query,
        )
    }

    fn as_dyn(&self) -> Vec<(&'static str, &dyn Queryable)> {
        vec![
            ("index", &self.index),
            ("lake", &self.lake),
            ("resident", &self.resident),
            ("serve", &self.client),
        ]
    }

    fn finish(mut self) {
        let _ = self.client.shutdown();
        if let Some(handle) = self.handle.take() {
            handle.join();
        }
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn run(backend: &dyn Queryable, query: &Query, vectors: &VectorStore) -> QueryResponse {
    backend.execute(query, vectors).unwrap()
}

/// Zero the wall-clock fields so two runs of the same query compare
/// counter-for-counter: the explain contract covers work done, never
/// elapsed time.
fn scrub(mut stats: SearchStats) -> SearchStats {
    stats.mapping_time = Duration::ZERO;
    stats.block_time = Duration::ZERO;
    stats.verify_time = Duration::ZERO;
    stats.total_time = Duration::ZERO;
    stats
}

/// The query matrix every differential test sweeps. Each entry is
/// distinct modulo the result-cache fingerprint (which ignores the
/// execution policy), so the remote backend executes every unexplained
/// run for real instead of answering a repeat from its cache — a cached
/// reply legitimately reports zero distance computations and would fake
/// a stats divergence.
fn query_matrix() -> Vec<Query> {
    let mut queries = Vec::new();
    for (tau, policy) in [
        (Tau::Ratio(0.05), ExecPolicy::Sequential),
        (Tau::Ratio(0.25), ExecPolicy::Parallel { threads: 3 }),
    ] {
        for t in [JoinThreshold::Count(2), JoinThreshold::Ratio(0.5)] {
            queries.push(
                Query::threshold(tau, t)
                    .with_policy(policy)
                    .expect_metric("euclidean"),
            );
        }
        for k in [1usize, 3, 50] {
            queries.push(
                Query::topk(tau, k)
                    .with_policy(policy)
                    .expect_metric("euclidean"),
            );
        }
    }
    queries
}

/// The acceptance criterion: explain-on ≡ explain-off in hits and
/// (timing-scrubbed) stats on all four backends, and the report is
/// present exactly when requested.
#[test]
fn explain_never_changes_results_across_backends() {
    let (backends, query_vecs) = Backends::build(42, "diff");
    let mut nonempty = 0;
    for q in &query_matrix() {
        let explained = q.clone().with_explain(true);
        for (name, backend) in backends.as_dyn() {
            let off = run(backend, q, &query_vecs);
            let on = run(backend, &explained, &query_vecs);
            assert!(
                off.explain.is_none(),
                "{name} explained without being asked"
            );
            assert!(on.explain.is_some(), "{name} dropped the requested report");
            assert_eq!(
                on.hits, off.hits,
                "{name} answer changed under explain for {q:?}"
            );
            assert_eq!(on.outcome, off.outcome, "{name} outcome changed for {q:?}");
            assert_eq!(
                scrub(on.stats.clone()),
                scrub(off.stats.clone()),
                "{name} stats changed under explain for {q:?}"
            );
            if name == "index" && !on.hits.is_empty() {
                nonempty += 1;
            }
        }
    }
    assert!(nonempty > 4, "workload must produce hits to be meaningful");
    backends.finish();
}

/// Check one backend's report against the stats and hits the same
/// response carried: stage arithmetic balances, and every pruned count
/// equals the matching [`SearchStats`] counter verbatim.
fn check_funnel(name: &str, q: &Query, resp: &QueryResponse) {
    let report = resp.explain.as_ref().unwrap();
    assert!(report.consistent(), "{name} funnel unbalanced for {q:?}");
    assert_eq!(report.stages.len(), 3, "{name} stage count");
    let block = &report.stages[0];
    assert_eq!(
        (block.name.as_str(), block.unit.as_str()),
        ("block", "pairs")
    );
    let verify = &report.stages[1];
    assert_eq!(
        (verify.name.as_str(), verify.unit.as_str()),
        ("verify", "rows")
    );
    let columns = &report.stages[2];
    assert_eq!(
        (columns.name.as_str(), columns.unit.as_str()),
        ("columns", "columns")
    );
    assert_eq!(
        columns.output,
        resp.hits.len() as u64,
        "{name} columns stage must end at the hit count"
    );
    let s = &resp.stats;
    assert_eq!(
        block.output,
        s.candidate_pairs + s.matching_pairs,
        "{name} block output"
    );
    assert_eq!(
        block.pruned,
        vec![("lemma3/4".to_string(), s.cell_pairs_filtered)],
        "{name} block prunes"
    );
    assert_eq!(
        verify.output,
        s.lemma2_matched + s.distance_computations,
        "{name} verify output"
    );
    assert_eq!(
        verify.pruned,
        vec![("lemma1".to_string(), s.lemma1_filtered)],
        "{name} verify prunes"
    );
    match q.mode {
        QueryMode::Threshold(_) => {
            assert_eq!(report.mode, "threshold");
            assert_eq!(
                columns.pruned,
                vec![("lemma7".to_string(), s.lemma7_pruned)],
                "{name} threshold column prunes"
            );
        }
        QueryMode::Topk(_) => {
            assert_eq!(report.mode, "topk");
            assert_eq!(
                columns.pruned,
                vec![
                    ("upper_bound".to_string(), s.topk_pruned),
                    ("aborted".to_string(), s.topk_aborted),
                ],
                "{name} topk column prunes"
            );
        }
    }
}

/// The funnel-consistency property: on the local backends (whose wire
/// carries full stats) every prune reason in the report equals the
/// matching counter, and the final stage lands exactly on the hit
/// count. The remote report must equal the resident one — the server
/// answers over the same resident partitions.
#[test]
fn explain_funnel_mirrors_search_stats() {
    let (backends, query_vecs) = Backends::build(47, "funnel");
    for q in &query_matrix() {
        let explained = q.clone().with_explain(true);
        let mut resident_report: Option<ExplainReport> = None;
        for (name, backend) in backends.as_dyn() {
            let resp = run(backend, &explained, &query_vecs);
            if name == "serve" {
                // The wire reply carries only the distance counter, so
                // the counter-level cross-check happens against the
                // resident backend's report instead.
                let report = resp.explain.as_ref().unwrap();
                assert!(report.consistent(), "serve funnel unbalanced for {q:?}");
                assert_eq!(
                    Some(report),
                    resident_report.as_ref(),
                    "remote report diverged from the resident backend for {q:?}"
                );
                continue;
            }
            check_funnel(name, q, &resp);
            if name == "resident" {
                resident_report = resp.explain.clone();
            }
        }
    }
    backends.finish();
}

/// The best-first trajectory rides only on the single-index engine (the
/// one that actually runs the adaptive loop); partitioned and threshold
/// reports carry none, and where present it agrees with the batch
/// counter and the aggregate prune counter.
#[test]
fn topk_trajectory_present_only_where_the_loop_ran() {
    let (backends, query_vecs) = Backends::build(7, "topk");
    let topk = Query::topk(Tau::Ratio(0.25), 3)
        .with_explain(true)
        .expect_metric("euclidean");
    let threshold = Query::threshold(Tau::Ratio(0.25), JoinThreshold::Count(2))
        .with_explain(true)
        .expect_metric("euclidean");

    let resp = run(&backends.index, &topk, &query_vecs);
    let report = resp.explain.as_ref().unwrap();
    let trajectory = report
        .topk
        .as_ref()
        .expect("in-memory top-k must carry its trajectory");
    // Rounds whose batch actually verified are exactly the counted
    // verify batches (all-pruned rounds are recorded but cost nothing).
    assert_eq!(
        trajectory.rounds.iter().filter(|r| r.batch > 0).count() as u64,
        resp.stats.verify_batches,
        "one counted batch per non-empty trajectory round"
    );
    // Every survivor is accounted for round by round: verified or
    // bound-pruned. An exact run without a suffix stop consumes them all.
    let consumed: u64 = trajectory
        .rounds
        .iter()
        .map(|r| u64::from(r.batch) + u64::from(r.pruned))
        .sum();
    assert!(consumed <= trajectory.survivors);
    if resp.exact() && !trajectory.suffix_stop {
        assert_eq!(consumed, trajectory.survivors, "survivors unaccounted for");
    }
    // Round-wise prunes are a subset of the aggregate counter (the seed
    // phase and a suffix stop prune outside any round).
    let pruned_in_rounds: u64 = trajectory.rounds.iter().map(|r| u64::from(r.pruned)).sum();
    assert!(pruned_in_rounds <= resp.stats.topk_pruned);

    for (name, backend) in backends.as_dyn() {
        let resp = run(backend, &threshold, &query_vecs);
        assert!(
            resp.explain.as_ref().unwrap().topk.is_none(),
            "{name} threshold report must not carry a trajectory"
        );
    }
    for (name, backend) in [
        ("lake", &backends.lake as &dyn Queryable),
        ("resident", &backends.resident),
    ] {
        let resp = run(backend, &topk, &query_vecs);
        assert!(
            resp.explain.as_ref().unwrap().topk.is_none(),
            "{name} merged report must not carry a per-partition trajectory"
        );
    }
    backends.finish();
}

/// An explained remote query bypasses the result cache (the report must
/// describe *this* execution), yet its executed result still lands in
/// the cache for later plain repeats.
#[test]
fn explained_serve_queries_bypass_the_result_cache() {
    let (backends, query_vecs) = Backends::build(23, "cache");
    let q = Query::threshold(Tau::Ratio(0.2), JoinThreshold::Count(2)).expect_metric("euclidean");
    let (first, meta) = backends.client.execute_detailed(&q, &query_vecs).unwrap();
    assert!(!meta.cached, "first run cannot be cached");
    let (_, meta) = backends.client.execute_detailed(&q, &query_vecs).unwrap();
    assert!(meta.cached, "plain repeat must hit the cache");
    let explained = q.clone().with_explain(true);
    let (resp, meta) = backends
        .client
        .execute_detailed(&explained, &query_vecs)
        .unwrap();
    assert!(!meta.cached, "explained repeat must bypass the cache");
    assert!(resp.explain.is_some());
    assert_eq!(resp.hits, first.hits, "bypass must not change the answer");
    backends.finish();
}
