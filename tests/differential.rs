//! Differential suite: every search mode against the brute-force oracle.
//!
//! `pexeso_core::oracle` is an independent O(|Q|·|R|) matcher with no
//! pivots, grids, lemmas, kernels, or early termination. This suite pins
//! the accelerated paths — threshold search, batched search, best-first
//! top-k, exhaustive top-k, and out-of-core search — against it on
//! randomized workloads across metrics, thresholds, k values, and both
//! [`ExecPolicy`] variants. Unlike `tests/exactness.rs` (which pins
//! Parallel ≡ Sequential and index ≡ naive-with-the-same-kernels), the
//! oracle shares *nothing* with the code under test, so a bug in the
//! shared machinery cannot cancel out of the comparison.

use pexeso::core::config::PivotSelection;
use pexeso::core::oracle;
use pexeso::prelude::*;

/// Build a unit-normalised random repository + query from a seed.
fn instance(
    seed: u64,
    n_cols: usize,
    col_len: usize,
    nq: usize,
    dim: usize,
) -> (ColumnSet, VectorStore) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let unit = |rng: &mut StdRng| {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n.max(1e-9));
        v
    };
    let mut columns = ColumnSet::new(dim);
    for c in 0..n_cols {
        let vecs: Vec<Vec<f32>> = (0..col_len).map(|_| unit(&mut rng)).collect();
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column("t", &format!("c{c}"), c as u64, refs)
            .unwrap();
    }
    let mut query = VectorStore::new(dim);
    for _ in 0..nq {
        let v = unit(&mut rng);
        query.push(&v).unwrap();
    }
    (columns, query)
}

fn build<M: Metric>(columns: ColumnSet, metric: M, pivots: usize, levels: usize) -> PexesoIndex<M> {
    PexesoIndex::build(
        columns,
        metric,
        IndexOptions {
            num_pivots: pivots,
            levels: Some(levels),
            pivot_selection: PivotSelection::Pca,
            seed: 7,
            ..Default::default()
        },
    )
    .unwrap()
}

fn pairs(hits: &[SearchHit]) -> Vec<(u32, u32)> {
    hits.iter().map(|h| (h.column.0, h.match_count)).collect()
}

/// Unified-API hits, compared on (external id, count). Every in-memory
/// fixture here assigns external ids in insertion order, so the unified
/// external-id ranking coincides with the oracle's column-id ranking.
fn gpairs(hits: &[GlobalHit]) -> Vec<(u32, u32)> {
    hits.iter()
        .map(|h| (h.external_id as u32, h.match_count))
        .collect()
}

const POLICIES: [ExecPolicy; 2] = [ExecPolicy::Sequential, ExecPolicy::Parallel { threads: 4 }];

/// Threshold search (and its batched form) equals the oracle: same
/// columns, in ascending id order, for several metrics, τ, T, and both
/// execution policies. Match counts are lower bounds under early
/// termination, so only the id sets are compared here.
fn check_threshold<M: Metric>(metric: M, seed: u64) {
    let (columns, query) = instance(seed, 14, 20, 9, 12);
    let index = build(columns.clone(), metric.clone(), 4, 4);
    for tau in [Tau::Ratio(0.05), Tau::Ratio(0.2), Tau::Ratio(0.5)] {
        for t in [
            JoinThreshold::Count(1),
            JoinThreshold::Ratio(0.4),
            JoinThreshold::Ratio(1.0),
        ] {
            let expected: Vec<u32> =
                oracle::threshold_search(&columns, &metric, &query, tau, t, None)
                    .unwrap()
                    .iter()
                    .map(|h| h.column.0)
                    .collect();
            for policy in POLICIES {
                let q = Query::threshold(tau, t)
                    .with_exec(policy)
                    .with_policy(policy)
                    .expect_metric(metric.name());
                let got: Vec<u32> = index
                    .execute(&q, &query)
                    .unwrap()
                    .hits
                    .iter()
                    .map(|h| h.external_id as u32)
                    .collect();
                assert_eq!(
                    got,
                    expected,
                    "metric={} seed={seed} tau={tau:?} t={t:?} policy={policy:?}",
                    metric.name()
                );
                let batched = index.execute_many(&q, &[&query, &query]).unwrap();
                for r in batched {
                    let ids: Vec<u32> = r.hits.iter().map(|h| h.external_id as u32).collect();
                    assert_eq!(ids, expected, "execute_many diverged (policy={policy:?})");
                }
            }
        }
    }
}

/// Top-k equals the oracle exactly — same columns, same exact counts,
/// same order under the documented tie-break — for several metrics, τ,
/// k, and both execution policies; the exhaustive baseline and the
/// batched form must agree too.
fn check_topk<M: Metric>(metric: M, seed: u64) {
    let (columns, query) = instance(seed, 14, 20, 9, 12);
    let n_cols = columns.n_columns();
    let index = build(columns.clone(), metric.clone(), 4, 4);
    for tau in [Tau::Ratio(0.1), Tau::Ratio(0.3), Tau::Ratio(0.6)] {
        for k in [0usize, 1, 3, 7, n_cols, n_cols * 2] {
            let expected = pairs(&oracle::topk(&columns, &metric, &query, tau, k, None).unwrap());
            let exhaustive_q = Query::topk(tau, k).with_options(SearchOptions {
                topk_strategy: TopkStrategy::Exhaustive,
                ..Default::default()
            });
            let exhaustive = gpairs(&index.execute(&exhaustive_q, &query).unwrap().hits);
            assert_eq!(
                exhaustive,
                expected,
                "exhaustive top-k vs oracle (metric={} seed={seed} tau={tau:?} k={k})",
                metric.name()
            );
            for policy in POLICIES {
                let q = Query::topk(tau, k).with_exec(policy).with_policy(policy);
                let got = gpairs(&index.execute(&q, &query).unwrap().hits);
                assert_eq!(
                    got,
                    expected,
                    "best-first top-k vs oracle (metric={} seed={seed} tau={tau:?} k={k} \
                     policy={policy:?})",
                    metric.name()
                );
                let batched = index.execute_many(&q, &[&query, &query]).unwrap();
                for r in batched {
                    assert_eq!(
                        gpairs(&r.hits),
                        expected,
                        "batched top-k diverged (policy={policy:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn threshold_search_matches_oracle_euclidean() {
    for seed in [1u64, 2, 3] {
        check_threshold(Euclidean, seed);
    }
}

#[test]
fn threshold_search_matches_oracle_manhattan() {
    check_threshold(Manhattan, 4);
}

#[test]
fn threshold_search_matches_oracle_chebyshev() {
    check_threshold(Chebyshev, 5);
}

#[test]
fn topk_matches_oracle_euclidean() {
    for seed in [1u64, 2, 3] {
        check_topk(Euclidean, seed);
    }
}

#[test]
fn topk_matches_oracle_manhattan() {
    check_topk(Manhattan, 4);
}

#[test]
fn topk_matches_oracle_chebyshev() {
    check_topk(Chebyshev, 5);
}

/// Lemma ablations and quick-browse off must not change the top-k answer.
#[test]
fn topk_matches_oracle_under_ablations() {
    let (columns, query) = instance(6, 12, 18, 8, 10);
    let index = build(columns.clone(), Euclidean, 3, 4);
    let tau = Tau::Ratio(0.25);
    let expected = pairs(&oracle::topk(&columns, &Euclidean, &query, tau, 5, None).unwrap());
    for flags in [
        LemmaFlags::all(),
        LemmaFlags::without_lemma1(),
        LemmaFlags::without_lemma2(),
        LemmaFlags::without_lemma34(),
        LemmaFlags::without_lemma56(),
    ] {
        for quick_browse in [true, false] {
            let q = Query::topk(tau, 5)
                .with_flags(flags)
                .quick_browse(quick_browse);
            let got = gpairs(&index.execute(&q, &query).unwrap().hits);
            assert_eq!(got, expected, "flags={flags:?} quick_browse={quick_browse}");
        }
    }
}

/// Duplicate columns produce identical scores; the tie-break (ascending
/// column id) must order them deterministically in every mode.
#[test]
fn duplicate_columns_tie_break_deterministically() {
    let (mut columns, query) = instance(7, 6, 15, 8, 10);
    // Clone column 2's vectors twice: three columns with identical scores.
    let dup: Vec<Vec<f32>> = columns
        .column(ColumnId(2))
        .vector_range()
        .map(|v| columns.store().get_raw(v as usize).to_vec())
        .collect();
    for (name, ext) in [("dup_a", 6u64), ("dup_b", 7)] {
        let refs: Vec<&[f32]> = dup.iter().map(|v| v.as_slice()).collect();
        columns.add_column("t", name, ext, refs).unwrap();
    }
    let index = build(columns.clone(), Euclidean, 3, 4);
    let tau = Tau::Ratio(0.4);
    let expected =
        pairs(&oracle::topk(&columns, &Euclidean, &query, tau, columns.n_columns(), None).unwrap());
    // The three duplicates must appear with equal counts, ids ascending.
    let c2 = expected.iter().position(|&(c, _)| c == 2).unwrap();
    let c6 = expected.iter().position(|&(c, _)| c == 6).unwrap();
    let c7 = expected.iter().position(|&(c, _)| c == 7).unwrap();
    assert_eq!(expected[c2].1, expected[c6].1);
    assert_eq!(expected[c6].1, expected[c7].1);
    assert!(c2 < c6 && c6 < c7, "tie-break must order by ascending id");
    for policy in POLICIES {
        let q = Query::topk(tau, columns.n_columns()).with_exec(policy);
        let got = gpairs(&index.execute(&q, &query).unwrap().hits);
        assert_eq!(got, expected, "policy={policy:?}");
    }
}

/// Deleted columns disappear from top-k exactly like an oracle over the
/// masked repository.
#[test]
fn topk_respects_deletions() {
    let (columns, query) = instance(8, 10, 15, 8, 10);
    let mut index = build(columns.clone(), Euclidean, 3, 4);
    let tau = Tau::Ratio(0.3);
    let full = index.execute(&Query::topk(tau, 5), &query).unwrap();
    assert!(!full.hits.is_empty(), "need a hit to delete");
    let victim = ColumnId(full.hits[0].external_id as u32);
    index.remove_column(victim).unwrap();
    let mut deleted = vec![false; columns.n_columns()];
    deleted[victim.0 as usize] = true;
    let expected =
        pairs(&oracle::topk(&columns, &Euclidean, &query, tau, 5, Some(&deleted)).unwrap());
    let got = gpairs(&index.execute(&Query::topk(tau, 5), &query).unwrap().hits);
    assert_eq!(got, expected);
}

/// Out-of-core threshold and top-k search equal the oracle on external
/// ids, for both execution policies.
#[test]
fn out_of_core_matches_oracle() {
    use pexeso::core::partition::PartitionMethod;
    let (columns, query) = instance(9, 16, 18, 8, 10);
    let dir = std::env::temp_dir().join(format!("pexeso_diff_ooc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let lake = PartitionedLake::build(
        &columns,
        Euclidean,
        &PartitionConfig {
            k: 3,
            method: PartitionMethod::JsdKmeans,
            ..Default::default()
        },
        &IndexOptions {
            num_pivots: 3,
            levels: Some(3),
            pivot_selection: PivotSelection::Pca,
            seed: 7,
            ..Default::default()
        },
        &dir,
    )
    .unwrap();
    assert!(
        lake.num_partitions() > 1,
        "want a real multi-partition merge"
    );
    let tau = Tau::Ratio(0.25);

    // Threshold form: ascending external id.
    let t = JoinThreshold::Ratio(0.3);
    let expected_ids: Vec<u64> =
        oracle::threshold_search(&columns, &Euclidean, &query, tau, t, None)
            .unwrap()
            .iter()
            .map(|h| h.column.0 as u64)
            .collect();
    // Top-k form: count descending, external id ascending. External ids
    // equal the original column ids here, so the oracle ranking carries
    // over unchanged.
    let expected_topk: Vec<(u64, u32)> = oracle::topk(&columns, &Euclidean, &query, tau, 6, None)
        .unwrap()
        .iter()
        .map(|h| (h.column.0 as u64, h.match_count))
        .collect();
    for policy in POLICIES {
        let resp = lake
            .execute(&Query::threshold(tau, t).with_policy(policy), &query)
            .unwrap();
        let got: Vec<u64> = resp.hits.iter().map(|h| h.external_id).collect();
        assert_eq!(
            got, expected_ids,
            "out-of-core threshold (policy={policy:?})"
        );

        let top = lake
            .execute(&Query::topk(tau, 6).with_policy(policy), &query)
            .unwrap();
        let got: Vec<(u64, u32)> = top
            .hits
            .iter()
            .map(|h| (h.external_id, h.match_count))
            .collect();
        assert_eq!(got, expected_topk, "out-of-core top-k (policy={policy:?})");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Adversarial ordering: a column whose first few reachable query
/// vectors are *near misses* (so the probe scores it 0) but which
/// matches many later query vectors must still win — pruning may never
/// trust the best-first heuristic order. Seventeen decoy columns match
/// only the first two query vectors (strong probes, small upper bounds),
/// pushing the strong column past the first verification batch with a
/// tightened threshold in force.
#[test]
fn weak_probe_high_count_column_is_not_pruned() {
    let dim = 4;
    // Points on a unit circle: chord distance between v(a) and v(b) is
    // 2·sin(|a−b|/2) ≈ |a−b| for small angles.
    let v = |theta: f32| vec![theta.cos(), theta.sin(), 0.0, 0.0];
    let mut query = VectorStore::new(dim);
    for i in 0..12 {
        query.push(&v(0.5 * i as f32)).unwrap();
    }
    let mut columns = ColumnSet::new(dim);
    // Decoys 0..=16: exact copies of q0 and q1 only (count 2, probe 2).
    for c in 0..17u64 {
        let vecs = [v(0.0), v(0.5)];
        let refs: Vec<&[f32]> = vecs.iter().map(|x| x.as_slice()).collect();
        columns
            .add_column("t", &format!("decoy{c}"), c, refs)
            .unwrap();
    }
    // Strong column 17: near misses for q0/q1 (chord ≈ 0.15 > τ = 0.1,
    // close enough to stay blocked as candidates) plus exact matches for
    // q2..=q11 (count 10, probe 0).
    let mut strong = vec![v(0.15), v(0.65)];
    for i in 2..12 {
        strong.push(v(0.5 * i as f32));
    }
    let refs: Vec<&[f32]> = strong.iter().map(|x| x.as_slice()).collect();
    columns.add_column("t", "strong", 17, refs).unwrap();

    let index = build(columns.clone(), Euclidean, 3, 2);
    let tau = Tau::Absolute(0.1);
    for k in [1usize, 3, 18] {
        let expected = pairs(&oracle::topk(&columns, &Euclidean, &query, tau, k, None).unwrap());
        assert_eq!(expected[0], (17, 10), "test instance lost its shape");
        for policy in POLICIES {
            let q = Query::topk(tau, k).with_exec(policy);
            let got = gpairs(&index.execute(&q, &query).unwrap().hits);
            assert_eq!(got, expected, "k={k} policy={policy:?}");
        }
    }
}

/// Out-of-core boundary ties: the in-partition tie-break runs on
/// internal (insertion-order) ids while the global merge ranks by
/// external id. With identical columns whose external ids run *opposite*
/// to insertion order, a naive per-partition top-k would keep the wrong
/// end of every tie; the tie-inclusive re-query must surface the column
/// with the smallest external id anyway.
#[test]
fn out_of_core_topk_boundary_ties_respect_external_ids() {
    use pexeso::core::partition::PartitionMethod;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let dim = 6;
    let mut rng = StdRng::seed_from_u64(21);
    let mut unit = || {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n.max(1e-9));
        v
    };
    let vecs: Vec<Vec<f32>> = (0..12).map(|_| unit()).collect();
    let mut columns = ColumnSet::new(dim);
    for i in 0..10u64 {
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        // External ids descend as insertion order ascends.
        columns
            .add_column("t", &format!("c{i}"), 9 - i, refs)
            .unwrap();
    }
    let mut query = VectorStore::new(dim);
    for v in vecs.iter().take(6) {
        query.push(v).unwrap();
    }
    let dir = std::env::temp_dir().join(format!("pexeso_diff_ties_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let lake = PartitionedLake::build(
        &columns,
        Euclidean,
        &PartitionConfig {
            k: 3,
            method: PartitionMethod::Random,
            ..Default::default()
        },
        &IndexOptions {
            num_pivots: 3,
            levels: Some(3),
            seed: 7,
            ..Default::default()
        },
        &dir,
    )
    .unwrap();
    let tau = Tau::Ratio(0.05);
    for policy in POLICIES {
        for k in [1usize, 3] {
            let resp = lake
                .execute(&Query::topk(tau, k).with_policy(policy), &query)
                .unwrap();
            let got: Vec<(u64, u32)> = resp
                .hits
                .iter()
                .map(|h| (h.external_id, h.match_count))
                .collect();
            let expected: Vec<(u64, u32)> = (0..k as u64).map(|e| (e, 6)).collect();
            assert_eq!(got, expected, "k={k} policy={policy:?}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Edge cases: k = 0 (valid, empty), k far beyond the candidate count
/// (everything with a positive count, still ranked), and an empty query
/// column (an error, like every other entry point).
#[test]
fn topk_edge_cases() {
    let (columns, query) = instance(10, 8, 12, 6, 10);
    let index = build(columns.clone(), Euclidean, 3, 4);
    let tau = Tau::Ratio(0.3);

    assert!(index
        .execute(&Query::topk(tau, 0), &query)
        .unwrap()
        .hits
        .is_empty());

    let all = pairs(&oracle::topk(&columns, &Euclidean, &query, tau, usize::MAX, None).unwrap());
    let got = gpairs(
        &index
            .execute(&Query::topk(tau, 10_000), &query)
            .unwrap()
            .hits,
    );
    assert_eq!(got, all, "oversized k must return every positive column");

    let empty = VectorStore::new(10);
    assert!(index.execute(&Query::topk(tau, 3), &empty).is_err());
    assert!(oracle::topk(&columns, &Euclidean, &empty, tau, 3, None).is_err());
}
