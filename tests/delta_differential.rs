//! Differential coverage for incremental maintenance: a deployment plus
//! its delta log must answer **byte-identically** to a from-scratch
//! rebuild over the final table set —
//!
//! * threshold and top-k, across τ / T / k,
//! * all four metrics (Euclidean, Manhattan, Chebyshev, Angular),
//! * both `ExecPolicy` variants,
//! * through `&dyn Queryable` (the only surface callers use),
//! * on both delta-capable backends: the disk-backed [`DeltaLake`] and
//!   the resident serve [`Snapshot`] (base shared, overlay applied), and
//! * after compaction, whose output must be byte-identical to the
//!   rebuild *deployment* itself (same partitioning, same answers).
//!
//! Adversarial cases: boundary count-ties interacting with tombstones
//! (the top-k over-ask must keep tie-inclusiveness), dropping the
//! dominant column, re-adding a dropped table.

use std::path::{Path, PathBuf};

use pexeso::pipeline::compact_lake;
use pexeso::prelude::*;
use pexeso_core::column::ColumnSet;
use pexeso_core::config::PivotSelection;
use pexeso_core::metric::{Angular, Chebyshev, Manhattan, Metric};
use pexeso_core::outofcore::LakeManifest;
use pexeso_core::partition::PartitionConfig;
use pexeso_delta::{drop_tables, ingest_columns, read_log, DeltaLake, DeltaState, IngestColumn};
use pexeso_serve::Snapshot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 8;

fn unit(rng: &mut StdRng) -> Vec<f32> {
    let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

fn column_floats(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).flat_map(|_| unit(rng)).collect()
}

fn index_options() -> IndexOptions {
    IndexOptions {
        num_pivots: 3,
        levels: Some(3),
        pivot_selection: PivotSelection::Pca,
        seed: 7,
        ..Default::default()
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pexeso_delta_diff_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build a deployment over `columns` under `metric_name` and write the
/// manifest (the pipeline only deploys Euclidean; tests deploy all four).
fn deploy<M: Metric>(
    dir: &Path,
    columns: &ColumnSet,
    metric: M,
    next_external_id: u64,
) -> PartitionedLake {
    let lake = PartitionedLake::build(
        columns,
        metric.clone(),
        &PartitionConfig {
            k: 2,
            ..Default::default()
        },
        &index_options(),
        dir,
    )
    .unwrap();
    let manifest = LakeManifest {
        metric: metric.name().to_string(),
        next_external_id,
        ..LakeManifest::new("hash", DIM)
    };
    manifest.write(dir).unwrap();
    lake
}

fn base_columns(seed: u64, n_cols: usize, len: usize) -> ColumnSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut columns = ColumnSet::new(DIM);
    for c in 0..n_cols {
        let floats = column_floats(&mut rng, len);
        columns
            .add_column(&format!("b{c}"), "key", c as u64, floats.chunks_exact(DIM))
            .unwrap();
    }
    columns
}

fn query_store(seed: u64, n: usize) -> VectorStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q = VectorStore::new(DIM);
    for _ in 0..n {
        q.push(&unit(&mut rng)).unwrap();
    }
    q
}

/// The final live set of (base ∪ delta log) with original external ids,
/// as one ColumnSet in canonical (ascending-id) order — what a rebuild
/// over the final tables indexes.
fn final_live_columns(dir: &Path, base: &ColumnSet) -> ColumnSet {
    let state = match read_log(dir).unwrap() {
        Some(log) => DeltaState::replay(&log.records),
        None => DeltaState::default(),
    };
    let mut live: Vec<(u64, String, String, Vec<f32>)> = Vec::new();
    for meta in base.columns() {
        if state.dropped_tables.contains(&meta.table_name) {
            continue;
        }
        let mut floats = Vec::new();
        for v in meta.vector_range() {
            floats.extend_from_slice(base.store().get_raw(v as usize));
        }
        live.push((
            meta.external_id,
            meta.table_name.clone(),
            meta.column_name.clone(),
            floats,
        ));
    }
    for col in &state.live {
        live.push((
            col.external_id,
            col.table_name.clone(),
            col.column_name.clone(),
            col.vectors.clone(),
        ));
    }
    live.sort_by_key(|(id, ..)| *id);
    let mut columns = ColumnSet::new(DIM);
    for (id, table, column, floats) in &live {
        columns
            .add_column(table, column, *id, floats.chunks_exact(DIM))
            .unwrap();
    }
    columns
}

/// Pin two backends byte-identical through `&dyn Queryable` across
/// modes, τ / T / k, and both policies.
fn assert_equivalent(a: &dyn Queryable, b: &dyn Queryable, q: &VectorStore, tag: &str) {
    for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel { threads: 3 }] {
        for (tau, t) in [
            (Tau::Ratio(0.1), JoinThreshold::Count(1)),
            (Tau::Ratio(0.25), JoinThreshold::Ratio(0.3)),
            (Tau::Ratio(0.4), JoinThreshold::Count(3)),
        ] {
            let query = Query::threshold(tau, t).with_policy(policy);
            let ra = a.execute(&query, q).unwrap();
            let rb = b.execute(&query, q).unwrap();
            assert!(ra.exact() && rb.exact());
            assert_eq!(
                ra.hits, rb.hits,
                "{tag}: threshold tau={tau:?} t={t:?} policy={policy:?}"
            );
        }
        for (tau, k) in [
            (Tau::Ratio(0.25), 1usize),
            (Tau::Ratio(0.25), 3),
            (Tau::Ratio(0.4), 5),
            (Tau::Ratio(0.4), 100),
        ] {
            let query = Query::topk(tau, k).with_policy(policy);
            let ra = a.execute(&query, q).unwrap();
            let rb = b.execute(&query, q).unwrap();
            assert_eq!(
                ra.hits, rb.hits,
                "{tag}: topk tau={tau:?} k={k} policy={policy:?}"
            );
        }
    }
}

/// One full lifecycle under a given metric: deploy → ingest → drop →
/// delta answers ≡ rebuild (DeltaLake *and* resident serve Snapshot) →
/// compact → compacted deployment ≡ rebuild deployment byte-identically.
fn lifecycle_under_metric<M: Metric>(metric: M, seed: u64) {
    let name = metric.name();
    let dir = tempdir(&format!("life_{name}"));
    let base = base_columns(seed, 6, 10);
    deploy(&dir, &base, metric.clone(), 6);

    // Ingest three tables, drop one base table and one ingested table.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let cols: Vec<IngestColumn> = (0..3)
        .map(|i| IngestColumn {
            table_name: format!("d{i}"),
            column_name: "key".into(),
            vectors: column_floats(&mut rng, 6 + i),
        })
        .collect();
    let report = ingest_columns(&dir, &cols).unwrap();
    assert_eq!(report.first_external_id, 6);
    assert_eq!(report.next_external_id, 9);
    drop_tables(&dir, &["b1".into(), "d0".into()]).unwrap();
    // Re-add the dropped base table: only the new column must be live.
    ingest_columns(
        &dir,
        &[IngestColumn {
            table_name: "b1".into(),
            column_name: "key".into(),
            vectors: column_floats(&mut rng, 7),
        }],
    )
    .unwrap();

    // Rebuild oracle over the final live set, same external ids.
    let rebuild_dir = tempdir(&format!("life_{name}_rebuild"));
    let live = final_live_columns(&dir, &base);
    deploy(&rebuild_dir, &live, metric.clone(), 10);
    let rebuilt = PartitionedLake::open(&rebuild_dir).unwrap();

    let q = query_store(seed ^ 0x71, 6);
    let delta_lake = DeltaLake::open(&dir).unwrap();
    assert_eq!(delta_lake.overlay().n_delta_columns(), 3); // d1, d2, re-added b1
    assert_eq!(delta_lake.overlay().n_tombstones(), 2);
    assert_equivalent(
        &delta_lake,
        &rebuilt,
        &q,
        &format!("{name}: DeltaLake vs rebuild"),
    );

    // The resident serve snapshot overlays the same delta over a shared
    // in-memory base: same answers again.
    let snapshot = Snapshot::load(&dir, 1).unwrap();
    assert_equivalent(
        &snapshot,
        &rebuilt,
        &q,
        &format!("{name}: Snapshot vs rebuild"),
    );

    // Compact: the folded deployment answers identically, the manifest
    // version bumps, the log is gone — and because compaction presents
    // the same canonical column order as the rebuild, the deployments
    // answer byte-identically partition for partition.
    let compact_report = compact_lake(&dir, None, ExecPolicy::Sequential).unwrap();
    assert_eq!(compact_report.index_version, 2);
    assert_eq!(compact_report.n_columns, live.n_columns());
    // Only base columns count as dropped: d0 was added *and* dropped
    // inside the log, so it never reaches compaction at all.
    assert_eq!(compact_report.columns_dropped, 1); // the original b1
    assert!(
        read_log(&dir).unwrap().is_none(),
        "compaction removes the log"
    );
    let compacted = DeltaLake::open(&dir).unwrap();
    assert!(compacted.overlay().is_empty());
    assert_equivalent(
        &compacted,
        &rebuilt,
        &q,
        &format!("{name}: compacted vs rebuild"),
    );
    assert_eq!(
        LakeManifest::read(&dir).unwrap().next_external_id,
        10,
        "compaction records the id high-water mark"
    );

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&rebuild_dir).ok();
}

#[test]
fn lifecycle_euclidean() {
    lifecycle_under_metric(Euclidean, 11);
}

#[test]
fn lifecycle_manhattan() {
    lifecycle_under_metric(Manhattan, 12);
}

#[test]
fn lifecycle_chebyshev() {
    lifecycle_under_metric(Chebyshev, 13);
}

#[test]
fn lifecycle_angular() {
    lifecycle_under_metric(Angular, 14);
}

/// Adversarial top-k: columns exactly tied with the query compete at the
/// boundary while tombstones knock out the strongest candidates — the
/// over-ask must keep the surviving tie group intact so the merged
/// ranking stays identical to the rebuild's.
#[test]
fn topk_boundary_ties_with_tombstones() {
    let dir = tempdir("ties");
    let q = query_store(99, 6);
    // Ten base columns that are exact mirrors of the query (all tied at
    // full count) plus three weaker columns.
    let mut columns = ColumnSet::new(DIM);
    let mirror: Vec<&[f32]> = (0..q.len()).map(|i| q.get_raw(i)).collect();
    for c in 0..10u64 {
        columns
            .add_column(&format!("m{c}"), "key", c, mirror.clone())
            .unwrap();
    }
    let mut rng = StdRng::seed_from_u64(1234);
    for c in 10..13u64 {
        let floats = column_floats(&mut rng, 8);
        columns
            .add_column(&format!("w{c}"), "key", c, floats.chunks_exact(DIM))
            .unwrap();
    }
    deploy(&dir, &columns, Euclidean, 13);
    // Drop seven of the ten mirrors: every local top-k list was full of
    // tombstoned entries.
    let dropped: Vec<String> = (0..7).map(|c| format!("m{c}")).collect();
    drop_tables(&dir, &dropped).unwrap();

    let rebuild_dir = tempdir("ties_rebuild");
    let base_for_final = columns.clone();
    let live = final_live_columns(&dir, &base_for_final);
    assert_eq!(live.n_columns(), 6);
    deploy(&rebuild_dir, &live, Euclidean, 13);
    let rebuilt = PartitionedLake::open(&rebuild_dir).unwrap();
    let delta_lake = DeltaLake::open(&dir).unwrap();
    assert_equivalent(&delta_lake, &rebuilt, &q, "boundary ties");

    // Spot-check: k=2 must surface surviving mirrors (full count), not
    // lose them to the tombstoned ones that outranked them locally.
    let resp = delta_lake
        .execute(&Query::topk(Tau::Ratio(0.02), 2), &q)
        .unwrap();
    assert_eq!(resp.hits.len(), 2);
    assert!(resp.hits.iter().all(|h| h.table_name.starts_with('m')));
    assert_eq!(resp.hits[0].match_count as usize, q.len());
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&rebuild_dir).ok();
}

/// `k = 0`, invalid metric expectations, and dimension mismatches behave
/// exactly like every other backend (the unified contract).
#[test]
fn delta_lake_obeys_the_unified_contract() {
    let dir = tempdir("contract");
    let base = base_columns(7, 4, 8);
    deploy(&dir, &base, Euclidean, 4);
    let mut rng = StdRng::seed_from_u64(8);
    ingest_columns(
        &dir,
        &[IngestColumn {
            table_name: "d0".into(),
            column_name: "key".into(),
            vectors: column_floats(&mut rng, 5),
        }],
    )
    .unwrap();
    let lake = DeltaLake::open(&dir).unwrap();
    let q = query_store(9, 4);
    // k = 0: empty and exact, no partition touched.
    let resp = lake.execute(&Query::topk(Tau::Ratio(0.2), 0), &q).unwrap();
    assert!(resp.hits.is_empty() && resp.exact());
    assert_eq!(resp.stats.distance_computations, 0);
    // Metric expectation mismatch is a typed error.
    assert!(lake
        .execute(
            &Query::topk(Tau::Ratio(0.2), 3).expect_metric("manhattan"),
            &q
        )
        .is_err());
    // Matching expectation passes.
    assert!(lake
        .execute(
            &Query::topk(Tau::Ratio(0.2), 3).expect_metric("euclidean"),
            &q
        )
        .is_ok());
    std::fs::remove_dir_all(&dir).ok();
}
