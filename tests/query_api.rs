//! The unified query API contract, end to end: one [`Query`] executed
//! through `&dyn Queryable` against all four backends — the in-memory
//! [`PexesoIndex`], the out-of-core [`PartitionedLake`], the fully
//! resident [`ResidentPartitions`], and a remote [`ServeClient`] over
//! loopback — must return **byte-identical** rankings. Also pins the
//! shared edge-case contract (`k = 0`, `T = 0`, invalid τ), the typed
//! budget outcomes, and batched execution through the trait object.

use std::path::PathBuf;
use std::time::Duration;

use pexeso::prelude::*;
use pexeso::serve::{ServeClient, ServeConfig, Server};
use pexeso_core::partition::PartitionMethod;

const DIM: usize = 12;

fn unit(rng: &mut rand::rngs::StdRng) -> Vec<f32> {
    use rand::Rng;
    let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

/// A workload with guaranteed joinable columns (exact copies of the query
/// vectors planted in the first three columns), plus boundary ties whose
/// external ids run *opposite* to insertion order — the adversarial case
/// for top-k tie-breaks across backends.
fn workload(seed: u64) -> (ColumnSet, VectorStore) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let query_vecs: Vec<Vec<f32>> = (0..6).map(|_| unit(&mut rng)).collect();
    let mut columns = ColumnSet::new(DIM);
    for c in 0..10u64 {
        let mut vecs: Vec<Vec<f32>> = (0..14).map(|_| unit(&mut rng)).collect();
        if c < 3 {
            for (slot, q) in vecs.iter_mut().zip(&query_vecs) {
                slot.clone_from(q);
            }
        }
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column(&format!("tab{c}"), "key", c, refs)
            .unwrap();
    }
    // Two identical twin columns with *descending* external ids: any
    // backend breaking top-k ties on its internal order instead of the
    // external ids gets these wrong.
    let twin: Vec<Vec<f32>> = query_vecs.iter().take(4).cloned().collect();
    for (name, ext) in [("twin_hi", 21u64), ("twin_lo", 20)] {
        let refs: Vec<&[f32]> = twin.iter().map(|v| v.as_slice()).collect();
        columns.add_column("twins", name, ext, refs).unwrap();
    }
    let mut query = VectorStore::new(DIM);
    for q in &query_vecs {
        query.push(q).unwrap();
    }
    (columns, query)
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pexeso_qapi_{name}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn index_options() -> IndexOptions {
    IndexOptions {
        num_pivots: 3,
        levels: Some(3),
        pivot_selection: PivotSelection::Pca,
        seed: 7,
        ..Default::default()
    }
}

/// All four backends over the same repository: in-memory, disk, resident,
/// remote (loopback daemon). The server handle shuts the daemon down on
/// drop of the struct via `finish`.
struct Backends {
    index: PexesoIndex<Euclidean>,
    lake: PartitionedLake,
    resident: ResidentPartitions<Euclidean>,
    client: ServeClient,
    handle: Option<pexeso::serve::ServerHandle>,
    dir: PathBuf,
}

impl Backends {
    fn build(seed: u64, tag: &str) -> (Self, VectorStore) {
        let (columns, query) = workload(seed);
        let dir = tempdir(tag);
        let index = PexesoIndex::build(columns.clone(), Euclidean, index_options()).unwrap();
        let lake = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig {
                k: 3,
                method: PartitionMethod::JsdKmeans,
                ..Default::default()
            },
            &index_options(),
            &dir,
        )
        .unwrap();
        assert!(lake.num_partitions() > 1, "need a real partition merge");
        LakeManifest::next_build(&dir, "test", DIM)
            .unwrap()
            .write(&dir)
            .unwrap();
        let resident = ResidentPartitions::load(&lake, Euclidean).unwrap();
        let handle = Server::start(&dir, "127.0.0.1:0", ServeConfig::default()).unwrap();
        let client = ServeClient::connect(handle.addr()).unwrap();
        (
            Self {
                index,
                lake,
                resident,
                client,
                handle: Some(handle),
                dir,
            },
            query,
        )
    }

    /// The four backends as trait objects — the object-safety check is
    /// that this compiles at all.
    fn as_dyn(&self) -> Vec<(&'static str, &dyn Queryable)> {
        vec![
            ("index", &self.index),
            ("lake", &self.lake),
            ("resident", &self.resident),
            ("serve", &self.client),
        ]
    }

    fn finish(mut self) {
        let _ = self.client.shutdown();
        if let Some(handle) = self.handle.take() {
            handle.join();
        }
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Run one query through a trait object.
fn run(backend: &dyn Queryable, query: &Query, vectors: &VectorStore) -> QueryResponse {
    backend.execute(query, vectors).unwrap()
}

/// The acceptance-criterion test: one `Query` through `&dyn Queryable`
/// on all four backends returns byte-identical rankings (hit-for-hit
/// equality of external id, table name, column name, and match count),
/// across modes, thresholds, k values, and execution policies.
#[test]
fn one_query_four_backends_byte_identical() {
    let (backends, query_vecs) = Backends::build(42, "diff");
    let policies = [ExecPolicy::Sequential, ExecPolicy::Parallel { threads: 3 }];
    let mut queries: Vec<Query> = Vec::new();
    for tau in [Tau::Ratio(0.05), Tau::Ratio(0.25)] {
        for policy in policies {
            for t in [
                JoinThreshold::Count(2),
                JoinThreshold::Ratio(0.5),
                JoinThreshold::Ratio(1.0),
            ] {
                queries.push(
                    Query::threshold(tau, t)
                        .with_policy(policy)
                        .expect_metric("euclidean"),
                );
            }
            for k in [1usize, 3, 5, 50] {
                queries.push(
                    Query::topk(tau, k)
                        .with_policy(policy)
                        .expect_metric("euclidean"),
                );
            }
        }
    }
    let mut nonempty = 0;
    for q in &queries {
        let reference = run(&backends.index, q, &query_vecs);
        assert!(reference.exact());
        if !reference.hits.is_empty() {
            nonempty += 1;
        }
        for (name, backend) in backends.as_dyn() {
            let resp = run(backend, q, &query_vecs);
            assert!(resp.exact(), "{name} not exact for {q:?}");
            assert_eq!(
                resp.hits, reference.hits,
                "{name} diverged from the in-memory backend for {q:?}"
            );
        }
    }
    assert!(nonempty > queries.len() / 2, "workload must produce hits");
    backends.finish();
}

/// Requesting a trace never changes the answer: on every backend, a
/// traced query returns hits byte-identical to the untraced run, a
/// trace arrives exactly when one was asked for, and the canonical
/// phase spans are present (including over the wire).
#[test]
fn tracing_never_changes_results_across_backends() {
    let (backends, query_vecs) = Backends::build(47, "trace");
    let queries = [
        Query::threshold(Tau::Ratio(0.2), JoinThreshold::Ratio(0.5)),
        Query::topk(Tau::Ratio(0.2), 5),
    ];
    for q in &queries {
        let untraced = run(&backends.index, q, &query_vecs);
        assert!(untraced.trace.is_none(), "no trace unless requested");
        for (name, backend) in backends.as_dyn() {
            let plain = run(backend, q, &query_vecs);
            assert!(plain.trace.is_none(), "{name} traced an untraced query");
            for level in [TraceLevel::Phases, TraceLevel::Detail] {
                let traced = run(backend, &q.clone().with_trace(level), &query_vecs);
                assert_eq!(
                    traced.hits, untraced.hits,
                    "{name} answer changed under {level:?} tracing for {q:?}"
                );
                let trace = traced
                    .trace
                    .as_ref()
                    .unwrap_or_else(|| panic!("{name} dropped the requested {level:?} trace"));
                for phase in ["map", "block", "verify", "merge"] {
                    assert!(trace.find(phase).is_some(), "{name} missing {phase} span");
                }
                assert!(trace.phase_sum() <= trace.root.duration() + Duration::from_millis(1));
            }
        }
    }
    backends.finish();
}

/// Top-k boundary ties resolve by external id on every backend, even
/// where external ids run opposite to insertion order.
#[test]
fn topk_boundary_ties_rank_by_external_id_everywhere() {
    let (backends, query_vecs) = Backends::build(7, "ties");
    // The two twin columns tie with 4 exact matches each; k = 4 puts the
    // boundary inside the tie, so the smaller external id (20) must win
    // the last slot on every backend.
    let q = Query::topk(Tau::Ratio(0.02), 4).expect_metric("euclidean");
    let reference = run(&backends.index, &q, &query_vecs);
    let twin_slots: Vec<u64> = reference
        .hits
        .iter()
        .filter(|h| h.external_id >= 20)
        .map(|h| h.external_id)
        .collect();
    assert_eq!(twin_slots, vec![20], "tie must keep external id 20, not 21");
    for (name, backend) in backends.as_dyn() {
        assert_eq!(
            run(backend, &q, &query_vecs).hits,
            reference.hits,
            "{name} broke the tie differently"
        );
    }
    backends.finish();
}

/// The shared edge-case contract: `k = 0` answers empty (exact, no
/// error), `T = Count(0)` clamps to 1, and an invalid τ is a typed error
/// — identically on all four backends.
#[test]
fn edge_cases_identical_across_backends() {
    let (backends, query_vecs) = Backends::build(11, "edge");
    let k0 = Query::topk(Tau::Ratio(0.1), 0).expect_metric("euclidean");
    let t0 = Query::threshold(Tau::Ratio(0.25), JoinThreshold::Count(0)).expect_metric("euclidean");
    let t1 = Query::threshold(Tau::Ratio(0.25), JoinThreshold::Count(1)).expect_metric("euclidean");
    let bad_tau =
        Query::threshold(Tau::Ratio(1.5), JoinThreshold::Count(1)).expect_metric("euclidean");
    let t1_reference = run(&backends.index, &t1, &query_vecs);
    for (name, backend) in backends.as_dyn() {
        // k = 0: empty, exact, no error.
        let resp = backend.execute(&k0, &query_vecs).unwrap();
        assert!(resp.hits.is_empty() && resp.exact(), "{name} k=0 contract");
        // T = 0 clamps to "at least one match" — same answer as T = 1.
        let resp = backend.execute(&t0, &query_vecs).unwrap();
        assert_eq!(resp.hits, t1_reference.hits, "{name} T=0 contract");
        // Invalid τ: typed error, never a silent empty result.
        assert!(
            backend.execute(&bad_tau, &query_vecs).is_err(),
            "{name} must reject tau ratio > 1"
        );
        // Metric expectation mismatch: typed error on every backend.
        let wrong =
            Query::threshold(Tau::Ratio(0.1), JoinThreshold::Count(1)).expect_metric("manhattan");
        assert!(
            backend.execute(&wrong, &query_vecs).is_err(),
            "{name} must reject a metric mismatch"
        );
        // No expectation at all: every backend (including the remote one,
        // whose wire frame spells `None` as an empty metric string)
        // answers with its own build metric.
        let agnostic = Query::threshold(Tau::Ratio(0.25), JoinThreshold::Count(1));
        let resp = backend.execute(&agnostic, &query_vecs).unwrap();
        assert_eq!(
            resp.hits, t1_reference.hits,
            "{name} metric-agnostic contract"
        );
    }
    backends.finish();
}

/// Budgets return the typed `Exceeded` outcome instead of silently
/// partial results, deterministically for the distance cap, on local and
/// remote backends alike.
#[test]
fn budget_exceeded_is_typed_and_deterministic() {
    let (backends, query_vecs) = Backends::build(23, "budget");
    // Establish that the unbudgeted query really pays distance work.
    let full = Query::threshold(Tau::Ratio(0.25), JoinThreshold::Ratio(1.0))
        .with_flags(LemmaFlags {
            lemma2_vector_match: false, // force exact distances
            ..LemmaFlags::all()
        })
        .expect_metric("euclidean");
    let exact = run(&backends.index, &full, &query_vecs);
    assert!(
        exact.stats.distance_computations > 4,
        "workload too small to exercise the budget: {}",
        exact.stats.distance_computations
    );

    let capped = full.clone().with_max_distance_computations(2);
    for (name, backend) in backends.as_dyn() {
        let a = backend.execute(&capped, &query_vecs).unwrap();
        assert_eq!(
            a.outcome,
            QueryOutcome::Exceeded(Exceeded::DistanceComputations),
            "{name} must flag the tripped distance cap"
        );
        // Deterministic cutoff: the same budget yields the same partial
        // answer every time.
        let b = backend.execute(&capped, &query_vecs).unwrap();
        assert_eq!(a.hits, b.hits, "{name} budget cutoff must be deterministic");
        assert_eq!(a.outcome, b.outcome);
    }

    // A zero deadline trips the wall-clock limit (top-k checks it before
    // the probe pass, threshold at the first query vector).
    let instant = Query::topk(Tau::Ratio(0.25), 3)
        .with_deadline(Duration::ZERO)
        .expect_metric("euclidean");
    for (name, backend) in backends.as_dyn() {
        let resp = backend.execute(&instant, &query_vecs).unwrap();
        assert_eq!(
            resp.outcome,
            QueryOutcome::Exceeded(Exceeded::Deadline),
            "{name} must flag the expired deadline"
        );
    }

    // A generous budget changes nothing: exact results, exact flag.
    let roomy = full.clone().with_max_distance_computations(u64::MAX);
    for (name, backend) in backends.as_dyn() {
        let resp = backend.execute(&roomy, &query_vecs).unwrap();
        assert!(resp.exact(), "{name} must stay exact under a roomy budget");
        assert_eq!(resp.hits, exact.hits, "{name} roomy-budget hits diverged");
    }
    backends.finish();
}

/// `execute_many` through the trait object answers each column exactly
/// like `execute`, under both outer policies.
#[test]
fn execute_many_matches_execute_through_dyn() {
    let (backends, query_vecs) = Backends::build(31, "many");
    // Three query columns: the planted one and two random ones.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut q2 = VectorStore::new(DIM);
    let mut q3 = VectorStore::new(DIM);
    for _ in 0..5 {
        q2.push(&unit(&mut rng)).unwrap();
        q3.push(&unit(&mut rng)).unwrap();
    }
    let columns: Vec<&VectorStore> = vec![&query_vecs, &q2, &q3];
    // `Fixed` bypasses the adaptive clamp, so the fan-out paths run even
    // on single-core hosts where `Parallel` plans down to inline.
    for policy in [
        ExecPolicy::Sequential,
        ExecPolicy::Parallel { threads: 4 },
        ExecPolicy::Fixed { threads: 3 },
    ] {
        let base = Query::threshold(Tau::Ratio(0.2), JoinThreshold::Ratio(0.4));
        for q in [base, Query::topk(Tau::Ratio(0.2), 3)] {
            let q = q.with_policy(policy).expect_metric("euclidean");
            for (name, backend) in backends.as_dyn() {
                let batched = backend.execute_many(&q, &columns).unwrap();
                assert_eq!(batched.len(), 3);
                for (i, resp) in batched.iter().enumerate() {
                    let solo = backend.execute(&q, columns[i]).unwrap();
                    assert_eq!(
                        resp.hits, solo.hits,
                        "{name} column {i} diverged under {policy:?}"
                    );
                    assert_eq!(
                        resp.outcome, solo.outcome,
                        "{name} column {i} outcome diverged under {policy:?}"
                    );
                    // Counter-level equality: batching may only
                    // restructure the sweep, never change the work each
                    // column observes (wall-clock timings are exempt).
                    // The serve backend is excluded: its result cache
                    // legitimately answers repeats with zero distance
                    // computations, so counters are not reproducible
                    // across successive identical requests.
                    if name == "serve" {
                        continue;
                    }
                    assert_eq!(
                        resp.stats.distance_computations, solo.stats.distance_computations,
                        "{name} column {i} distance counter diverged under {policy:?}"
                    );
                    assert_eq!(resp.stats.mapping_distances, solo.stats.mapping_distances);
                    assert_eq!(resp.stats.candidate_pairs, solo.stats.candidate_pairs);
                    assert_eq!(resp.stats.matching_pairs, solo.stats.matching_pairs);
                    assert_eq!(resp.stats.early_joinable, solo.stats.early_joinable);
                    assert_eq!(resp.stats.lemma7_pruned, solo.stats.lemma7_pruned);
                }
            }
        }
    }
    backends.finish();
}

/// A generic function over `&dyn Queryable` (the shape batch drivers and
/// servers are written in) — and proof the trait object composes with the
/// pipeline's `run_queries`.
#[test]
fn dyn_queryable_composes_with_the_pipeline() {
    use pexeso::pipeline::{run_queries, EmbeddedLakeBuilder};
    let embedder = HashEmbedder::new(24);
    let lake = EmbeddedLakeBuilder::new(&embedder)
        .add_column(
            "cities",
            "name",
            &["Berlin".into(), "Paris".into(), "Rome".into()],
        )
        .add_column(
            "foods",
            "name",
            &["Bread".into(), "Cheese".into(), "Olives".into()],
        )
        .build()
        .unwrap();
    let index = PexesoIndex::build(lake.columns, Euclidean, IndexOptions::default()).unwrap();
    let backend: &dyn Queryable = &index;
    let query = Query::threshold(Tau::Ratio(0.05), JoinThreshold::Ratio(0.9));
    let results = run_queries(
        backend,
        &embedder,
        &[
            vec!["Berlin".into(), "Paris".into(), "Rome".into()],
            vec!["Bread".into(), "Cheese".into(), "Olives".into()],
        ],
        &query,
    )
    .unwrap();
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].1.hits.len(), 1);
    assert_eq!(results[0].1.hits[0].table_name, "cities");
    assert_eq!(results[1].1.hits.len(), 1);
    assert_eq!(results[1].1.hits[0].table_name, "foods");
}
