//! Workload construction shared by all experiments.
//!
//! Three dataset profiles mirror Table III of the paper at laptop scale:
//!
//! | profile | paper      | shape                         | embedding dim |
//! |---------|------------|-------------------------------|---------------|
//! | `open`  | OPEN       | few tables, long columns      | 96 (fastText 300 stand-in) |
//! | `swdc`  | SWDC       | many tables, short columns    | 48 (GloVe 50 stand-in)     |
//! | `lwdc`  | LWDC       | like swdc, several× larger, disk-resident | 48 |

use pexeso::pipeline::{embed_query, embed_synthetic_lake, EmbeddedLake, EmbeddedQuery};
use pexeso_embed::{Embedder, SemanticEmbedder};
use pexeso_lake::generator::{GenTable, GeneratorConfig, SyntheticLake};

/// A fully prepared workload: generated lake, its embedder (which owns the
/// lexicon), and the embedded repository.
pub struct Workload {
    pub name: &'static str,
    pub lake: SyntheticLake,
    pub embedder: SemanticEmbedder,
    pub embedded: EmbeddedLake,
    pub dim: usize,
}

impl Workload {
    fn prepare(name: &'static str, config: GeneratorConfig, dim: usize) -> Self {
        let lake = SyntheticLake::generate(config);
        let embedder = SemanticEmbedder::new(dim, lake.lexicon.clone());
        let mut embedded = embed_synthetic_lake(&embedder, &lake).expect("non-empty lake");
        embedded.columns.store_mut().normalize_all();
        Self {
            name,
            lake,
            embedder,
            embedded,
            dim,
        }
    }

    /// OPEN-like profile.
    pub fn open(scale: f64, seed: u64) -> Self {
        Self::prepare("OPEN", GeneratorConfig::open_like(scale, seed), 96)
    }

    /// SWDC-like profile.
    pub fn swdc(scale: f64, seed: u64) -> Self {
        Self::prepare("SWDC", GeneratorConfig::wdc_like(scale * 0.5, seed), 48)
    }

    /// LWDC-like profile (larger; callers partition it to disk).
    pub fn lwdc(scale: f64, seed: u64) -> Self {
        Self::prepare("LWDC", GeneratorConfig::wdc_like(scale * 2.0, seed), 48)
    }

    /// Query rows appropriate for this profile's column lengths.
    pub fn query_rows(&self) -> usize {
        let (lo, hi) = self.lake.config.rows_per_table;
        ((lo + hi) / 2).max(5)
    }

    /// Generate the i-th query table (deterministic) over a rotating
    /// domain, embed it, and return both forms.
    pub fn query(&self, i: usize) -> (GenTable, EmbeddedQuery) {
        self.query_sized(i, self.query_rows())
    }

    /// Like [`Workload::query`] with an explicit query-column size.
    pub fn query_sized(&self, i: usize, rows: usize) -> (GenTable, EmbeddedQuery) {
        let domain = i % self.lake.config.num_domains;
        let gen = self.lake.make_query(domain, rows, q_seed(i));
        let embedded = embed_query(&self.embedder, gen.key_values());
        (gen, embedded)
    }

    /// Paper-tuned index parameters (Table VI found |P|=5, m=6 optimal for
    /// OPEN and |P|=3, m=4 for SWDC/LWDC).
    pub fn index_options(&self) -> pexeso_core::IndexOptions {
        let (p, m) = if self.name == "OPEN" { (5, 6) } else { (3, 4) };
        pexeso_core::IndexOptions {
            num_pivots: p,
            levels: Some(m),
            pivot_selection: pexeso_core::PivotSelection::Pca,
            seed: 42,
            ..Default::default()
        }
    }

    /// Rendered key-column strings per lake table (for string baselines).
    pub fn string_columns(&self) -> pexeso_baselines::stringjoin::StringColumns {
        let mut repo = pexeso_baselines::stringjoin::StringColumns::default();
        for t in &self.lake.tables {
            repo.add(t.table.name(), t.key_values().to_vec());
        }
        repo
    }

    /// Total key cells (the |RV| analogue before embedding).
    pub fn total_cells(&self) -> usize {
        self.lake.total_key_cells()
    }
}

fn q_seed(i: usize) -> u64 {
    0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)
}

/// Embed a query with a *different* embedder (ablation helper).
pub fn embed_query_with(embedder: &dyn Embedder, gen: &GenTable) -> EmbeddedQuery {
    embed_query(embedder, gen.key_values())
}
