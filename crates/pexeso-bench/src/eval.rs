//! Precision/recall scoring against generator ground truth.
//!
//! The paper labels retrieved tables by hand and measures recall against a
//! pooled retrieved set; our generator knows the exact entity overlap, so
//! both metrics are exact here.

use std::collections::HashSet;

/// Precision and recall of a retrieved table-id set against the truth.
pub fn precision_recall(retrieved: &HashSet<usize>, truth: &HashSet<usize>) -> (f64, f64) {
    if retrieved.is_empty() {
        let recall = if truth.is_empty() { 1.0 } else { 0.0 };
        return (1.0, recall);
    }
    let inter = retrieved.intersection(truth).count() as f64;
    let precision = inter / retrieved.len() as f64;
    let recall = if truth.is_empty() {
        1.0
    } else {
        inter / truth.len() as f64
    };
    (precision, recall)
}

/// Harmonic mean.
pub fn f1(precision: f64, recall: f64) -> f64 {
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// Accumulates per-query (precision, recall) pairs and reports means.
#[derive(Debug, Default, Clone)]
pub struct PrAccumulator {
    precisions: Vec<f64>,
    recalls: Vec<f64>,
}

impl PrAccumulator {
    pub fn push(&mut self, retrieved: &HashSet<usize>, truth: &HashSet<usize>) {
        let (p, r) = precision_recall(retrieved, truth);
        self.precisions.push(p);
        self.recalls.push(r);
    }

    pub fn mean_precision(&self) -> f64 {
        mean(&self.precisions)
    }

    pub fn mean_recall(&self) -> f64 {
        mean(&self.recalls)
    }

    pub fn mean_f1(&self) -> f64 {
        f1(self.mean_precision(), self.mean_recall())
    }

    pub fn n(&self) -> usize {
        self.precisions.len()
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[usize]) -> HashSet<usize> {
        v.iter().copied().collect()
    }

    #[test]
    fn pr_basics() {
        let (p, r) = precision_recall(&set(&[1, 2, 3]), &set(&[2, 3, 4, 5]));
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_retrieved_is_vacuous_precision() {
        let (p, r) = precision_recall(&set(&[]), &set(&[1]));
        assert_eq!((p, r), (1.0, 0.0));
        let (p, r) = precision_recall(&set(&[]), &set(&[]));
        assert_eq!((p, r), (1.0, 1.0));
    }

    #[test]
    fn f1_harmonic() {
        assert_eq!(f1(1.0, 1.0), 1.0);
        assert_eq!(f1(0.0, 1.0), 0.0);
        assert!((f1(0.5, 1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_means() {
        let mut acc = PrAccumulator::default();
        acc.push(&set(&[1]), &set(&[1]));
        acc.push(&set(&[1, 2]), &set(&[1]));
        assert_eq!(acc.n(), 2);
        assert!((acc.mean_precision() - 0.75).abs() < 1e-12);
        assert!((acc.mean_recall() - 1.0).abs() < 1e-12);
    }
}
