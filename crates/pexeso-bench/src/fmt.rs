//! Aligned plain-text table printing for the experiment binaries, matching
//! the row/column structure of the paper's tables so outputs can be
//! compared side by side.

/// A simple column-aligned table printer.
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with every column padded to its widest cell.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds with sensible precision.
pub fn secs(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{:.4}", s)
    }
}

/// Format a ratio as `0.xxx`.
pub fn ratio(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TablePrinter::new(&["Method", "P", "R"]);
        t.row(vec!["equi-join".into(), "1.000".into(), "0.611".into()]);
        t.row(vec!["PEXESO".into(), "0.911".into(), "0.821".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[2].starts_with("equi-join"));
        // P column starts at the same offset in all data rows.
        let p0 = lines[2].find("1.000").unwrap();
        let p1 = lines[3].find("0.911").unwrap();
        assert_eq!(p0, p1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = TablePrinter::new(&["a", "b"]);
        t.row(vec!["only".into()]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(secs(std::time::Duration::from_millis(123)), "0.1230");
        assert_eq!(secs(std::time::Duration::from_secs(12)), "12.00");
        assert_eq!(secs(std::time::Duration::from_secs(250)), "250");
    }
}
