//! Fig. 8 — PEXESO vs the approximate PQ-75 / PQ-85 search time, varying
//! τ (at T=60 %) and T (at τ=6 %) on the SWDC-like dataset.
//!
//! Regenerate: `cargo run --release -p pexeso-bench --bin exp_fig8`

use std::time::Instant;

use pexeso::prelude::*;
use pexeso_baselines::pq::{PqConfig, PqIndex};
use pexeso_baselines::VectorJoinSearch;
use pexeso_bench::fmt::{secs, TablePrinter};
use pexeso_bench::workloads::Workload;

fn main() {
    let scale = pexeso_bench::scale();
    let n_queries = pexeso_bench::n_queries_efficiency();
    println!(
        "Fig. 8: comparison to approximate PQ (scale={scale}, {n_queries} queries, SWDC-like)\n"
    );

    let w = Workload::swdc(scale, 13);
    let queries: Vec<_> = (0..n_queries).map(|i| w.query(i).1).collect();

    let pex = PexesoIndex::build(w.embedded.columns.clone(), Euclidean, w.index_options())
        .expect("pexeso");
    let pq_cfg = PqConfig {
        num_subspaces: (w.dim / 8).max(2),
        num_centroids: 32,
        ..Default::default()
    };
    let mut pq75 = PqIndex::build(&w.embedded.columns, pq_cfg.clone()).expect("pq75");
    let mut pq85 = PqIndex::build(&w.embedded.columns, pq_cfg).expect("pq85");
    let tau_default = 0.06f32 * 2.0;
    pq75.calibrate_recall(tau_default, 0.75, 16);
    pq85.calibrate_recall(tau_default, 0.85, 16);

    let avg = |f: &dyn Fn(&pexeso::pipeline::EmbeddedQuery, Tau, JoinThreshold),
               tau: f32,
               t: f64|
     -> String {
        let start = Instant::now();
        for q in &queries {
            f(q, Tau::Ratio(tau), JoinThreshold::Ratio(t));
        }
        secs(start.elapsed() / queries.len() as u32)
    };

    println!("(a) varying tau (T = 60%)");
    let mut table = TablePrinter::new(&["tau", "PQ-85", "PQ-75", "PEXESO"]);
    for tau in [0.02f32, 0.04, 0.06, 0.08] {
        table.row(vec![
            format!("{:.0}%", tau * 100.0),
            avg(
                &|q, tau, t| {
                    let _ = pq85.search(q.store(), tau, t);
                },
                tau,
                0.6,
            ),
            avg(
                &|q, tau, t| {
                    let _ = pq75.search(q.store(), tau, t);
                },
                tau,
                0.6,
            ),
            avg(
                &|q, tau, t| {
                    let _ = pex.execute(&Query::threshold(tau, t), q.store());
                },
                tau,
                0.6,
            ),
        ]);
    }
    table.print();

    println!("\n(b) varying T (tau = 6%)");
    let mut table = TablePrinter::new(&["T", "PQ-85", "PQ-75", "PEXESO"]);
    for t in [0.2f64, 0.4, 0.6, 0.8] {
        table.row(vec![
            format!("{:.0}%", t * 100.0),
            avg(
                &|q, tau, tt| {
                    let _ = pq85.search(q.store(), tau, tt);
                },
                0.06,
                t,
            ),
            avg(
                &|q, tau, tt| {
                    let _ = pq75.search(q.store(), tau, tt);
                },
                0.06,
                t,
            ),
            avg(
                &|q, tau, tt| {
                    let _ = pex.execute(&Query::threshold(tau, tt), q.store());
                },
                0.06,
                t,
            ),
        ]);
    }
    table.print();
}
