//! Fig. 7 — (a) PCA-based vs random pivot selection (selection CPU time
//! and resulting search time as the vector count grows) and (b) data
//! partitioning strategies (JSD vs average-k-means vs random; out-of-core
//! search time vs partition count).
//!
//! Regenerate: `cargo run --release -p pexeso-bench --bin exp_fig7`

use std::time::Instant;

use pexeso::prelude::*;
use pexeso_bench::fmt::{secs, TablePrinter};
use pexeso_bench::workloads::Workload;
use pexeso_core::partition::{PartitionConfig, PartitionMethod};
use pexeso_core::pivot::select_pivots;

fn fig7a(w: &Workload, n_queries: usize) {
    println!("(a) pivot selection: PCA-based vs random (|P|=5)");
    let mut table = TablePrinter::new(&[
        "vectors",
        "PCA select (s)",
        "rand select (s)",
        "PCA search (s)",
        "rand search (s)",
    ]);
    let all = &w.embedded.columns;
    let queries: Vec<_> = (0..n_queries).map(|i| w.query(i).1).collect();
    for pct in [0.25f64, 0.5, 0.75, 1.0] {
        let sub = subsample_columns(all, pct, 7);
        let mut row = vec![sub.n_vectors().to_string()];
        let mut search_times = Vec::new();
        for method in [PivotSelection::Pca, PivotSelection::Random] {
            let start = Instant::now();
            let _pivots = select_pivots(sub.store(), &Euclidean, 5, method, 42).expect("pivots");
            row.push(secs(start.elapsed()));

            let opts = IndexOptions {
                num_pivots: 5,
                levels: Some(4),
                pivot_selection: method,
                seed: 42,
                ..Default::default()
            };
            let index = PexesoIndex::build(sub.clone(), Euclidean, opts).expect("build");
            let start = Instant::now();
            for q in &queries {
                let _ = index.execute(
                    &Query::threshold(Tau::Ratio(0.06), JoinThreshold::Ratio(0.6)),
                    q.store(),
                );
            }
            search_times.push(secs(start.elapsed() / n_queries as u32));
        }
        row.extend(search_times);
        table.row(row);
    }
    table.print();
    println!();
}

/// Copy a fraction of the columns into a fresh repository.
fn subsample_columns(columns: &ColumnSet, pct: f64, seed: u64) -> ColumnSet {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = columns.n_columns();
    let keep = ((n as f64 * pct).round() as usize).clamp(1, n);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    idx.truncate(keep);
    idx.sort_unstable();
    let mut out = ColumnSet::new(columns.dim());
    for &ci in &idx {
        let meta = &columns.columns()[ci];
        let vectors = meta
            .vector_range()
            .map(|v| columns.store().get_raw(v as usize));
        out.add_column(
            &meta.table_name,
            &meta.column_name,
            meta.external_id,
            vectors,
        )
        .expect("copy");
    }
    out
}

fn fig7b(w: &Workload, n_queries: usize) {
    println!("(b) data partitioning: JSD vs average k-means vs random (out-of-core search time)");
    let queries: Vec<_> = (0..n_queries).map(|i| w.query(i).1).collect();
    let mut table = TablePrinter::new(&["partitions", "JSD (s)", "Avg k-means (s)", "Random (s)"]);
    for k in [2usize, 4, 6, 8] {
        let mut row = vec![k.to_string()];
        for method in [
            PartitionMethod::JsdKmeans,
            PartitionMethod::AvgKmeans,
            PartitionMethod::Random,
        ] {
            let dir = std::env::temp_dir()
                .join(format!("pexeso_f7b_{method:?}_{k}_{}", std::process::id()));
            let lake = PartitionedLake::build(
                &w.embedded.columns,
                Euclidean,
                &PartitionConfig {
                    k,
                    method,
                    ..Default::default()
                },
                &w.index_options(),
                &dir,
            )
            .expect("partition build");
            let start = Instant::now();
            for q in &queries {
                let _ = lake.execute(
                    &Query::threshold(Tau::Ratio(0.06), JoinThreshold::Ratio(0.6)),
                    q.store(),
                );
            }
            row.push(secs(start.elapsed() / n_queries as u32));
            std::fs::remove_dir_all(&dir).ok();
        }
        table.row(row);
    }
    table.print();
}

fn main() {
    let scale = pexeso_bench::scale();
    let n_queries = pexeso_bench::n_queries_efficiency().min(10);
    println!("Fig. 7: pivot selection and data partitioning (scale={scale})\n");
    let w = Workload::lwdc(scale, 17);
    fig7a(&w, n_queries);
    fig7b(&w, n_queries.min(5));
}
