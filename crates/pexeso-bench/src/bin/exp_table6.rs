//! Table VI — parameter tuning: index / blocking / search time across
//! (|P|, m), plus the cost-model justification (optimal m by analysis).
//!
//! Regenerate: `cargo run --release -p pexeso-bench --bin exp_table6`

use std::time::{Duration, Instant};

use pexeso::prelude::*;
use pexeso_bench::fmt::{secs, TablePrinter};
use pexeso_bench::workloads::Workload;
use pexeso_core::cost::analyze_levels;
use pexeso_core::mapping::MappedVectors;
use pexeso_core::pivot::select_pivots;

fn run_dataset(w: &Workload, n_queries: usize) {
    println!(
        "== {} ({} columns, {} vectors) ==",
        w.name,
        w.embedded.columns.n_columns(),
        w.embedded.columns.n_vectors()
    );
    let queries: Vec<_> = (0..n_queries).map(|i| w.query(i).1).collect();
    let tau = Tau::Ratio(0.06);
    let t = JoinThreshold::Ratio(0.6);

    let mut table = TablePrinter::new(&["|P|", "m", "index (s)", "block (s)", "block+verify (s)"]);
    let mut best: Option<(usize, usize, Duration)> = None;
    for num_pivots in [1usize, 3, 5, 7, 9] {
        for m in [2usize, 4, 6, 8] {
            let opts = IndexOptions {
                num_pivots,
                levels: Some(m),
                pivot_selection: PivotSelection::Pca,
                seed: 42,
                ..Default::default()
            };
            let start = Instant::now();
            let index =
                PexesoIndex::build(w.embedded.columns.clone(), Euclidean, opts).expect("build");
            let index_time = start.elapsed();

            let mut block_total = Duration::ZERO;
            let mut search_total = Duration::ZERO;
            for q in &queries {
                let r = index
                    .execute(&Query::threshold(tau, t), q.store())
                    .expect("search");
                block_total += r.stats.block_time;
                search_total += r.stats.block_time + r.stats.verify_time;
            }
            let block_avg = block_total / n_queries as u32;
            let search_avg = search_total / n_queries as u32;
            if best.as_ref().is_none_or(|(_, _, b)| search_avg < *b) {
                best = Some((num_pivots, m, search_avg));
            }
            table.row(vec![
                num_pivots.to_string(),
                m.to_string(),
                secs(index_time),
                secs(block_avg),
                secs(search_avg),
            ]);
        }
    }
    table.print();
    let (bp, bm, bt) = best.expect("non-empty grid");
    println!("empirically optimal: |P|={bp}, m={bm} ({} s)\n", secs(bt));

    // Cost-model choice of m (Section III-E justification).
    let pivots = select_pivots(
        w.embedded.columns.store(),
        &Euclidean,
        bp,
        PivotSelection::Pca,
        42,
    )
    .expect("pivots");
    let mapped =
        MappedVectors::build(w.embedded.columns.store(), &pivots, &Euclidean, None).expect("map");
    let span = 2.0f32.max(mapped.max_coord()) + 1e-4;
    let choice = analyze_levels(&w.embedded.columns, &mapped, &pivots, &Euclidean, span, 42)
        .expect("cost analysis");
    println!(
        "cost model at |P|={bp}: fractional m = {:.2}, chosen m = {} (empirical optimum m = {bm})\n",
        choice.fractional_m, choice.chosen_m
    );
}

fn main() {
    let scale = pexeso_bench::scale();
    let n_queries = pexeso_bench::n_queries_efficiency();
    println!("Table VI: parameter tuning in PEXESO (scale={scale}, {n_queries} queries, tau=6%, T=60%)\n");
    run_dataset(&Workload::open(scale * 0.5, 11), n_queries);
    run_dataset(&Workload::swdc(scale, 13), n_queries);
}
