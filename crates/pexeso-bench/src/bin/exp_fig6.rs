//! Fig. 6 — (a) distance-computation counts and (b) index sizes for
//! CTREE, EPT, PEXESO-H, PEXESO on the OPEN-like and SWDC-like datasets.
//!
//! Regenerate: `cargo run --release -p pexeso-bench --bin exp_fig6`

use pexeso::prelude::*;
use pexeso_baselines::covertree::CoverTreeIndex;
use pexeso_baselines::ept::EptIndex;
use pexeso_baselines::pexeso_h::PexesoHIndex;
use pexeso_baselines::VectorJoinSearch;
use pexeso_bench::fmt::TablePrinter;
use pexeso_bench::workloads::Workload;

/// Per-method (distance-computation count, index size) measurements.
type Fig6Numbers = (Vec<(String, u64)>, Vec<(String, usize)>);

fn run(w: &Workload, n_queries: usize) -> Fig6Numbers {
    let queries: Vec<_> = (0..n_queries).map(|i| w.query(i).1).collect();
    let tau = Tau::Ratio(0.06);
    let t = JoinThreshold::Ratio(0.6);

    let ctree = CoverTreeIndex::build(&w.embedded.columns, Euclidean).expect("ctree");
    let ept = EptIndex::build(&w.embedded.columns, Euclidean, 5, 42).expect("ept");
    let h = PexesoHIndex::build(&w.embedded.columns, Euclidean, w.index_options()).expect("h");
    let pex = PexesoIndex::build(w.embedded.columns.clone(), Euclidean, w.index_options())
        .expect("pexeso");

    let mut dists = Vec::new();
    let mut count = |name: &str, f: &dyn Fn(&pexeso::pipeline::EmbeddedQuery) -> u64| {
        let total: u64 = queries.iter().map(f).sum();
        dists.push((name.to_string(), total / n_queries as u64));
    };
    count("CTREE", &|q| {
        ctree
            .search(q.store(), tau, t)
            .unwrap()
            .1
            .distance_computations
    });
    count("EPT", &|q| {
        ept.search(q.store(), tau, t)
            .unwrap()
            .1
            .distance_computations
    });
    count("PEXESO-H", &|q| {
        h.search(q.store(), tau, t).unwrap().1.distance_computations
    });
    count("PEXESO", &|q| {
        pex.execute(&Query::threshold(tau, t), q.store())
            .unwrap()
            .stats
            .distance_computations
    });

    let sizes = vec![
        ("CTREE".to_string(), ctree.index_bytes()),
        ("EPT".to_string(), ept.index_bytes()),
        ("PEXESO-H".to_string(), h.index_bytes()),
        ("PEXESO".to_string(), pex.index_bytes()),
    ];
    (dists, sizes)
}

fn main() {
    let scale = pexeso_bench::scale();
    let n_queries = pexeso_bench::n_queries_efficiency();
    println!("Fig. 6: distance computations and index sizes (scale={scale}, {n_queries} queries, tau=6%, T=60%)\n");

    let open = Workload::open(scale * 0.5, 11);
    let swdc = Workload::swdc(scale, 13);
    let (open_d, open_s) = run(&open, n_queries);
    let (swdc_d, swdc_s) = run(&swdc, n_queries);

    println!("(a) average distance computations per query");
    let mut t = TablePrinter::new(&["Method", "OPEN", "SWDC"]);
    for ((name, od), (_, sd)) in open_d.iter().zip(swdc_d.iter()) {
        t.row(vec![name.clone(), od.to_string(), sd.to_string()]);
    }
    t.print();

    println!("\n(b) index size (MB)");
    let mut t = TablePrinter::new(&["Method", "OPEN", "SWDC"]);
    for ((name, ob), (_, sb)) in open_s.iter().zip(swdc_s.iter()) {
        t.row(vec![
            name.clone(),
            format!("{:.2}", *ob as f64 / 1e6),
            format!("{:.2}", *sb as f64 / 1e6),
        ]);
    }
    t.print();
}
