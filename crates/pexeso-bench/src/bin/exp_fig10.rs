//! Fig. 10 — scalability of PEXESO and PEXESO-H on the LWDC-like dataset:
//! (a/b) varying the fraction of columns, (c/d) varying the fraction of
//! vectors per column, (e) varying the embedding dimensionality. Reports
//! search time and index size.
//!
//! Regenerate: `cargo run --release -p pexeso-bench --bin exp_fig10`

use std::time::Instant;

use pexeso::pipeline::embed_synthetic_lake;
use pexeso::prelude::*;
use pexeso_baselines::pexeso_h::PexesoHIndex;
use pexeso_baselines::VectorJoinSearch;
use pexeso_bench::fmt::{secs, TablePrinter};
use pexeso_bench::workloads::Workload;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn avg_search(
    columns: &ColumnSet,
    opts: &IndexOptions,
    queries: &[pexeso::pipeline::EmbeddedQuery],
) -> (String, String, String, String) {
    let pex = PexesoIndex::build(columns.clone(), Euclidean, opts.clone()).expect("pexeso");
    let h = PexesoHIndex::build(columns, Euclidean, opts.clone()).expect("h");
    let tau = Tau::Ratio(0.06);
    let t = JoinThreshold::Ratio(0.6);

    let start = Instant::now();
    for q in queries {
        let _ = pex.execute(&Query::threshold(tau, t), q.store());
    }
    let pex_time = start.elapsed() / queries.len() as u32;
    let start = Instant::now();
    for q in queries {
        let _ = h.search(q.store(), tau, t);
    }
    let h_time = start.elapsed() / queries.len() as u32;
    (
        secs(h_time),
        secs(pex_time),
        format!("{:.2}", h.index_bytes() as f64 / 1e6),
        format!("{:.2}", pex.index_bytes() as f64 / 1e6),
    )
}

/// Keep a fraction of the columns.
fn sample_columns(columns: &ColumnSet, pct: f64, seed: u64) -> ColumnSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = columns.n_columns();
    let keep = ((n as f64 * pct).round() as usize).clamp(1, n);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    idx.truncate(keep);
    idx.sort_unstable();
    let mut out = ColumnSet::new(columns.dim());
    for &ci in &idx {
        let meta = &columns.columns()[ci];
        out.add_column(
            &meta.table_name,
            &meta.column_name,
            meta.external_id,
            meta.vector_range()
                .map(|v| columns.store().get_raw(v as usize)),
        )
        .expect("copy");
    }
    out
}

/// Keep a fraction of each column's vectors (the paper samples rows per
/// column, not from the pooled vector set).
fn sample_vectors(columns: &ColumnSet, pct: f64, seed: u64) -> ColumnSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = ColumnSet::new(columns.dim());
    for meta in columns.columns() {
        let ids: Vec<u32> = meta.vector_range().collect();
        let keep = ((ids.len() as f64 * pct).round() as usize).clamp(1, ids.len());
        let mut chosen = ids.clone();
        chosen.shuffle(&mut rng);
        chosen.truncate(keep);
        chosen.sort_unstable();
        out.add_column(
            &meta.table_name,
            &meta.column_name,
            meta.external_id,
            chosen.iter().map(|&v| columns.store().get_raw(v as usize)),
        )
        .expect("copy");
    }
    out
}

fn main() {
    let scale = pexeso_bench::scale();
    let n_queries = pexeso_bench::n_queries_efficiency().min(8);
    println!(
        "Fig. 10: scalability on LWDC-like (scale={scale}, {n_queries} queries, tau=6%, T=60%)\n"
    );

    let w = Workload::lwdc(scale, 17);
    let queries: Vec<_> = (0..n_queries).map(|i| w.query(i).1).collect();
    let opts = w.index_options();

    println!("(a/b) varying % of columns");
    let mut table = TablePrinter::new(&[
        "% cols",
        "PEXESO-H time",
        "PEXESO time",
        "PEXESO-H MB",
        "PEXESO MB",
    ]);
    for pct in [0.2f64, 0.4, 0.6, 0.8, 1.0] {
        let sub = sample_columns(&w.embedded.columns, pct, 3);
        let (ht, pt, hs, ps) = avg_search(&sub, &opts, &queries);
        table.row(vec![format!("{:.0}%", pct * 100.0), ht, pt, hs, ps]);
    }
    table.print();

    println!("\n(c/d) varying % of vectors per column");
    let mut table = TablePrinter::new(&[
        "% vecs",
        "PEXESO-H time",
        "PEXESO time",
        "PEXESO-H MB",
        "PEXESO MB",
    ]);
    for pct in [0.2f64, 0.4, 0.6, 0.8, 1.0] {
        let sub = sample_vectors(&w.embedded.columns, pct, 4);
        let (ht, pt, hs, ps) = avg_search(&sub, &opts, &queries);
        table.row(vec![format!("{:.0}%", pct * 100.0), ht, pt, hs, ps]);
    }
    table.print();

    println!("\n(e) varying dimensionality (fresh embeddings per dim)");
    let mut table = TablePrinter::new(&[
        "dim",
        "PEXESO-H time",
        "PEXESO time",
        "PEXESO-H MB",
        "PEXESO MB",
    ]);
    for dim in [48usize, 96, 144] {
        let embedder = pexeso_embed::SemanticEmbedder::new(dim, w.lake.lexicon.clone());
        let mut embedded = embed_synthetic_lake(&embedder, &w.lake).expect("embed");
        embedded.columns.store_mut().normalize_all();
        let dim_queries: Vec<_> = (0..n_queries)
            .map(|i| {
                let (gen, _) = w.query(i);
                pexeso::pipeline::embed_query(&embedder, gen.key_values())
            })
            .collect();
        let (ht, pt, hs, ps) = avg_search(&embedded.columns, &opts, &dim_queries);
        table.row(vec![dim.to_string(), ht, pt, hs, ps]);
    }
    table.print();
}
