//! Table IV — precision & recall of joinable table search.
//!
//! Competitors: equi-join, Jaccard-join, edit-join, fuzzy-join,
//! TF-IDF-join, PEXESO, and "our join with PQ-85" (PEXESO's workflow with
//! approximate product-quantization matching). Per the paper, each
//! competitor's thresholds are tuned for its best F1; ground truth comes
//! from the generator's entity overlap instead of human labelling.
//!
//! Regenerate: `cargo run --release -p pexeso-bench --bin exp_table4`

use std::collections::HashSet;

use pexeso::prelude::*;
use pexeso_baselines::pq::{PqConfig, PqIndex};
use pexeso_baselines::stringjoin::{
    string_join_search, EditMatcher, EquiJoinIndex, FuzzyMatcher, JaccardMatcher, StringColumns,
    StringMatcher, TfIdfJoin,
};
use pexeso_baselines::VectorJoinSearch;
use pexeso_bench::eval::PrAccumulator;
use pexeso_bench::fmt::{ratio, TablePrinter};
use pexeso_bench::workloads::Workload;
use pexeso_core::column::ColumnId;

/// Joinability threshold shared by all methods (ratio of |Q|).
const T_RATIO: f64 = 0.5;

struct Queries {
    gens: Vec<GenTable>,
    embedded: Vec<pexeso::pipeline::EmbeddedQuery>,
    truths: Vec<HashSet<usize>>,
}

fn make_queries(w: &Workload, n: usize, rows: usize) -> Queries {
    let mut gens = Vec::new();
    let mut embedded = Vec::new();
    let mut truths = Vec::new();
    // Skip queries whose ground truth is empty: they would score every
    // method as vacuously perfect and wash out the comparison.
    let mut i = 0usize;
    while gens.len() < n && i < n * 20 {
        let (gen, emb) = w.query_sized(i, rows);
        i += 1;
        let truth = w.lake.ground_truth(&gen, T_RATIO);
        if truth.is_empty() {
            continue;
        }
        truths.push(truth);
        gens.push(gen);
        embedded.push(emb);
    }
    Queries {
        gens,
        embedded,
        truths,
    }
}

/// Score a string matcher at one threshold setting across all queries.
fn score_matcher(
    matcher: &dyn StringMatcher,
    repo: &StringColumns,
    queries: &Queries,
) -> PrAccumulator {
    let mut acc = PrAccumulator::default();
    for (gen, truth) in queries.gens.iter().zip(&queries.truths) {
        let (hits, _) = string_join_search(matcher, gen.key_values(), repo, T_RATIO);
        let retrieved: HashSet<usize> = hits.iter().map(|h| h.column).collect();
        acc.push(&retrieved, truth);
    }
    acc
}

/// Best-F1 accumulator across candidate settings.
fn best<I: IntoIterator<Item = PrAccumulator>>(cands: I) -> PrAccumulator {
    cands
        .into_iter()
        .max_by(|a, b| a.mean_f1().total_cmp(&b.mean_f1()))
        .expect("non-empty candidates")
}

fn hits_to_tables(
    w: &Workload,
    index: &PexesoIndex<Euclidean>,
    hit_cols: &[ColumnId],
) -> HashSet<usize> {
    hit_cols
        .iter()
        .map(|&c| {
            let ext = index.columns().column(c).external_id as usize;
            w.embedded.provenance[ext].table_idx
        })
        .collect()
}

fn run_dataset(w: &Workload, n_queries: usize, query_rows: usize) -> Vec<(String, f64, f64)> {
    let queries = make_queries(w, n_queries, query_rows);
    let repo = w.string_columns();
    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    // equi-join (indexed).
    {
        let idx = EquiJoinIndex::build(&repo);
        let mut acc = PrAccumulator::default();
        for (gen, truth) in queries.gens.iter().zip(&queries.truths) {
            let (hits, _) = idx.search(gen.key_values(), T_RATIO);
            let retrieved: HashSet<usize> = hits.iter().map(|h| h.column).collect();
            acc.push(&retrieved, truth);
        }
        rows.push(("equi-join".into(), acc.mean_precision(), acc.mean_recall()));
    }

    // Jaccard-join, tuned.
    {
        let acc = best(
            [0.5, 0.7, 0.9]
                .iter()
                .map(|&t| score_matcher(&JaccardMatcher { threshold: t }, &repo, &queries)),
        );
        rows.push((
            "Jaccard-join".into(),
            acc.mean_precision(),
            acc.mean_recall(),
        ));
    }

    // edit-join, tuned.
    {
        let acc = best(
            [0.7, 0.8, 0.9]
                .iter()
                .map(|&t| score_matcher(&EditMatcher { threshold: t }, &repo, &queries)),
        );
        rows.push(("edit-join".into(), acc.mean_precision(), acc.mean_recall()));
    }

    // fuzzy-join, tuned.
    {
        let acc = best([(0.75, 0.6), (0.8, 0.8), (0.7, 0.9)].iter().map(|&(d, f)| {
            score_matcher(
                &FuzzyMatcher {
                    token_sim: d,
                    fraction: f,
                },
                &repo,
                &queries,
            )
        }));
        rows.push(("fuzzy-join".into(), acc.mean_precision(), acc.mean_recall()));
    }

    // TF-IDF-join, tuned.
    {
        let acc = best([0.5, 0.7, 0.9].iter().map(|&t| {
            let j = TfIdfJoin::build(&repo, t);
            let mut acc = PrAccumulator::default();
            for (gen, truth) in queries.gens.iter().zip(&queries.truths) {
                let (hits, _) = j.search(gen.key_values(), T_RATIO);
                let retrieved: HashSet<usize> = hits.iter().map(|h| h.column).collect();
                acc.push(&retrieved, truth);
            }
            acc
        }));
        rows.push((
            "TF-IDF-join".into(),
            acc.mean_precision(),
            acc.mean_recall(),
        ));
    }

    // PEXESO, τ tuned over the paper's 2–8 % range.
    let index = PexesoIndex::build(
        w.embedded.columns.clone(),
        Euclidean,
        IndexOptions::default(),
    )
    .expect("index build");
    let best_tau;
    {
        let mut cands = Vec::new();
        for tau_pct in [0.02f32, 0.04, 0.06, 0.08] {
            let mut acc = PrAccumulator::default();
            for (emb, truth) in queries.embedded.iter().zip(&queries.truths) {
                let result = index
                    .execute(
                        &Query::threshold(Tau::Ratio(tau_pct), JoinThreshold::Ratio(T_RATIO)),
                        emb.store(),
                    )
                    .expect("search");
                // External ids equal insertion order in the workload.
                let cols: Vec<ColumnId> = result
                    .hits
                    .iter()
                    .map(|h| ColumnId(h.external_id as u32))
                    .collect();
                acc.push(&hits_to_tables(w, &index, &cols), truth);
            }
            cands.push((tau_pct, acc));
        }
        let (tau, acc) = cands
            .into_iter()
            .max_by(|a, b| a.1.mean_f1().total_cmp(&b.1.mean_f1()))
            .expect("non-empty");
        best_tau = tau;
        rows.push(("PEXESO".into(), acc.mean_precision(), acc.mean_recall()));
    }

    // "our join with PQ-85": approximate matching in the same workflow.
    {
        let pq_cfg = PqConfig {
            num_subspaces: (w.dim / 8).max(2),
            num_centroids: 32,
            ..Default::default()
        };
        let mut pq = PqIndex::build(&w.embedded.columns, pq_cfg).expect("pq build");
        let tau_abs = best_tau * 2.0;
        pq.calibrate_recall(tau_abs, 0.85, 16);
        let mut acc = PrAccumulator::default();
        for (emb, truth) in queries.embedded.iter().zip(&queries.truths) {
            let (hits, _) = pq
                .search(
                    emb.store(),
                    Tau::Ratio(best_tau),
                    JoinThreshold::Ratio(T_RATIO),
                )
                .expect("pq search");
            let retrieved: HashSet<usize> = hits
                .iter()
                .map(|h| {
                    let ext = w.embedded.columns.column(h.column).external_id as usize;
                    w.embedded.provenance[ext].table_idx
                })
                .collect();
            acc.push(&retrieved, truth);
        }
        rows.push((
            "our join with PQ-85".into(),
            acc.mean_precision(),
            acc.mean_recall(),
        ));
    }

    rows
}

fn main() {
    let scale = pexeso_bench::scale();
    let n_queries = pexeso_bench::n_queries_effectiveness();
    println!("Table IV: precision & recall of joinable table search");
    println!("(scale={scale}, {n_queries} queries per dataset, T={T_RATIO})\n");

    let open = Workload::open(scale * 0.5, 11);
    let swdc = Workload::swdc(scale, 13);
    println!(
        "OPEN-like: {} tables, {} key cells | SWDC-like: {} tables, {} key cells\n",
        open.lake.tables.len(),
        open.total_cells(),
        swdc.lake.tables.len(),
        swdc.total_cells()
    );

    let open_rows = run_dataset(&open, n_queries, 80);
    let swdc_rows = run_dataset(&swdc, n_queries, open.query_rows().min(20));

    let mut table = TablePrinter::new(&["Method", "OPEN P", "OPEN R", "SWDC P", "SWDC R"]);
    for (o, s) in open_rows.iter().zip(swdc_rows.iter()) {
        assert_eq!(o.0, s.0);
        table.row(vec![
            o.0.clone(),
            ratio(o.1),
            ratio(o.2),
            ratio(s.1),
            ratio(s.2),
        ]);
    }
    table.print();
}
