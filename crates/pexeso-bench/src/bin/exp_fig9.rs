//! Fig. 9 — ablation study: drop Lemma 1 / Lemma 2 / Lemmas 3&4 /
//! Lemmas 5&6 and measure search time on OPEN-like, SWDC-like, and
//! LWDC-like datasets. Results must stay identical (exactness); only the
//! time changes.
//!
//! Regenerate: `cargo run --release -p pexeso-bench --bin exp_fig9`

use std::time::Instant;

use pexeso::prelude::*;
use pexeso_bench::fmt::{secs, TablePrinter};
use pexeso_bench::workloads::Workload;

fn run(w: &Workload, n_queries: usize) -> Vec<String> {
    let queries: Vec<_> = (0..n_queries).map(|i| w.query(i).1).collect();
    let index = PexesoIndex::build(w.embedded.columns.clone(), Euclidean, w.index_options())
        .expect("build");
    let tau = Tau::Ratio(0.06);
    let t = JoinThreshold::Ratio(0.6);

    let variants = [
        ("No-Lem1", LemmaFlags::without_lemma1()),
        ("No-Lem2", LemmaFlags::without_lemma2()),
        ("No-Lem3&4", LemmaFlags::without_lemma34()),
        ("No-Lem5&6", LemmaFlags::without_lemma56()),
        ("ALL (PEXESO)", LemmaFlags::all()),
    ];
    let mut cells = Vec::new();
    let mut reference: Option<Vec<u64>> = None;
    for (_, flags) in variants {
        let opts = SearchOptions {
            flags,
            quick_browse: true,
            ..Default::default()
        };
        let start = Instant::now();
        let mut last_result = Vec::new();
        for q in &queries {
            let r = index
                .execute(&Query::threshold(tau, t).with_options(opts), q.store())
                .expect("search");
            last_result = r.hits.iter().map(|h| h.external_id).collect();
        }
        cells.push(secs(start.elapsed() / n_queries as u32));
        // Exactness: every ablation returns identical results.
        match &reference {
            None => reference = Some(last_result),
            Some(r) => assert_eq!(r, &last_result, "ablation changed results!"),
        }
    }
    cells
}

fn main() {
    let scale = pexeso_bench::scale();
    let n_queries = pexeso_bench::n_queries_efficiency().min(10);
    println!("Fig. 9: ablation study (scale={scale}, {n_queries} queries, tau=6%, T=60%)\n");

    let open = run(&Workload::open(scale * 0.5, 11), n_queries);
    let swdc = run(&Workload::swdc(scale, 13), n_queries);
    let lwdc = run(&Workload::lwdc(scale, 17), n_queries.min(5));

    let mut table = TablePrinter::new(&["Variant", "OPEN (s)", "SWDC (s)", "LWDC (s)"]);
    for (i, name) in [
        "No-Lem1",
        "No-Lem2",
        "No-Lem3&4",
        "No-Lem5&6",
        "ALL (PEXESO)",
    ]
    .iter()
    .enumerate()
    {
        table.row(vec![
            name.to_string(),
            open[i].clone(),
            swdc[i].clone(),
            lwdc[i].clone(),
        ]);
    }
    table.print();
}
