//! Table VII — efficiency evaluation over the (T, τ) grid: CTREE, EPT,
//! PEXESO-H, PEXESO; OPEN/SWDC in memory, LWDC out-of-core (disk-resident
//! JSD partitions; load time included). Methods that exceed the per-cell
//! time budget are reported as `>budget`, mirroring the paper's `> 7200`.
//!
//! Regenerate: `cargo run --release -p pexeso-bench --bin exp_table7`

use std::time::{Duration, Instant};

use pexeso::prelude::*;
use pexeso_baselines::covertree::CoverTreeIndex;
use pexeso_baselines::ept::EptIndex;
use pexeso_baselines::pexeso_h::PexesoHIndex;
use pexeso_baselines::VectorJoinSearch;
use pexeso_bench::fmt::{secs, TablePrinter};
use pexeso_bench::workloads::Workload;
use pexeso_core::partition::{PartitionConfig, PartitionMethod};

const T_GRID: [f64; 4] = [0.2, 0.4, 0.6, 0.8];
const TAU_GRID: [f32; 4] = [0.02, 0.04, 0.06, 0.08];

/// Per-(method, grid-cell) wall-clock budget; beyond it we print `>budget`.
fn budget() -> Duration {
    Duration::from_secs_f64(60.0 * pexeso_bench::scale().max(0.2))
}

fn fmt_cell(d: Option<Duration>) -> String {
    match d {
        Some(d) => secs(d),
        None => format!(">{}", secs(budget())),
    }
}

fn run_in_memory(w: &Workload, n_queries: usize) {
    println!(
        "== {} (in-memory; {} columns, {} vectors; avg over {n_queries} queries) ==",
        w.name,
        w.embedded.columns.n_columns(),
        w.embedded.columns.n_vectors()
    );
    let queries: Vec<_> = (0..n_queries).map(|i| w.query(i).1).collect();

    let ctree = CoverTreeIndex::build(&w.embedded.columns, Euclidean).expect("ctree");
    let ept = EptIndex::build(&w.embedded.columns, Euclidean, 5, 42).expect("ept");
    let h = PexesoHIndex::build(&w.embedded.columns, Euclidean, w.index_options()).expect("h");
    let pex = PexesoIndex::build(w.embedded.columns.clone(), Euclidean, w.index_options())
        .expect("pexeso");

    let mut table = TablePrinter::new(&["T", "tau", "CTREE", "EPT", "PEXESO-H", "PEXESO"]);
    for t in T_GRID {
        for tau in TAU_GRID {
            let time_method = |f: &dyn Fn(&pexeso::pipeline::EmbeddedQuery, Tau, JoinThreshold)| -> Option<Duration> {
                let deadline = budget();
                let mut total = Duration::ZERO;
                for q in &queries {
                    let s = Instant::now();
                    f(q, Tau::Ratio(tau), JoinThreshold::Ratio(t));
                    total += s.elapsed();
                    if total > deadline {
                        return None;
                    }
                }
                Some(total / queries.len() as u32)
            };

            let c = time_method(&|q, tau, t| {
                let _ = ctree.search(q.store(), tau, t);
            });
            let e = time_method(&|q, tau, t| {
                let _ = ept.search(q.store(), tau, t);
            });
            let hh = time_method(&|q, tau, t| {
                let _ = h.search(q.store(), tau, t);
            });
            let p = time_method(&|q, tau, t| {
                let _ = pex.execute(&Query::threshold(tau, t), q.store());
            });
            table.row(vec![
                format!("{:.0}%", t * 100.0),
                format!("{:.0}%", tau * 100.0),
                fmt_cell(c),
                fmt_cell(e),
                fmt_cell(hh),
                fmt_cell(p),
            ]);
        }
    }
    table.print();
    println!();
}

fn run_out_of_core(w: &Workload, n_queries: usize, k: usize) {
    println!(
        "== {} (out-of-core; {} columns, {} vectors, {k} JSD partitions on disk) ==",
        w.name,
        w.embedded.columns.n_columns(),
        w.embedded.columns.n_vectors()
    );
    println!(
        "   note: PEXESO streams partitions from disk per query (load time included); \
         CTREE/EPT/PEXESO-H run fully in memory, so their numbers exclude any I/O."
    );
    let dir = std::env::temp_dir().join(format!("pexeso_t7_lwdc_{}", std::process::id()));
    let lake = PartitionedLake::build(
        &w.embedded.columns,
        Euclidean,
        &PartitionConfig {
            k,
            method: PartitionMethod::JsdKmeans,
            ..Default::default()
        },
        &w.index_options(),
        &dir,
    )
    .expect("partitioned build");
    // CTREE / EPT / PEXESO-H run in memory on the full column set (the
    // paper's LWDC runs of the non-blocking methods all exceeded its 2 h
    // budget; ours report real numbers whenever they fit the scaled
    // budget, and `>budget` otherwise).
    let ctree = CoverTreeIndex::build(&w.embedded.columns, Euclidean).expect("ctree");
    let ept = EptIndex::build(&w.embedded.columns, Euclidean, 5, 42).expect("ept");
    let h = PexesoHIndex::build(&w.embedded.columns, Euclidean, w.index_options()).expect("h");
    let queries: Vec<_> = (0..n_queries).map(|i| w.query(i).1).collect();

    let mut table = TablePrinter::new(&["T", "tau", "CTREE", "EPT", "PEXESO-H", "PEXESO"]);
    for t in T_GRID {
        for tau in TAU_GRID {
            let deadline = budget();
            let time_method = |f: &dyn Fn(&pexeso::pipeline::EmbeddedQuery, Tau, JoinThreshold)| -> Option<Duration> {
                let mut total = Duration::ZERO;
                for q in &queries {
                    let s = Instant::now();
                    f(q, Tau::Ratio(tau), JoinThreshold::Ratio(t));
                    total += s.elapsed();
                    if total > deadline {
                        return None;
                    }
                }
                Some(total / queries.len() as u32)
            };
            let c = time_method(&|q, tau, t| {
                let _ = ctree.search(q.store(), tau, t);
            });
            let e = time_method(&|q, tau, t| {
                let _ = ept.search(q.store(), tau, t);
            });
            let hh = time_method(&|q, tau, t| {
                let _ = h.search(q.store(), tau, t);
            });
            let p = time_method(&|q, tau, t| {
                let _ = lake.execute(&Query::threshold(tau, t), q.store());
            });
            table.row(vec![
                format!("{:.0}%", t * 100.0),
                format!("{:.0}%", tau * 100.0),
                fmt_cell(c),
                fmt_cell(e),
                fmt_cell(hh),
                fmt_cell(p),
            ]);
        }
    }
    table.print();
    std::fs::remove_dir_all(&dir).ok();
    println!();
}

fn main() {
    let scale = pexeso_bench::scale();
    let n_queries = pexeso_bench::n_queries_efficiency().min(10);
    println!("Table VII: efficiency evaluation (scale={scale})\n");
    run_in_memory(&Workload::open(scale * 0.5, 11), n_queries);
    run_in_memory(&Workload::swdc(scale, 13), n_queries);
    run_out_of_core(&Workload::lwdc(scale, 17), n_queries.min(5), 6);
}
