//! Table V — performance gain in ML tasks.
//!
//! Three data-enrichment tasks mirror the paper's company classification,
//! Amazon-toy classification, and video-game-sale regression: a query
//! table's label depends on latent entity attributes that live in lake
//! tables and are reachable only through (possibly semantic) joins. For
//! each competitor we discover joinable tables, left-join them, run RFE,
//! train a random forest with 4-fold CV, and report micro-F1 / MSE plus the
//! fraction of lake records matched.
//!
//! Regenerate: `cargo run --release -p pexeso-bench --bin exp_table5`

use pexeso::pipeline::{dedupe_mapping, embed_query, join_mapping};
use pexeso::prelude::*;
use pexeso_baselines::stringjoin::{
    string_join_search, EditMatcher, EquiMatcher, FuzzyMatcher, JaccardMatcher, StringColumns,
    StringMatcher, TfIdfJoin,
};
use pexeso_bench::fmt::TablePrinter;
use pexeso_bench::workloads::Workload;
use pexeso_core::column::ColumnId;
use pexeso_ml::augment::{AugmentConfig, JoinMapping};
use pexeso_ml::tasks::{evaluate_with_mapping, make_task, MlTask, TaskKind, TaskSpec};

const T_RATIO: f64 = 0.5;

/// Record-level mapping for a string matcher: restricted to the tables the
/// matcher itself identified as joinable (the paper joins only discovered
/// tables).
fn string_mapping(
    matcher: &dyn StringMatcher,
    repo: &StringColumns,
    task: &MlTask,
    lake: &SyntheticLake,
) -> JoinMapping {
    let query_values = task.query.key_values();
    let (hits, _) = string_join_search(matcher, query_values, repo, T_RATIO);
    let mut mapping = JoinMapping::new(query_values.len());
    for hit in hits {
        let table = &lake.tables[hit.column];
        for (qi, q) in query_values.iter().enumerate() {
            for (ri, s) in table.key_values().iter().enumerate() {
                if matcher.matches(q, s) {
                    mapping.matches[qi].push((hit.column, ri));
                }
            }
        }
    }
    mapping
}

fn tfidf_mapping(join: &TfIdfJoin, task: &MlTask, lake: &SyntheticLake) -> JoinMapping {
    let query_values = task.query.key_values();
    let (hits, _) = join.search(query_values, T_RATIO);
    let mut mapping = JoinMapping::new(query_values.len());
    for hit in hits {
        let table = &lake.tables[hit.column];
        for (qi, q) in query_values.iter().enumerate() {
            let qv = join.vectorize(q);
            for (ri, s) in table.key_values().iter().enumerate() {
                let sv = join.vectorize(s);
                // Re-use the join's cosine threshold through its public
                // search semantics: a pair matches when either direction's
                // single-record search would match.
                let cos = {
                    let (mut i, mut j, mut acc) = (0usize, 0usize, 0.0f64);
                    while i < qv.len() && j < sv.len() {
                        match qv[i].0.cmp(&sv[j].0) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                acc += (qv[i].1 * sv[j].1) as f64;
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                    acc
                };
                if cos >= join.threshold {
                    mapping.matches[qi].push((hit.column, ri));
                }
            }
        }
    }
    mapping
}

fn pexeso_mapping(
    w: &Workload,
    index: &PexesoIndex<Euclidean>,
    task: &MlTask,
    tau: Tau,
) -> JoinMapping {
    let query = embed_query(&w.embedder, task.query.key_values());
    let result = index
        .execute(
            &Query::threshold(tau, JoinThreshold::Ratio(T_RATIO)),
            query.store(),
        )
        .expect("search");
    // External ids equal insertion order in the embedded workload.
    let cols: Vec<ColumnId> = result
        .hits
        .iter()
        .map(|h| ColumnId(h.external_id as u32))
        .collect();
    let mut mapping = join_mapping(index, &w.embedded, &query, &cols, tau).expect("mapping");
    dedupe_mapping(&mut mapping);
    mapping
}

fn main() {
    let scale = pexeso_bench::scale();
    println!("Table V: performance in ML tasks (scale={scale})\n");

    let w = Workload::swdc(scale, 21);
    let repo = w.string_columns();
    let index = PexesoIndex::build(w.embedded.columns.clone(), Euclidean, w.index_options())
        .expect("index");
    let total_cells = w.total_cells();
    let n_rows = ((200.0 * scale) as usize).clamp(60, 1000);

    let tasks = [
        (
            "(a) company classification (micro-F1, higher better)",
            TaskKind::Classification,
            0usize,
        ),
        (
            "(b) product classification (micro-F1, higher better)",
            TaskKind::Classification,
            1usize,
        ),
        (
            "(c) sales regression (MSE, lower better)",
            TaskKind::Regression,
            2usize,
        ),
    ];

    for (title, kind, domain) in tasks {
        let domain = domain % w.lake.config.num_domains;
        let task = make_task(
            &w.lake,
            TaskSpec {
                name: title.to_string(),
                kind,
                domain,
                n_rows,
                seed: 31 + domain as u64,
            },
        );
        let aug_cfg = AugmentConfig {
            min_coverage: (n_rows / 10).max(5),
            ..Default::default()
        };

        let mut methods: Vec<(String, JoinMapping)> =
            vec![("no-join".into(), JoinMapping::new(n_rows))];
        methods.push((
            "equi-join".into(),
            string_mapping(&EquiMatcher, &repo, &task, &w.lake),
        ));
        methods.push((
            "Jaccard-join".into(),
            string_mapping(&JaccardMatcher { threshold: 0.7 }, &repo, &task, &w.lake),
        ));
        methods.push((
            "fuzzy-join".into(),
            string_mapping(
                &FuzzyMatcher {
                    token_sim: 0.75,
                    fraction: 0.8,
                },
                &repo,
                &task,
                &w.lake,
            ),
        ));
        methods.push((
            "edit-join".into(),
            string_mapping(&EditMatcher { threshold: 0.8 }, &repo, &task, &w.lake),
        ));
        let tfidf = TfIdfJoin::build(&repo, 0.7);
        methods.push(("TF-IDF-join".into(), tfidf_mapping(&tfidf, &task, &w.lake)));
        methods.push((
            "PEXESO".into(),
            pexeso_mapping(&w, &index, &task, Tau::Ratio(0.06)),
        ));

        println!("{title}");
        let metric_name = match kind {
            TaskKind::Classification => "Micro-F1",
            TaskKind::Regression => "MSE",
        };
        let mut table = TablePrinter::new(&["Method", "# Match", metric_name]);
        for (name, mapping) in methods {
            let (outcome, _nfeat) = evaluate_with_mapping(&task, &w.lake, &mapping, &aug_cfg);
            let match_pct = 100.0 * mapping.total_pairs() as f64 / total_cells as f64;
            let match_str = if name == "no-join" {
                "-".to_string()
            } else {
                format!("{match_pct:.2}%")
            };
            table.row(vec![
                name,
                match_str,
                format!("{:.3} ± {:.3}", outcome.metric_mean, outcome.metric_std),
            ]);
        }
        table.print();
        println!();
    }
}
