//! # pexeso-bench — the experiment harness
//!
//! One binary per table/figure of the paper (`src/bin/exp_*.rs`) plus
//! criterion micro/macro benchmarks (`benches/`). This library holds the
//! shared pieces: dataset profiles shaped like the paper's OPEN / SWDC /
//! LWDC corpora, embedding + indexing plumbing, precision/recall scoring,
//! and aligned table printing.
//!
//! Scale control: every harness reads `PEXESO_SCALE` (default `1.0`) and
//! multiplies workload sizes, so `PEXESO_SCALE=0.2 cargo run --release
//! --bin exp_table7` gives a quick pass and larger values approach the
//! paper's sizes as far as one machine allows.

pub mod eval;
pub mod fmt;
pub mod workloads;

/// Read the global scale multiplier from the environment.
pub fn scale() -> f64 {
    std::env::var("PEXESO_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0)
}

/// Number of query tables used by the effectiveness experiments.
pub fn n_queries_effectiveness() -> usize {
    ((10.0 * scale()).round() as usize).max(3)
}

/// Number of queries averaged in the efficiency experiments (the paper
/// averages 100–1000; scaled down by default).
pub fn n_queries_efficiency() -> usize {
    ((20.0 * scale()).round() as usize).max(5)
}
