//! Top-k search benchmarks: the best-first, adaptively-tightened
//! [`PexesoIndex::search_topk`] against the "threshold search with an
//! unreachable T, then sort" baseline ([`search_topk_exhaustive`]) on a
//! 10k×64-d repository — once skewed (a tenth of the columns share the
//! query's region, the data-lake shape top-k is for) and once uniform
//! (the worst case for bound-based pruning).
//!
//! Record a snapshot with:
//! `BENCH_JSON=BENCH_topk.json cargo bench -p pexeso-bench --bench bench_topk`

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pexeso::prelude::*;
use pexeso_core::config::PivotSelection;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 64;
const N_COLS: usize = 100;
const PER_COL: usize = 100; // 10k vectors total
const N_QUERY: usize = 64;
const K: usize = 10;
const TAU: Tau = Tau::Ratio(0.06); // the paper's default regime

fn unit(rng: &mut StdRng) -> Vec<f32> {
    let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

/// A unit vector inside a small cap around `center`.
fn near(rng: &mut StdRng, center: &[f32], spread: f32) -> Vec<f32> {
    let mut v: Vec<f32> = center
        .iter()
        .map(|&c| c + rng.gen_range(-spread..spread))
        .collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

/// `skew = true`: 10 of the 100 columns (and the query) are drawn from
/// one tight cluster and join fully, while the other 90 are *near
/// misses* from a wider cap around the same centre — they share the
/// query's candidate cells (so every cheap bound saturates) but almost
/// never match, the shape where adaptive tightening pays: the probe
/// ranks the tight columns first and the near-misses abort against the
/// k-th-best threshold. `skew = false`: everything uniform, no column
/// matches anything — the degenerate worst case where best-first
/// degenerates to the exhaustive scan plus its (bounded) bookkeeping.
fn workload(skew: bool) -> (ColumnSet, VectorStore) {
    let mut rng = StdRng::seed_from_u64(42);
    let center = unit(&mut rng);
    let mut columns = ColumnSet::new(DIM);
    for c in 0..N_COLS {
        let vecs: Vec<Vec<f32>> = (0..PER_COL)
            .map(|_| {
                if !skew {
                    unit(&mut rng)
                } else if c % 10 == 0 {
                    near(&mut rng, &center, 0.01)
                } else {
                    near(&mut rng, &center, 0.04)
                }
            })
            .collect();
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column("t", &format!("c{c}"), c as u64, refs)
            .unwrap();
    }
    let mut query = VectorStore::new(DIM);
    for _ in 0..N_QUERY {
        let v = if skew {
            near(&mut rng, &center, 0.01)
        } else {
            unit(&mut rng)
        };
        query.push(&v).unwrap();
    }
    (columns, query)
}

fn build(columns: ColumnSet) -> PexesoIndex<Euclidean> {
    PexesoIndex::build(
        columns,
        Euclidean,
        IndexOptions {
            num_pivots: 5,
            levels: Some(4),
            pivot_selection: PivotSelection::Pca,
            seed: 42,
            ..Default::default()
        },
    )
    .unwrap()
}

fn bench_pair(c: &mut Criterion, label: &str, index: &PexesoIndex<Euclidean>, query: &VectorStore) {
    let best_q = Query::topk(TAU, K);
    let exhaustive_q = Query::topk(TAU, K).with_options(SearchOptions {
        topk_strategy: TopkStrategy::Exhaustive,
        ..Default::default()
    });
    // Sanity: both strategies must return identical hits before we time them.
    let best = index.execute(&best_q, query).unwrap();
    let exhaustive = index.execute(&exhaustive_q, query).unwrap();
    assert_eq!(best.hits, exhaustive.hits, "strategies diverged on {label}");

    c.bench_function(&format!("topk{K}_best_first_{label}_10k_x64d"), |b| {
        b.iter(|| index.execute(&best_q, black_box(query)).unwrap())
    });
    c.bench_function(&format!("topk{K}_threshold_sort_{label}_10k_x64d"), |b| {
        b.iter(|| index.execute(&exhaustive_q, black_box(query)).unwrap())
    });
    c.bench_function(&format!("topk{K}_best_first_par8_{label}_10k_x64d"), |b| {
        let par_q = Query::topk(TAU, K).with_exec(ExecPolicy::Parallel { threads: 8 });
        b.iter(|| index.execute(&par_q, black_box(query)).unwrap())
    });
}

fn bench_topk(c: &mut Criterion) {
    let (columns, query) = workload(true);
    let index = build(columns);
    bench_pair(c, "skew", &index, &query);

    let (columns, query) = workload(false);
    let index = build(columns);
    bench_pair(c, "uniform", &index, &query);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_topk
}
criterion_main!(benches);
