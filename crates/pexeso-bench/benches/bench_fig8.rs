//! Criterion companion to Fig. 8: PEXESO vs calibrated PQ range search.

use criterion::{criterion_group, criterion_main, Criterion};
use pexeso::baselines::pq::{PqConfig, PqIndex};
use pexeso::baselines::VectorJoinSearch;
use pexeso::prelude::*;
use pexeso_bench::workloads::Workload;

fn bench_fig8(c: &mut Criterion) {
    let w = Workload::swdc(0.1, 13);
    let columns = &w.embedded.columns;
    let (_, query) = w.query(0);
    let tau = Tau::Ratio(0.06);
    let t = JoinThreshold::Ratio(0.6);

    let pex = PexesoIndex::build(columns.clone(), Euclidean, w.index_options()).unwrap();
    let cfg = PqConfig {
        num_subspaces: (w.dim / 8).max(2),
        num_centroids: 32,
        ..Default::default()
    };
    let mut pq75 = PqIndex::build(columns, cfg.clone()).unwrap();
    pq75.calibrate_recall(0.12, 0.75, 8);
    let mut pq85 = PqIndex::build(columns, cfg).unwrap();
    pq85.calibrate_recall(0.12, 0.85, 8);

    let mut group = c.benchmark_group("fig8_search");
    group.bench_function("PQ-75", |b| {
        b.iter(|| pq75.search(query.store(), tau, t).unwrap())
    });
    group.bench_function("PQ-85", |b| {
        b.iter(|| pq85.search(query.store(), tau, t).unwrap())
    });
    group.bench_function("PEXESO", |b| {
        b.iter(|| {
            pex.execute(&Query::threshold(tau, t), query.store())
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_fig8
}
criterion_main!(benches);
