//! Criterion microbenchmarks of the kernels every experiment rests on:
//! embedding, pivot selection/mapping, grid construction, end-to-end search.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pexeso::prelude::*;
use pexeso_bench::workloads::Workload;
use pexeso_core::grid::{GridParams, HierarchicalGrid};
use pexeso_core::mapping::MappedVectors;
use pexeso_core::pivot::select_pivots;

fn bench_kernels(c: &mut Criterion) {
    let w = Workload::swdc(0.1, 13);
    let columns = &w.embedded.columns;
    let metric = Euclidean;

    c.bench_function("embed_one_value", |b| {
        use pexeso_embed::Embedder;
        b.iter(|| w.embedder.embed(black_box("Pacific Islander Corporation")))
    });

    let pivots = select_pivots(columns.store(), &metric, 3, PivotSelection::Pca, 42).unwrap();
    c.bench_function("pivot_selection_pca", |b| {
        b.iter(|| select_pivots(columns.store(), &metric, 3, PivotSelection::Pca, 42).unwrap())
    });

    c.bench_function("pivot_mapping_full_repo", |b| {
        b.iter(|| MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap())
    });

    let mapped = MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap();
    let params = GridParams::new(3, 4, 2.0 + 1e-4).unwrap();
    c.bench_function("grid_construction", |b| {
        b.iter(|| HierarchicalGrid::build_keys_only(params.clone(), &mapped).unwrap())
    });

    let index = PexesoIndex::build(columns.clone(), metric, w.index_options()).unwrap();
    let (_, query) = w.query(0);
    c.bench_function("search_end_to_end", |b| {
        b.iter(|| {
            index
                .search(query.store(), Tau::Ratio(0.06), JoinThreshold::Ratio(0.6))
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernels
}
criterion_main!(benches);
