//! Criterion microbenchmarks of the kernels every experiment rests on:
//! embedding, pivot selection/mapping, grid construction, end-to-end
//! search — plus the batched early-exit distance kernels and the parallel
//! verification/mapping hot path (scalar-vs-kernel and sequential-vs-
//! parallel, on a 10k×64-d workload).
//!
//! Record a snapshot with:
//! `BENCH_JSON=BENCH_kernels.json cargo bench -p pexeso-bench --bench bench_kernels`

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pexeso::prelude::*;
use pexeso_bench::workloads::Workload;
use pexeso_core::block::{block, quick_browse};
use pexeso_core::grid::{GridParams, HierarchicalGrid};
use pexeso_core::invindex::InvertedIndex;
use pexeso_core::mapping::MappedVectors;
use pexeso_core::pivot::select_pivots;
use pexeso_core::util::FastMap;
use pexeso_core::verify::{verify_with, VerifyContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The seed's distance kernel: plain sequential accumulate + sqrt, no
/// unrolling, no early exit, default `dist_le`/`dist_batch`. Benchmarking
/// the real verification loop under this metric vs [`Euclidean`] isolates
/// the kernel contribution.
#[derive(Debug, Clone, Copy, Default)]
struct ScalarEuclidean;

impl Metric for ScalarEuclidean {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for (x, y) in a.iter().zip(b.iter()) {
            let d = x - y;
            acc += d * d;
        }
        acc.sqrt()
    }

    fn max_dist_unit(&self, _dim: usize) -> f32 {
        2.0
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }
}

const DIM: usize = 64;
const N_VECTORS: usize = 10_000;
const N_COLS: usize = 100;
const N_QUERY: usize = 64;

fn unit(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

/// 10k×64-d unit-vector repository (100 columns) and a 64-vector query.
fn kernel_workload() -> (ColumnSet, VectorStore) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut columns = ColumnSet::new(DIM);
    let per_col = N_VECTORS / N_COLS;
    for c in 0..N_COLS {
        let vecs: Vec<Vec<f32>> = (0..per_col).map(|_| unit(&mut rng, DIM)).collect();
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column("t", &format!("c{c}"), c as u64, refs)
            .unwrap();
    }
    let mut query = VectorStore::new(DIM);
    for _ in 0..N_QUERY {
        query.push(&unit(&mut rng, DIM)).unwrap();
    }
    (columns, query)
}

/// Distance-kernel comparison: one query vector against the whole 10k
/// arena, as the verification inner loop sees it.
fn bench_distance_kernels(c: &mut Criterion) {
    let (columns, query) = kernel_workload();
    let flat = columns.store().raw_data().to_vec();
    let q = query.get_raw(0).to_vec();
    let tau = 0.12f32; // ~6% of the unit-vector max distance, paper regime

    c.bench_function("kernel_scalar_dist_10k_x64d", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for row in flat.chunks_exact(DIM) {
                if ScalarEuclidean.dist(black_box(&q), row) <= tau {
                    hits += 1;
                }
            }
            hits
        })
    });

    c.bench_function("kernel_dist_le_10k_x64d", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for row in flat.chunks_exact(DIM) {
                if Euclidean.dist_le(black_box(&q), row, tau) {
                    hits += 1;
                }
            }
            hits
        })
    });

    let mut out = vec![0.0f32; N_VECTORS];
    c.bench_function("kernel_dist_batch_10k_x64d", |b| {
        b.iter(|| {
            Euclidean.dist_batch(black_box(&q), &flat, &mut out);
            out.iter().filter(|&&d| d <= tau).count() as u32
        })
    });
}

/// The real verification loop, scalar vs kernel metric and sequential vs
/// 8-thread parallel, on the 10k×64-d workload. Lemma 1/2 are disabled so
/// every candidate pays the distance test — the configuration where the
/// kernel matters most (it is also the paper's Fig. 9 ablation setting).
fn bench_verify_hot_path(c: &mut Criterion) {
    let (columns, query) = kernel_workload();
    let tau = 0.12f32;
    let t_abs = query.len() + 1; // exact counts: no early termination noise
    let flags = LemmaFlags {
        lemma1_vector_filter: false,
        lemma2_vector_match: false,
        lemma34_cell_filter: true,
        lemma56_cell_match: true,
    };

    macro_rules! bench_with_metric {
        ($metric:expr, $name_seq:literal, $name_par:literal) => {{
            let metric = $metric;
            let pivots =
                select_pivots(columns.store(), &metric, 3, PivotSelection::Pca, 42).unwrap();
            let rv_mapped = MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap();
            let q_mapped = MappedVectors::build(&query, &pivots, &metric, None).unwrap();
            let params = GridParams::new(3, 4, 2.0 + 1e-4).unwrap();
            let hgrv = HierarchicalGrid::build_keys_only(params.clone(), &rv_mapped).unwrap();
            let hgq = HierarchicalGrid::build(params.clone(), &q_mapped).unwrap();
            let vec_col = columns.vector_to_column();
            let inv = InvertedIndex::build(&params, &rv_mapped, &vec_col).unwrap();
            let mut stats = SearchStats::new();
            let mut seeded = FastMap::default();
            let handled = quick_browse(&hgq, &inv, &mut seeded, &mut stats);
            let blocked = block(
                &hgq,
                &hgrv,
                &q_mapped,
                tau,
                flags,
                Some(&handled),
                seeded,
                &mut stats,
            );
            let ctx = VerifyContext {
                columns: &columns,
                vec_col: &vec_col,
                rv_mapped: &rv_mapped,
                inv: &inv,
                metric: &metric,
                query: &query,
                query_mapped: &q_mapped,
                tau,
                t_abs,
                flags,
                deleted: None,
            };
            c.bench_function($name_seq, |b| {
                b.iter(|| {
                    let mut s = SearchStats::new();
                    verify_with(&ctx, &blocked, &mut s, ExecPolicy::Sequential)
                })
            });
            c.bench_function($name_par, |b| {
                b.iter(|| {
                    let mut s = SearchStats::new();
                    verify_with(&ctx, &blocked, &mut s, ExecPolicy::Parallel { threads: 8 })
                })
            });
        }};
    }

    bench_with_metric!(
        ScalarEuclidean,
        "verify_scalar_seq_10k_x64d",
        "verify_scalar_par8_10k_x64d"
    );
    bench_with_metric!(
        Euclidean,
        "verify_kernel_seq_10k_x64d",
        "verify_kernel_par8_10k_x64d"
    );
}

/// Pivot mapping of the full 10k repository: scalar metric vs batched
/// kernel, sequential vs 8 threads.
fn bench_mapping_hot_path(c: &mut Criterion) {
    let (columns, _) = kernel_workload();
    let pivots = select_pivots(columns.store(), &Euclidean, 5, PivotSelection::Pca, 42).unwrap();

    c.bench_function("mapping_scalar_seq_10k_x64d", |b| {
        b.iter(|| MappedVectors::build(columns.store(), &pivots, &ScalarEuclidean, None).unwrap())
    });
    c.bench_function("mapping_kernel_seq_10k_x64d", |b| {
        b.iter(|| MappedVectors::build(columns.store(), &pivots, &Euclidean, None).unwrap())
    });
    c.bench_function("mapping_kernel_par8_10k_x64d", |b| {
        b.iter(|| {
            MappedVectors::build_with(
                columns.store(),
                &pivots,
                &Euclidean,
                None,
                ExecPolicy::Parallel { threads: 8 },
            )
            .unwrap()
        })
    });
}

fn bench_kernels(c: &mut Criterion) {
    let w = Workload::swdc(0.1, 13);
    let columns = &w.embedded.columns;
    let metric = Euclidean;

    c.bench_function("embed_one_value", |b| {
        use pexeso_embed::Embedder;
        b.iter(|| w.embedder.embed(black_box("Pacific Islander Corporation")))
    });

    let pivots = select_pivots(columns.store(), &metric, 3, PivotSelection::Pca, 42).unwrap();
    c.bench_function("pivot_selection_pca", |b| {
        b.iter(|| select_pivots(columns.store(), &metric, 3, PivotSelection::Pca, 42).unwrap())
    });

    c.bench_function("pivot_mapping_full_repo", |b| {
        b.iter(|| MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap())
    });

    let mapped = MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap();
    let params = GridParams::new(3, 4, 2.0 + 1e-4).unwrap();
    c.bench_function("grid_construction", |b| {
        b.iter(|| HierarchicalGrid::build_keys_only(params.clone(), &mapped).unwrap())
    });

    let index = PexesoIndex::build(columns.clone(), metric, w.index_options()).unwrap();
    let (_, query) = w.query(0);
    c.bench_function("search_end_to_end", |b| {
        b.iter(|| {
            index
                .execute(
                    &Query::threshold(Tau::Ratio(0.06), JoinThreshold::Ratio(0.6)),
                    query.store(),
                )
                .unwrap()
        })
    });

    let queries: Vec<VectorStore> = (0..8).map(|i| w.query(i).1.store().clone()).collect();
    let stores: Vec<&VectorStore> = queries.iter().collect();
    let batch_query = Query::threshold(Tau::Ratio(0.06), JoinThreshold::Ratio(0.6))
        .with_policy(ExecPolicy::auto());
    c.bench_function("search_many_8_queries", |b| {
        b.iter(|| index.execute_many(&batch_query, &stores).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernels, bench_distance_kernels, bench_verify_hot_path, bench_mapping_hot_path
}
criterion_main!(benches);
