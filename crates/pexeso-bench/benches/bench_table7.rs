//! Criterion companion to Table VII: CTREE vs EPT vs PEXESO-H vs PEXESO at
//! the default thresholds (τ=6 %, T=60 %) on the SWDC-like profile.

use criterion::{criterion_group, criterion_main, Criterion};
use pexeso::baselines::covertree::CoverTreeIndex;
use pexeso::baselines::ept::EptIndex;
use pexeso::baselines::pexeso_h::PexesoHIndex;
use pexeso::baselines::VectorJoinSearch;
use pexeso::prelude::*;
use pexeso_bench::workloads::Workload;

fn bench_table7(c: &mut Criterion) {
    let w = Workload::swdc(0.1, 13);
    let columns = &w.embedded.columns;
    let (_, query) = w.query(0);
    let tau = Tau::Ratio(0.06);
    let t = JoinThreshold::Ratio(0.6);

    let ctree = CoverTreeIndex::build(columns, Euclidean).unwrap();
    let ept = EptIndex::build(columns, Euclidean, 5, 42).unwrap();
    let h = PexesoHIndex::build(columns, Euclidean, w.index_options()).unwrap();
    let pex = PexesoIndex::build(columns.clone(), Euclidean, w.index_options()).unwrap();

    let mut group = c.benchmark_group("table7_search");
    group.bench_function("CTREE", |b| {
        b.iter(|| ctree.search(query.store(), tau, t).unwrap())
    });
    group.bench_function("EPT", |b| {
        b.iter(|| ept.search(query.store(), tau, t).unwrap())
    });
    group.bench_function("PEXESO-H", |b| {
        b.iter(|| h.search(query.store(), tau, t).unwrap())
    });
    group.bench_function("PEXESO", |b| {
        b.iter(|| {
            pex.execute(&Query::threshold(tau, t), query.store())
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_table7
}
criterion_main!(benches);
