//! Criterion companion to Fig. 9: lemma-group ablations on one profile.

use criterion::{criterion_group, criterion_main, Criterion};
use pexeso::prelude::*;
use pexeso_bench::workloads::Workload;

fn bench_fig9(c: &mut Criterion) {
    let w = Workload::swdc(0.1, 13);
    let index =
        PexesoIndex::build(w.embedded.columns.clone(), Euclidean, w.index_options()).unwrap();
    let (_, query) = w.query(0);
    let tau = Tau::Ratio(0.06);
    let t = JoinThreshold::Ratio(0.6);

    let mut group = c.benchmark_group("fig9_ablation");
    for (name, flags) in [
        ("no_lem1", LemmaFlags::without_lemma1()),
        ("no_lem2", LemmaFlags::without_lemma2()),
        ("no_lem34", LemmaFlags::without_lemma34()),
        ("no_lem56", LemmaFlags::without_lemma56()),
        ("all", LemmaFlags::all()),
    ] {
        let opts = SearchOptions {
            flags,
            quick_browse: true,
            ..Default::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                index
                    .execute(&Query::threshold(tau, t).with_options(opts), query.store())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_fig9
}
criterion_main!(benches);
