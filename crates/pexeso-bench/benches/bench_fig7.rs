//! Criterion companion to Fig. 7: pivot-selection strategies (a) and
//! partitioning strategies (b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pexeso::prelude::*;
use pexeso_bench::workloads::Workload;
use pexeso_core::partition::{partition_columns, PartitionConfig};
use pexeso_core::pivot::select_pivots;

fn bench_fig7(c: &mut Criterion) {
    let w = Workload::swdc(0.1, 13);
    let columns = &w.embedded.columns;

    let mut group = c.benchmark_group("fig7a_pivot_selection");
    for (name, strat) in [
        ("pca", PivotSelection::Pca),
        ("random", PivotSelection::Random),
        ("farthest_first", PivotSelection::FarthestFirst),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| select_pivots(columns.store(), &Euclidean, 5, strat, 42).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig7b_partitioning");
    for (name, method) in [
        ("jsd", PartitionMethod::JsdKmeans),
        ("avg_kmeans", PartitionMethod::AvgKmeans),
        ("random", PartitionMethod::Random),
    ] {
        group.bench_with_input(BenchmarkId::new("cluster", name), &method, |b, &method| {
            b.iter(|| {
                partition_columns(
                    columns,
                    &PartitionConfig {
                        k: 4,
                        method,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_fig7
}
criterion_main!(benches);
