//! Criterion companion to Fig. 10: search time as the repository fraction
//! grows (scalability in the number of columns).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pexeso::prelude::*;
use pexeso_bench::workloads::Workload;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn sample_columns(columns: &ColumnSet, pct: f64, seed: u64) -> ColumnSet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = columns.n_columns();
    let keep = ((n as f64 * pct).round() as usize).clamp(1, n);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    idx.truncate(keep);
    idx.sort_unstable();
    let mut out = ColumnSet::new(columns.dim());
    for &ci in &idx {
        let meta = &columns.columns()[ci];
        out.add_column(
            &meta.table_name,
            &meta.column_name,
            meta.external_id,
            meta.vector_range()
                .map(|v| columns.store().get_raw(v as usize)),
        )
        .unwrap();
    }
    out
}

fn bench_fig10(c: &mut Criterion) {
    let w = Workload::swdc(0.15, 17);
    let (_, query) = w.query(0);
    let tau = Tau::Ratio(0.06);
    let t = JoinThreshold::Ratio(0.6);

    let mut group = c.benchmark_group("fig10_scalability");
    for &pct in &[0.25f64, 0.5, 1.0] {
        let sub = sample_columns(&w.embedded.columns, pct, 3);
        let index = PexesoIndex::build(sub, Euclidean, w.index_options()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("pexeso_search", format!("{:.0}pct", pct * 100.0)),
            &index,
            |b, index| {
                b.iter(|| {
                    index
                        .execute(&Query::threshold(tau, t), query.store())
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_fig10
}
criterion_main!(benches);
