//! Criterion companion to Table VI: index construction and search across a
//! reduced (|P|, m) grid on the SWDC-like profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pexeso::prelude::*;
use pexeso_bench::workloads::Workload;

fn bench_table6(c: &mut Criterion) {
    let w = Workload::swdc(0.1, 13);
    let (_, query) = w.query(0);
    let tau = Tau::Ratio(0.06);
    let t = JoinThreshold::Ratio(0.6);

    let mut group = c.benchmark_group("table6");
    for &pivots in &[1usize, 3, 5] {
        for &m in &[2usize, 4, 6] {
            let opts = IndexOptions {
                num_pivots: pivots,
                levels: Some(m),
                pivot_selection: PivotSelection::Pca,
                seed: 42,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new("index_build", format!("P{pivots}_m{m}")),
                &opts,
                |b, opts| {
                    b.iter(|| {
                        PexesoIndex::build(w.embedded.columns.clone(), Euclidean, opts.clone())
                            .unwrap()
                    })
                },
            );
            let index =
                PexesoIndex::build(w.embedded.columns.clone(), Euclidean, opts.clone()).unwrap();
            group.bench_with_input(
                BenchmarkId::new("search", format!("P{pivots}_m{m}")),
                &index,
                |b, index| {
                    b.iter(|| {
                        index
                            .execute(&Query::threshold(tau, t), query.store())
                            .unwrap()
                    })
                },
            );
            // Table VI's phase split (blocking vs verification), taken
            // from the per-query stats a traced run carries; the trace
            // spans are the same numbers (pinned by core tests), so this
            // prints the paper's breakdown per (|P|, m) cell.
            let resp = index
                .execute(
                    &Query::threshold(tau, t).with_trace(TraceLevel::Phases),
                    query.store(),
                )
                .unwrap();
            println!(
                "table6 phases P{pivots}_m{m}: map={:?} block={:?} verify={:?} (dc={})",
                resp.stats.mapping_time,
                resp.stats.block_time,
                resp.stats.verify_time,
                resp.stats.distance_computations,
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_table6
}
criterion_main!(benches);
