//! Routed vs. single-node serving latency over loopback TCP.
//!
//! A 10k×64-d lake (100 columns × 100 vectors) is cut into 1 / 2 / 4
//! shard deployments, each served by its own daemon, and queried through
//! the scatter-gather `Router` — against a single-daemon baseline over
//! the un-split lake. The 1-shard routed row isolates the router's own
//! overhead (range filter + merge + one client hop); the 2- and 4-shard
//! rows show how scatter-gather amortizes verification across daemons
//! (on a multi-core host the shard searches run in genuinely parallel
//! processes; on a starved host they serialize and the router's fan-out
//! costs more than it saves — both are truthful numbers).
//!
//! Besides the criterion wall-time rows, the recorded snapshot carries
//! `router_hist` rows with p50/p99 taken from the router's **own**
//! latency histogram (`Router::query_latency`) — the same numbers its
//! METRICS plane exports, so the committed snapshot is cross-checkable
//! against a live scrape.
//!
//! Record a snapshot with:
//! `BENCH_JSON=/abs/path/BENCH_router.json cargo bench -p pexeso-bench --bench bench_router`

use std::io::Write as _;
use std::path::{Path, PathBuf};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pexeso::prelude::*;
use pexeso_core::config::PivotSelection;
use pexeso_core::outofcore::LakeManifest;
use pexeso_core::query::{Query, Queryable};
use pexeso_router::{shard_dir_name, split_lake, Router, RouterConfig, ShardMap, ShardSpec};
use pexeso_serve::{ServeClient, ServeConfig, Server, ServerHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 64;
const N_COLS: usize = 100;
const PER_COL: usize = 100; // 10k vectors
const N_QUERY: usize = 32;
const TAU: Tau = Tau::Ratio(0.06);
const K: usize = 8;

fn unit(rng: &mut StdRng) -> Vec<f32> {
    let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

/// A fifth of the columns contain the query vectors (real verify work +
/// non-empty replies), the rest are uniform noise.
fn deploy(dir: &Path) -> VectorStore {
    let mut rng = StdRng::seed_from_u64(42);
    let query_vecs: Vec<Vec<f32>> = (0..N_QUERY).map(|_| unit(&mut rng)).collect();
    let mut columns = ColumnSet::new(DIM);
    for c in 0..N_COLS {
        let mut vecs: Vec<Vec<f32>> = (0..PER_COL).map(|_| unit(&mut rng)).collect();
        if c % 5 == 0 {
            for (slot, q) in vecs.iter_mut().zip(&query_vecs) {
                slot.clone_from(q);
            }
        }
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column("t", &format!("c{c}"), c as u64, refs)
            .unwrap();
    }
    std::fs::create_dir_all(dir).unwrap();
    PartitionedLake::build(
        &columns,
        Euclidean,
        &PartitionConfig {
            k: 4,
            method: PartitionMethod::JsdKmeans,
            ..Default::default()
        },
        &IndexOptions {
            num_pivots: 5,
            levels: Some(4),
            pivot_selection: PivotSelection::Pca,
            seed: 42,
            ..Default::default()
        },
        dir,
    )
    .unwrap();
    LakeManifest::new("bench", DIM).write(dir).unwrap();

    let mut query = VectorStore::new(DIM);
    for q in &query_vecs {
        query.push(q).unwrap();
    }
    query
}

/// Split `src` into `shards` deployments under `out`, start one daemon
/// per shard, and wire a `Router` over the live addresses.
fn start_cluster(src: &Path, shards: usize, out: &Path) -> (Vec<ServerHandle>, Router) {
    let map = split_lake(src, shards, out).unwrap();
    let mut daemons = Vec::new();
    let mut specs = Vec::new();
    for (i, spec) in map.shards().iter().enumerate() {
        let handle = Server::start(
            &out.join(shard_dir_name(i)),
            "127.0.0.1:0",
            ServeConfig {
                workers: 2,
                cache_capacity: 0, // cold path: measure real search work
                ..Default::default()
            },
        )
        .unwrap();
        specs.push(ShardSpec {
            lo: spec.lo,
            hi: spec.hi,
            replicas: vec![handle.addr().to_string()],
        });
        daemons.push(handle);
    }
    let router = Router::new(ShardMap::new(specs).unwrap(), RouterConfig::default()).unwrap();
    (daemons, router)
}

fn routed_request(router: &Router, q: &Query, query: &VectorStore) -> usize {
    router.execute(q, query).unwrap().hits.len()
}

/// Append the router's own histogram quantiles to the `BENCH_JSON`
/// snapshot (same file the criterion shim appends to), so the committed
/// numbers are cross-checkable against a live METRICS scrape.
fn record_router_hist(label: &str, router: &Router) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let h = router.query_latency();
    let line = format!(
        "{{\"name\":\"{label}\",\"source\":\"router_histogram\",\"p50_us\":{:.1},\"p99_us\":{:.1},\"count\":{}}}",
        h.quantile(0.50),
        h.quantile(0.99),
        h.count
    );
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
    {
        let _ = writeln!(f, "{line}");
    }
}

fn bench_router(c: &mut Criterion) {
    let base = std::env::temp_dir().join(format!("pexeso_bench_router_{}", std::process::id()));
    let src = base.join("src");
    let query = deploy(&src);
    let q_topk = Query::topk(TAU, K);
    let q_threshold = Query::threshold(TAU, JoinThreshold::Ratio(0.5));

    // Baseline: one daemon over the un-split lake, one client connection.
    let direct = Server::start(
        &src,
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            cache_capacity: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let client = ServeClient::connect(direct.addr()).unwrap();
    let baseline = client.execute_detailed(&q_topk, &query).unwrap().0;
    assert!(!baseline.hits.is_empty(), "workload must hit");
    c.bench_function("direct_daemon_topk8_10k_x64d", |b| {
        b.iter(|| {
            black_box(
                client
                    .execute_detailed(&q_topk, &query)
                    .unwrap()
                    .0
                    .hits
                    .len(),
            )
        })
    });
    c.bench_function("direct_daemon_threshold_10k_x64d", |b| {
        b.iter(|| {
            black_box(
                client
                    .execute_detailed(&q_threshold, &query)
                    .unwrap()
                    .0
                    .hits
                    .len(),
            )
        })
    });

    for shards in [1usize, 2, 4] {
        let out: PathBuf = base.join(format!("cluster{shards}"));
        let (daemons, router) = start_cluster(&src, shards, &out);
        let routed = router.execute(&q_topk, &query).unwrap();
        assert_eq!(
            routed.hits, baseline.hits,
            "routed must stay byte-identical to single-node"
        );
        c.bench_function(&format!("routed_topk8_{shards}shards_10k_x64d"), |b| {
            b.iter(|| black_box(routed_request(&router, &q_topk, &query)))
        });
        c.bench_function(&format!("routed_threshold_{shards}shards_10k_x64d"), |b| {
            b.iter(|| black_box(routed_request(&router, &q_threshold, &query)))
        });
        record_router_hist(&format!("router_hist_{shards}shards_10k_x64d"), &router);
        drop(router);
        for d in daemons {
            d.shutdown();
        }
    }

    client.shutdown().unwrap();
    direct.join();
    std::fs::remove_dir_all(&base).ok();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
