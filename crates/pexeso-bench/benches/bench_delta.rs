//! Incremental-maintenance benchmarks: what does adding one table cost?
//!
//! The point of `pexeso-delta` is that ingesting a table is a checksummed
//! log append (plus, on the query side, a small in-memory index over the
//! delta), while the rebuild-only path re-partitions and re-indexes the
//! whole lake. On a 5k×32-d deployment this measures:
//!
//! * `delta_ingest_one_table` — `ingest_columns` of one 100-vector table
//!   into the delta log (the write path an operator pays per table);
//! * `full_rebuild_for_one_table` — the old way: rebuild all partitions
//!   over base+1 tables and rewrite the manifest (embedding excluded, so
//!   this *understates* the rebuild cost the CLI actually pays);
//! * `delta_open_replay` — `DeltaLake::open` with a one-table delta log:
//!   replay + overlay index build, the price a cold query process pays;
//! * `query_delta_overlay` vs `query_compacted` — the same threshold
//!   query against the overlaid lake (base + 1 delta column + 1
//!   tombstone) and against the compacted deployment, i.e. the steady-
//!   state read overhead the overlay carries until the next compaction.
//!
//! Record a snapshot with:
//! `BENCH_JSON=BENCH_delta.json cargo bench -p pexeso-bench --bench bench_delta`
//! (the shim writes relative to the bench package; move the file to the
//! repo root to update the committed snapshot).

use std::path::{Path, PathBuf};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pexeso::prelude::*;
use pexeso_core::config::PivotSelection;
use pexeso_core::outofcore::LakeManifest;
use pexeso_core::query::Queryable;
use pexeso_delta::{drop_tables, ingest_columns, remove_log, DeltaLake, IngestColumn};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 32;
const N_COLS: usize = 50;
const PER_COL: usize = 100; // 5k vectors
const N_QUERY: usize = 32;
const TAU: Tau = Tau::Ratio(0.06);
const T: JoinThreshold = JoinThreshold::Ratio(0.5);

fn unit(rng: &mut StdRng) -> Vec<f32> {
    let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

fn partition_config() -> PartitionConfig {
    PartitionConfig {
        k: 4,
        method: PartitionMethod::JsdKmeans,
        ..Default::default()
    }
}

fn index_options() -> IndexOptions {
    IndexOptions {
        num_pivots: 5,
        levels: Some(4),
        pivot_selection: PivotSelection::Pca,
        seed: 42,
        ..Default::default()
    }
}

/// The base lake: a fifth of the columns contain the query (real verify
/// work + non-empty replies), the rest are uniform noise.
fn base_columns(query_vecs: &[Vec<f32>]) -> ColumnSet {
    let mut rng = StdRng::seed_from_u64(43);
    let mut columns = ColumnSet::new(DIM);
    for c in 0..N_COLS {
        let mut vecs: Vec<Vec<f32>> = (0..PER_COL).map(|_| unit(&mut rng)).collect();
        if c % 5 == 0 {
            for (slot, q) in vecs.iter_mut().zip(query_vecs) {
                slot.clone_from(q);
            }
        }
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column(&format!("tab{c}"), "key", c as u64, refs)
            .unwrap();
    }
    columns
}

fn deploy(dir: &Path, columns: &ColumnSet) {
    std::fs::create_dir_all(dir).unwrap();
    PartitionedLake::build(
        columns,
        Euclidean,
        &partition_config(),
        &index_options(),
        dir,
    )
    .unwrap();
    let mut manifest = LakeManifest::new("bench", DIM);
    manifest.next_external_id = N_COLS as u64;
    manifest.write(dir).unwrap();
}

fn new_table(seed: u64) -> IngestColumn {
    let mut rng = StdRng::seed_from_u64(seed);
    IngestColumn {
        table_name: format!("fresh{seed}"),
        column_name: "key".into(),
        vectors: (0..PER_COL).flat_map(|_| unit(&mut rng)).collect(),
    }
}

fn bench_delta(c: &mut Criterion) {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("pexeso_bench_delta_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut rng = StdRng::seed_from_u64(42);
    let query_vecs: Vec<Vec<f32>> = (0..N_QUERY).map(|_| unit(&mut rng)).collect();
    let columns = base_columns(&query_vecs);
    deploy(&dir, &columns);
    let mut query = VectorStore::new(DIM);
    for q in &query_vecs {
        query.push(q).unwrap();
    }

    // Ingest one table: log reset each iteration so every sample measures
    // a single-table append against a log of bounded size.
    c.bench_function("delta_ingest_one_table_5k_x32d", |b| {
        b.iter(|| {
            remove_log(&dir).unwrap();
            black_box(ingest_columns(&dir, &[new_table(7)]).unwrap())
        })
    });
    remove_log(&dir).unwrap();

    // The rebuild-only alternative: re-partition and re-index the whole
    // lake (base + the one new table) and rewrite the manifest. Built
    // into a scratch directory so the benchmarked deployment stays valid.
    let rebuild_dir = dir.join("rebuild_scratch");
    let mut with_new = columns.clone();
    let fresh = new_table(7);
    with_new
        .add_column(
            &fresh.table_name,
            &fresh.column_name,
            N_COLS as u64,
            fresh.vectors.chunks_exact(DIM),
        )
        .unwrap();
    c.bench_function("full_rebuild_for_one_table_5k_x32d", |b| {
        b.iter(|| {
            std::fs::create_dir_all(&rebuild_dir).unwrap();
            let lake = PartitionedLake::build(
                &with_new,
                Euclidean,
                &partition_config(),
                &index_options(),
                &rebuild_dir,
            )
            .unwrap();
            LakeManifest::new("bench", DIM).write(&rebuild_dir).unwrap();
            black_box(lake.num_partitions())
        })
    });
    std::fs::remove_dir_all(&rebuild_dir).ok();

    // Steady-state overlay: one ingested table + one tombstone.
    ingest_columns(&dir, &[new_table(7)]).unwrap();
    drop_tables(&dir, &["tab1".into()]).unwrap();

    c.bench_function("delta_open_replay_1table_5k_x32d", |b| {
        b.iter(|| black_box(DeltaLake::open(&dir).unwrap().overlay().n_delta_columns()))
    });

    let q = Query::threshold(TAU, T);
    let overlaid = DeltaLake::open(&dir).unwrap();
    assert!(!overlaid.execute(&q, &query).unwrap().hits.is_empty());
    c.bench_function("query_delta_overlay_5k_x32d", |b| {
        b.iter(|| black_box(overlaid.execute(&q, &query).unwrap().hits.len()))
    });

    // Compact, then run the identical query against the folded base.
    let report = pexeso_delta::compact_lake(&dir, None, ExecPolicy::Sequential).unwrap();
    assert_eq!(report.records_folded, 2);
    let compacted = DeltaLake::open(&dir).unwrap();
    assert!(compacted.overlay().is_empty());
    c.bench_function("query_compacted_5k_x32d", |b| {
        b.iter(|| black_box(compacted.execute(&q, &query).unwrap().hits.len()))
    });

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_delta
}
criterion_main!(benches);
