//! Serving-daemon throughput benchmarks over loopback TCP.
//!
//! Measures end-to-end request latency/throughput of `pexeso-serve` on a
//! 5k×32-d deployment in four regimes: cold (result cache disabled, every
//! request runs the full partition search) vs. warm (cache enabled, the
//! same query repeats and is answered from the LRU), each at 1 and 8
//! workers. The 1-worker runs use a single connection, so `mean_ns` is
//! per-request latency (QPS = 1e9 / mean_ns). The 8-worker runs drive 8
//! concurrent client threads with 8 requests each per iteration — one
//! iteration is a 64-request batch, so per-request time is `mean_ns / 64`
//! and QPS = 64e9 / mean_ns.
//!
//! The worker fan-out only shows a speedup when the machine has cores to
//! spare: on a single-core host the 8-worker cold batch degenerates to
//! the 1-worker rate (the cold path is CPU-bound), while the warm path
//! stays cache-speed at any worker count.
//!
//! Record a snapshot with:
//! `BENCH_JSON=BENCH_serve.json cargo bench -p pexeso-bench --bench bench_serve`
//! (the shim writes relative to the bench package; move the file to the
//! repo root to update the committed snapshot).

use std::path::Path;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pexeso::prelude::*;
use pexeso_core::config::PivotSelection;
use pexeso_core::outofcore::LakeManifest;
use pexeso_serve::{query_payload, ServeClient, ServeConfig, Server, ServerHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 32;
const N_COLS: usize = 50;
const PER_COL: usize = 100; // 5k vectors
const N_QUERY: usize = 32;
const TAU: Tau = Tau::Ratio(0.06);
const T: JoinThreshold = JoinThreshold::Ratio(0.5);
/// Concurrent clients (and worker threads) in the parallel regime.
const FANOUT: usize = 8;
/// Requests per client per iteration in the parallel regime.
const REQS_PER_CLIENT: usize = 8;

fn unit(rng: &mut StdRng) -> Vec<f32> {
    let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

/// A lake where a fifth of the columns contain the query (real verify
/// work + non-empty replies), the rest are uniform noise.
fn deploy(dir: &Path) -> VectorStore {
    let mut rng = StdRng::seed_from_u64(42);
    let query_vecs: Vec<Vec<f32>> = (0..N_QUERY).map(|_| unit(&mut rng)).collect();
    let mut columns = ColumnSet::new(DIM);
    for c in 0..N_COLS {
        let mut vecs: Vec<Vec<f32>> = (0..PER_COL).map(|_| unit(&mut rng)).collect();
        if c % 5 == 0 {
            for (slot, q) in vecs.iter_mut().zip(&query_vecs) {
                slot.clone_from(q);
            }
        }
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column("t", &format!("c{c}"), c as u64, refs)
            .unwrap();
    }
    std::fs::create_dir_all(dir).unwrap();
    PartitionedLake::build(
        &columns,
        Euclidean,
        &PartitionConfig {
            k: 4,
            method: PartitionMethod::JsdKmeans,
            ..Default::default()
        },
        &IndexOptions {
            num_pivots: 5,
            levels: Some(4),
            pivot_selection: PivotSelection::Pca,
            seed: 42,
            ..Default::default()
        },
        dir,
    )
    .unwrap();
    LakeManifest::new("bench", DIM).write(dir).unwrap();

    let mut query = VectorStore::new(DIM);
    for q in &query_vecs {
        query.push(q).unwrap();
    }
    query
}

fn start(dir: &Path, workers: usize, cache_capacity: usize) -> ServerHandle {
    Server::start(
        dir,
        "127.0.0.1:0",
        ServeConfig {
            workers,
            cache_capacity,
            queue_capacity: 256,
            ..Default::default()
        },
    )
    .unwrap()
}

fn one_request(client: &ServeClient, query: &VectorStore) -> usize {
    let reply = client
        .search(
            query_payload("euclidean", TAU, ExecPolicy::Sequential, query),
            T,
        )
        .unwrap();
    reply.hits.len()
}

/// Single connection, one request per iteration: mean_ns = per-request.
fn bench_single(c: &mut Criterion, label: &str, handle: &ServerHandle, query: &VectorStore) {
    let client = ServeClient::connect(handle.addr()).unwrap();
    assert!(one_request(&client, query) > 0, "workload must hit");
    c.bench_function(label, |b| b.iter(|| black_box(one_request(&client, query))));
}

/// 8 client threads × 8 requests per iteration (each thread reconnects
/// once per iteration): mean_ns = per-64-request batch.
fn bench_fanout(c: &mut Criterion, label: &str, handle: &ServerHandle, query: &VectorStore) {
    let addr = handle.addr();
    c.bench_function(label, |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for _ in 0..FANOUT {
                    scope.spawn(|| {
                        let client = ServeClient::connect(addr).unwrap();
                        for _ in 0..REQS_PER_CLIENT {
                            black_box(one_request(&client, query));
                        }
                    });
                }
            })
        })
    });
}

fn bench_serve(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("pexeso_bench_serve_{}", std::process::id()));
    let query = deploy(&dir);

    // Cold: cache disabled — every request pays the full partition search.
    let cold1 = start(&dir, 1, 0);
    bench_single(c, "serve_search_cold_1worker_5k_x32d", &cold1, &query);
    cold1.shutdown();
    let cold8 = start(&dir, FANOUT, 0);
    bench_fanout(
        c,
        "serve_search_cold_8workers_8clients_x8_5k_x32d",
        &cold8,
        &query,
    );
    cold8.shutdown();

    // Warm: cache enabled, repeated query served from the LRU.
    let warm1 = start(&dir, 1, 4096);
    bench_single(c, "serve_search_warm_1worker_5k_x32d", &warm1, &query);
    warm1.shutdown();
    let warm8 = start(&dir, FANOUT, 4096);
    bench_fanout(
        c,
        "serve_search_warm_8workers_8clients_x8_5k_x32d",
        &warm8,
        &query,
    );
    warm8.shutdown();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_serve
}
criterion_main!(benches);
