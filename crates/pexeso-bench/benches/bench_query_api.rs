//! Unified-API overhead check: the `Query`/`Queryable` path against the
//! legacy entry points it replaced, on the standard 10k×64-d workload.
//! The unified path adds a `Query` clone-free dispatch, a per-hit global
//! identity resolution, and (for top-k) the tie-inclusive boundary
//! check — this bench pins all of that as within-noise.
//!
//! Record a snapshot with:
//! `BENCH_JSON=BENCH_query_api.json cargo bench -p pexeso-bench --bench bench_query_api`

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pexeso::prelude::*;
use pexeso_core::config::PivotSelection;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 64;
const N_COLS: usize = 100;
const PER_COL: usize = 100; // 10k vectors total
const N_QUERY: usize = 64;
const TAU: Tau = Tau::Ratio(0.06);
const T: JoinThreshold = JoinThreshold::Ratio(0.5);
const K: usize = 10;

/// The skewed lake of `bench_topk`: a tenth of the columns join, the rest
/// are near misses — representative of both ranking modes' hot paths.
fn workload() -> (ColumnSet, VectorStore) {
    let mut rng = StdRng::seed_from_u64(42);
    let unit = |rng: &mut StdRng| {
        let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n.max(1e-9));
        v
    };
    let center = unit(&mut rng);
    let near = |rng: &mut StdRng, spread: f32| {
        let mut v: Vec<f32> = center
            .iter()
            .map(|&c| c + rng.gen_range(-spread..spread))
            .collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n.max(1e-9));
        v
    };
    let mut columns = ColumnSet::new(DIM);
    for c in 0..N_COLS {
        let vecs: Vec<Vec<f32>> = (0..PER_COL)
            .map(|_| {
                if c % 10 == 0 {
                    near(&mut rng, 0.02)
                } else {
                    near(&mut rng, 0.4)
                }
            })
            .collect();
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column("t", &format!("c{c}"), c as u64, refs)
            .unwrap();
    }
    let mut query = VectorStore::new(DIM);
    for _ in 0..N_QUERY {
        query.push(&near(&mut rng, 0.02)).unwrap();
    }
    (columns, query)
}

/// The designated shim-compat module: the one place outside
/// `tests/shim_compat.rs` allowed to touch the deprecated entry points,
/// exactly so this bench can time the unified path against them.
mod shim_compat {
    #![allow(deprecated)]
    use super::*;

    pub fn legacy_threshold(index: &PexesoIndex<Euclidean>, query: &VectorStore) -> usize {
        index.search(query, TAU, T).unwrap().hits.len()
    }

    pub fn legacy_topk(index: &PexesoIndex<Euclidean>, query: &VectorStore) -> usize {
        index.search_topk(query, TAU, K).unwrap().hits.len()
    }
}

fn bench_query_api(c: &mut Criterion) {
    let (columns, query) = workload();
    let index = PexesoIndex::build(
        columns,
        Euclidean,
        IndexOptions {
            num_pivots: 5,
            levels: Some(4),
            pivot_selection: PivotSelection::Pca,
            seed: 7,
            ..Default::default()
        },
    )
    .unwrap();

    let threshold_q = Query::threshold(TAU, T);
    let topk_q = Query::topk(TAU, K);

    // Sanity: the two paths answer identically before we time them.
    let unified = index.execute(&threshold_q, &query).unwrap();
    assert!(unified.exact());
    assert_eq!(
        unified.hits.len(),
        shim_compat::legacy_threshold(&index, &query)
    );
    assert_eq!(
        index.execute(&topk_q, &query).unwrap().hits.len(),
        shim_compat::legacy_topk(&index, &query)
    );

    c.bench_function("threshold_legacy_entry_10k_x64d", |b| {
        b.iter(|| shim_compat::legacy_threshold(&index, black_box(&query)))
    });
    c.bench_function("threshold_unified_query_10k_x64d", |b| {
        b.iter(|| {
            index
                .execute(&threshold_q, black_box(&query))
                .unwrap()
                .hits
                .len()
        })
    });
    c.bench_function("topk_legacy_entry_10k_x64d", |b| {
        b.iter(|| shim_compat::legacy_topk(&index, black_box(&query)))
    });
    c.bench_function("topk_unified_query_10k_x64d", |b| {
        b.iter(|| {
            index
                .execute(&topk_q, black_box(&query))
                .unwrap()
                .hits
                .len()
        })
    });
    // Building the Query itself is not free-floating overhead either:
    // time the fully cold path (builder + execute) against the reused one.
    c.bench_function("threshold_unified_cold_query_build_10k_x64d", |b| {
        b.iter(|| {
            let q = Query::threshold(TAU, T);
            index.execute(&q, black_box(&query)).unwrap().hits.len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_query_api
}
criterion_main!(benches);
