//! Observability-cost benchmarks: what a query pays for the trace knob.
//!
//! Two pins, recorded into `BENCH_obs.json`:
//!
//! * `verify_kernel_seq_10k_x64d` — the exact verification benchmark from
//!   `bench_kernels`, re-run with the tracing module compiled into the
//!   crate. Comparing this row against `BENCH_kernels.json` shows the
//!   trace plumbing adds nothing to the hot path (traces are built
//!   post-hoc from stats; the disabled path is a single branch per
//!   execution).
//! * `query_trace_{off,phases,detail}` — one end-to-end `execute` on the
//!   same workload at each [`TraceLevel`], so the *enabled* cost (a few
//!   span allocations at the end of the request) is pinned too.
//! * `query_explain_{off,on}` — the same query with and without an
//!   EXPLAIN report. The report is a pure function of the final stats,
//!   so `off` must sit within noise of `query_trace_off` and `on` pays
//!   only the end-of-request report construction.
//!
//! Record a snapshot with:
//! `BENCH_JSON=BENCH_obs.json cargo bench -p pexeso-bench --bench bench_trace`

use criterion::{criterion_group, criterion_main, Criterion};
use pexeso::prelude::*;
use pexeso_core::block::{block, quick_browse};
use pexeso_core::grid::{GridParams, HierarchicalGrid};
use pexeso_core::invindex::InvertedIndex;
use pexeso_core::mapping::MappedVectors;
use pexeso_core::pivot::select_pivots;
use pexeso_core::util::FastMap;
use pexeso_core::verify::{verify_with, VerifyContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 64;
const N_VECTORS: usize = 10_000;
const N_COLS: usize = 100;
const N_QUERY: usize = 64;

fn unit(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

/// The same 10k×64-d unit-vector repository `bench_kernels` uses (seed 42,
/// 100 columns, 64-vector query) so the rows are directly comparable.
fn kernel_workload() -> (ColumnSet, VectorStore) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut columns = ColumnSet::new(DIM);
    let per_col = N_VECTORS / N_COLS;
    for c in 0..N_COLS {
        let vecs: Vec<Vec<f32>> = (0..per_col).map(|_| unit(&mut rng, DIM)).collect();
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column("t", &format!("c{c}"), c as u64, refs)
            .unwrap();
    }
    let mut query = VectorStore::new(DIM);
    for _ in 0..N_QUERY {
        query.push(&unit(&mut rng, DIM)).unwrap();
    }
    (columns, query)
}

/// `verify_kernel_seq_10k_x64d` from `bench_kernels`, byte-for-byte the
/// same configuration (Lemma 1/2 off, exact counts), re-pinned with the
/// trace module linked in.
fn bench_verify_with_tracing_compiled_in(c: &mut Criterion) {
    let (columns, query) = kernel_workload();
    let tau = 0.12f32;
    let t_abs = query.len() + 1;
    let flags = LemmaFlags {
        lemma1_vector_filter: false,
        lemma2_vector_match: false,
        lemma34_cell_filter: true,
        lemma56_cell_match: true,
    };
    let metric = Euclidean;
    let pivots = select_pivots(columns.store(), &metric, 3, PivotSelection::Pca, 42).unwrap();
    let rv_mapped = MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap();
    let q_mapped = MappedVectors::build(&query, &pivots, &metric, None).unwrap();
    let params = GridParams::new(3, 4, 2.0 + 1e-4).unwrap();
    let hgrv = HierarchicalGrid::build_keys_only(params.clone(), &rv_mapped).unwrap();
    let hgq = HierarchicalGrid::build(params.clone(), &q_mapped).unwrap();
    let vec_col = columns.vector_to_column();
    let inv = InvertedIndex::build(&params, &rv_mapped, &vec_col).unwrap();
    let mut stats = SearchStats::new();
    let mut seeded = FastMap::default();
    let handled = quick_browse(&hgq, &inv, &mut seeded, &mut stats);
    let blocked = block(
        &hgq,
        &hgrv,
        &q_mapped,
        tau,
        flags,
        Some(&handled),
        seeded,
        &mut stats,
    );
    let ctx = VerifyContext {
        columns: &columns,
        vec_col: &vec_col,
        rv_mapped: &rv_mapped,
        inv: &inv,
        metric: &metric,
        query: &query,
        query_mapped: &q_mapped,
        tau,
        t_abs,
        flags,
        deleted: None,
    };
    c.bench_function("verify_kernel_seq_10k_x64d", |b| {
        b.iter(|| {
            let mut s = SearchStats::new();
            verify_with(&ctx, &blocked, &mut s, ExecPolicy::Sequential)
        })
    });
}

/// End-to-end `execute` at each trace level: `off` is the default (the
/// single-branch disabled path), `phases`/`detail` pay only the post-hoc
/// span construction.
fn bench_trace_levels(c: &mut Criterion) {
    let (columns, query) = kernel_workload();
    let index = PexesoIndex::build(columns, Euclidean, IndexOptions::default()).unwrap();
    let base = Query::threshold(Tau::Ratio(0.12), JoinThreshold::Ratio(0.5));
    for (name, level) in [
        ("query_trace_off", TraceLevel::Off),
        ("query_trace_phases", TraceLevel::Phases),
        ("query_trace_detail", TraceLevel::Detail),
    ] {
        let q = base.clone().with_trace(level);
        c.bench_function(name, |b| b.iter(|| index.execute(&q, &query).unwrap()));
    }
}

/// End-to-end `execute` with and without an EXPLAIN report: the
/// disabled path is one boolean branch after the search finishes, the
/// enabled path additionally derives the funnel from the final stats.
fn bench_explain(c: &mut Criterion) {
    let (columns, query) = kernel_workload();
    let index = PexesoIndex::build(columns, Euclidean, IndexOptions::default()).unwrap();
    let base = Query::threshold(Tau::Ratio(0.12), JoinThreshold::Ratio(0.5));
    for (name, explain) in [("query_explain_off", false), ("query_explain_on", true)] {
        let q = base.clone().with_explain(explain);
        c.bench_function(name, |b| b.iter(|| index.execute(&q, &query).unwrap()));
    }
}

fn bench_trace(c: &mut Criterion) {
    bench_verify_with_tracing_compiled_in(c);
    bench_trace_levels(c);
    bench_explain(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_trace
}
criterion_main!(benches);
