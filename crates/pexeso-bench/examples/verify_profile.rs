//! Quick profile of the verify hot path on the bench_kernels workload:
//! prints the stats counters and a wall-clock per distance computation,
//! so kernel work can be separated from loop bookkeeping when tuning.
//!
//! Run with: `cargo run --release -p pexeso-bench --example verify_profile`

use pexeso::prelude::*;
use pexeso_core::block::{block, quick_browse};
use pexeso_core::grid::{GridParams, HierarchicalGrid};
use pexeso_core::invindex::InvertedIndex;
use pexeso_core::mapping::MappedVectors;
use pexeso_core::pivot::select_pivots;
use pexeso_core::util::FastMap;
use pexeso_core::verify::{verify_with, VerifyContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const DIM: usize = 64;
const N_VECTORS: usize = 10_000;
const N_COLS: usize = 100;
const N_QUERY: usize = 64;

fn unit(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut columns = ColumnSet::new(DIM);
    let per_col = N_VECTORS / N_COLS;
    for c in 0..N_COLS {
        let vecs: Vec<Vec<f32>> = (0..per_col).map(|_| unit(&mut rng, DIM)).collect();
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column("t", &format!("c{c}"), c as u64, refs)
            .unwrap();
    }
    let mut query = VectorStore::new(DIM);
    for _ in 0..N_QUERY {
        query.push(&unit(&mut rng, DIM)).unwrap();
    }
    let tau = 0.12f32;
    let t_abs = query.len() + 1;
    let flags = LemmaFlags {
        lemma1_vector_filter: false,
        lemma2_vector_match: false,
        lemma34_cell_filter: true,
        lemma56_cell_match: true,
    };
    let metric = Euclidean;
    let pivots = select_pivots(
        columns.store(),
        &metric,
        3,
        pexeso_core::config::PivotSelection::Pca,
        42,
    )
    .unwrap();
    let rv_mapped = MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap();
    let q_mapped = MappedVectors::build(&query, &pivots, &metric, None).unwrap();
    let params = GridParams::new(3, 4, 2.0 + 1e-4).unwrap();
    let hgrv = HierarchicalGrid::build_keys_only(params.clone(), &rv_mapped).unwrap();
    let hgq = HierarchicalGrid::build(params.clone(), &q_mapped).unwrap();
    let vec_col = columns.vector_to_column();
    let inv = InvertedIndex::build(&params, &rv_mapped, &vec_col).unwrap();
    let mut stats = SearchStats::new();
    let mut seeded = FastMap::default();
    let handled = quick_browse(&hgq, &inv, &mut seeded, &mut stats);
    let blocked = block(
        &hgq,
        &hgrv,
        &q_mapped,
        tau,
        flags,
        Some(&handled),
        seeded,
        &mut stats,
    );
    let ctx = VerifyContext {
        columns: &columns,
        vec_col: &vec_col,
        rv_mapped: &rv_mapped,
        inv: &inv,
        metric: &metric,
        query: &query,
        query_mapped: &q_mapped,
        tau,
        t_abs,
        flags,
        deleted: None,
    };
    let n_cand: usize = blocked.candidates.iter().map(|(_, c)| c.len()).sum();
    println!("candidate cells (all q): {n_cand}");
    // Warm up, then time.
    for _ in 0..3 {
        let mut s = SearchStats::new();
        verify_with(&ctx, &blocked, &mut s, ExecPolicy::Sequential);
    }
    let reps = 20;
    let started = Instant::now();
    let mut last = SearchStats::new();
    for _ in 0..reps {
        let mut s = SearchStats::new();
        verify_with(&ctx, &blocked, &mut s, ExecPolicy::Sequential);
        last = s;
    }
    let per_rep = started.elapsed() / reps;
    println!("verify_with: {per_rep:?} per run");
    println!("distance_computations: {}", last.distance_computations);
    println!(
        "ns per distance computation (incl. loop): {:.2}",
        per_rep.as_nanos() as f64 / last.distance_computations as f64
    );
}
