//! Property and stress tests for the LRU result cache.
//!
//! A single shard is driven against a naive model (a recency-ordered
//! `Vec`) through random get/insert/clear traces, pinning the capacity
//! bound, exact LRU order, and counter consistency. The sharded wrapper
//! then gets a multi-thread stress run asserting no update is lost and
//! the aggregate counters stay consistent under contention.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pexeso_serve::{LruCache, ShardedCache};
use proptest::prelude::*;

/// Reference model: exact LRU semantics, O(n) everything.
struct ModelLru {
    capacity: usize,
    /// (key, value), most recently used first.
    entries: Vec<(u64, u64)>,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::new(),
        }
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        let value = entry.1;
        self.entries.insert(0, entry);
        Some(value)
    }

    fn insert(&mut self, key: u64, value: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, (key, value));
    }

    fn keys(&self) -> Vec<u64> {
        self.entries.iter().map(|(k, _)| *k).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random operation traces keep the cache bounded, in exact LRU
    /// order, and with counters that add up.
    #[test]
    fn lru_matches_model(
        capacity in 1usize..12,
        ops in proptest::collection::vec((0u8..10, 0u64..24), 1..300),
    ) {
        let mut cache = LruCache::new(capacity);
        let mut model = ModelLru::new(capacity);
        let mut gets = 0u64;
        let mut fresh_inserts = 0u64;
        for (op, key) in ops {
            match op {
                // 40% gets, 50% inserts, 10% clears.
                0..=3 => {
                    gets += 1;
                    prop_assert_eq!(cache.get(key), model.get(key));
                }
                4..=8 => {
                    if cache.get(key).is_none() {
                        fresh_inserts += 1;
                    } else {
                        gets += 1; // the probe above counts as a get
                        model.get(key); // keep model recency in step
                    }
                    cache.insert(key, key * 3);
                    model.insert(key, key * 3);
                }
                _ => {
                    cache.clear();
                    model.entries.clear();
                }
            }
            // Invariant: capacity bound.
            prop_assert!(cache.len() <= capacity);
            // Invariant: exact recency order.
            prop_assert_eq!(cache.keys_by_recency(), model.keys());
        }
        let (hits, misses, insertions, evictions) = cache.counters();
        // Every get (including the insert-probes) resolved to a hit or a
        // miss, nothing double-counted.
        prop_assert_eq!(hits + misses, gets + fresh_inserts);
        // Fresh keys were inserted exactly once each time.
        prop_assert_eq!(insertions, fresh_inserts);
        // Nothing evicted beyond what was inserted.
        prop_assert!(evictions <= insertions);
    }

    /// Values survive exactly while their key stays within the
    /// most-recently-used `capacity` set.
    #[test]
    fn recent_keys_always_resident(
        capacity in 1usize..8,
        keys in proptest::collection::vec(0u64..1000, 1..100),
    ) {
        let mut cache = LruCache::new(capacity);
        for &k in &keys {
            cache.insert(k, k + 1);
        }
        // The last `capacity` *distinct* keys inserted must all be
        // resident, and resident with the right values.
        let mut expected = Vec::new();
        for &k in keys.iter().rev() {
            if expected.len() == capacity {
                break;
            }
            if !expected.contains(&k) {
                expected.push(k);
            }
        }
        for k in expected {
            prop_assert_eq!(cache.get(k), Some(k + 1));
        }
    }
}

/// Multi-thread stress: N threads hammer disjoint and shared key ranges;
/// afterwards no update may be lost (every surviving key returns the last
/// value written for it) and the aggregate counters stay consistent.
#[test]
fn sharded_stress_no_lost_updates() {
    const THREADS: u64 = 8;
    const OPS_PER_THREAD: u64 = 2_000;
    // Big enough that nothing is ever evicted: a lookup after the run can
    // then prove every insert survived.
    let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new(1 << 16, 8));
    let total_gets = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = cache.clone();
            let total_gets = total_gets.clone();
            scope.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    // Private keys prove no-lost-updates; shared keys
                    // (same low range for all threads) force contention.
                    // The high namespace bit keeps thread 0's private keys
                    // out of the shared 0..64 range.
                    let private = (1 << 48) | (t << 32) | i;
                    cache.insert(private, t * 1_000_000 + i);
                    let shared_key = i % 64;
                    cache.insert(shared_key, shared_key * 2);
                    // A shared key's value is a function of the key alone,
                    // so this hit is guaranteed no matter who wrote last.
                    assert_eq!(cache.get(shared_key), Some(shared_key * 2));
                    total_gets.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    // No lost updates: every private key holds the value its writer put.
    for t in 0..THREADS {
        for i in 0..OPS_PER_THREAD {
            let private = (1 << 48) | (t << 32) | i;
            assert_eq!(
                cache.get(private),
                Some(t * 1_000_000 + i),
                "lost update for thread {t} op {i}"
            );
        }
    }
    for shared_key in 0..64 {
        assert_eq!(cache.get(shared_key), Some(shared_key * 2));
    }

    let stats = cache.stats();
    // Counter consistency under contention: every get resolved exactly
    // once; insert counts match the distinct keys (shared keys insert
    // fresh once, then refresh without recounting).
    let in_run_gets = total_gets.load(Ordering::Relaxed);
    let verify_gets = THREADS * OPS_PER_THREAD + 64;
    assert_eq!(stats.hits + stats.misses, in_run_gets + verify_gets);
    assert_eq!(stats.misses, 0, "nothing was ever evicted or absent");
    assert_eq!(
        stats.insertions,
        THREADS * OPS_PER_THREAD + 64,
        "one insertion per distinct key"
    );
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.len as u64, THREADS * OPS_PER_THREAD + 64);
}
