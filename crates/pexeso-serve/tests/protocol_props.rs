//! Property tests for the serve frame encoding of the unified query API:
//! any [`Query`] the builder can express survives the trip through
//! [`wire_request`] → `encode_request` → `decode_request` with every
//! criterion intact, and extension-less (V1) frames keep their layout.

use std::time::Duration;

use pexeso_core::config::{ExecPolicy, JoinThreshold, LemmaFlags, Tau};
use pexeso_core::query::{Query, QueryBudget, QueryMode};
use pexeso_core::vector::VectorStore;
use pexeso_serve::protocol::{decode_request, encode_request, QueryExt, Request};
use pexeso_serve::wire_request;
use proptest::prelude::*;

/// Deterministically build a `Query` from primitive proptest inputs,
/// covering both modes, both τ/T forms, every policy shape, all lemma
/// toggles, and every budget combination.
#[allow(clippy::too_many_arguments)]
fn make_query(
    topk: bool,
    tau_ratio: bool,
    tau: f32,
    t_count: bool,
    t: f64,
    k: usize,
    par: bool,
    threads: usize,
    lemma_mask: u8,
    quick_browse: bool,
    max_dist: u64,
    deadline_ms: u64,
) -> Query {
    let tau = if tau_ratio {
        Tau::Ratio(tau.clamp(0.0, 1.0))
    } else {
        Tau::Absolute(tau.abs())
    };
    let mut q = if topk {
        Query::topk(tau, k)
    } else if t_count {
        Query::threshold(tau, JoinThreshold::Count(t as usize))
    } else {
        Query::threshold(tau, JoinThreshold::Ratio(t.clamp(0.01, 1.0)))
    };
    q = q
        .with_flags(LemmaFlags {
            lemma1_vector_filter: lemma_mask & 1 != 0,
            lemma2_vector_match: lemma_mask & 2 != 0,
            lemma34_cell_filter: lemma_mask & 4 != 0,
            lemma56_cell_match: lemma_mask & 8 != 0,
        })
        .quick_browse(quick_browse)
        .with_policy(if par {
            ExecPolicy::Parallel { threads }
        } else {
            ExecPolicy::Sequential
        })
        .expect_metric("euclidean");
    if max_dist > 0 {
        q = q.with_max_distance_computations(max_dist);
    }
    if deadline_ms > 0 {
        q = q.with_deadline(Duration::from_millis(deadline_ms));
    }
    q
}

fn sample_store(dim: usize, n: usize) -> VectorStore {
    let mut store = VectorStore::new(dim);
    for i in 0..n {
        let v: Vec<f32> = (0..dim).map(|d| ((i * dim + d) as f32).sin()).collect();
        store.push(&v).unwrap();
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Query builder → wire request → frame bytes → request: lossless.
    #[test]
    fn query_roundtrips_through_frame_encoding(
        topk in 0u8..2,
        tau_ratio in 0u8..2,
        tau in 0.0f32..1.0,
        t_count in 0u8..2,
        t in 0.0f64..1.0,
        k in 0usize..100,
        par in 0u8..2,
        threads in 0usize..16,
        lemma_mask in 0u8..16,
        quick_browse in 0u8..2,
        max_dist in 0u64..1_000_000,
        deadline_ms in 0u64..10_000,
        dim in 1usize..8,
        n in 1usize..5,
    ) {
        let query = make_query(
            topk != 0,
            tau_ratio != 0,
            tau,
            t_count != 0,
            t * 100.0,
            k,
            par != 0,
            threads,
            lemma_mask,
            quick_browse != 0,
            max_dist,
            deadline_ms,
        );
        let store = sample_store(dim, n);
        let request = wire_request(&query, &store);
        let decoded = decode_request(&encode_request(&request)).unwrap();
        prop_assert_eq!(&decoded, &request);

        // Every builder criterion survives into the decoded frame.
        let (payload, decoded_mode) = match &decoded {
            Request::Search { query, t } => (query, QueryMode::Threshold(*t)),
            Request::Topk { query, k } => (query, QueryMode::Topk(*k as usize)),
            other => panic!("query verbs only, got {other:?}"),
        };
        prop_assert_eq!(decoded_mode, query.mode);
        prop_assert_eq!(payload.tau, query.tau);
        prop_assert_eq!(payload.policy, query.policy);
        prop_assert_eq!(payload.metric.as_str(), "euclidean");
        prop_assert_eq!(payload.dim as usize, store.dim());
        prop_assert_eq!(payload.vectors.len(), store.raw_data().len());
        let ext = payload.ext.as_ref().expect("unified requests carry the ext");
        prop_assert_eq!(ext.flags, query.options.flags);
        prop_assert_eq!(ext.quick_browse, query.options.quick_browse);
        prop_assert_eq!(
            ext.max_distance_computations,
            query.budget.max_distance_computations
        );
        prop_assert_eq!(
            ext.deadline_ms,
            query.budget.deadline.map(|d| d.as_millis() as u64)
        );
        // And the budget maps back exactly.
        let budget = QueryBudget {
            max_distance_computations: ext.max_distance_computations,
            deadline: ext.deadline_ms.map(Duration::from_millis),
        };
        prop_assert_eq!(budget, query.budget);
    }

    /// V1 frames (no extension) also round-trip unchanged — the layout
    /// old clients emit keeps decoding forever.
    #[test]
    fn v1_frames_roundtrip(t in 0.01f64..1.0, k in 0u64..50, dim in 1usize..6) {
        let store = sample_store(dim, 2);
        let payload = pexeso_serve::query_payload(
            "euclidean",
            Tau::Ratio(0.06),
            ExecPolicy::Sequential,
            &store,
        );
        prop_assert!(payload.ext.is_none(), "query_payload emits V1 frames");
        for request in [
            Request::Search {
                query: payload.clone(),
                t: JoinThreshold::Ratio(t),
            },
            Request::Topk { query: payload, k },
        ] {
            let bytes = encode_request(&request);
            prop_assert_eq!(bytes[4], 1, "extension-less frames stay version 1");
            prop_assert_eq!(&decode_request(&bytes).unwrap(), &request);
        }
    }
}

/// The default extension spells "no overrides": all lemmas on, quick
/// browsing on, unlimited budget — exactly what a fresh `Query` carries.
#[test]
fn default_ext_matches_default_query() {
    let q = Query::threshold(Tau::Ratio(0.06), JoinThreshold::Ratio(0.5));
    let store = sample_store(4, 1);
    match wire_request(&q, &store) {
        Request::Search { query, .. } => {
            assert_eq!(query.ext, Some(QueryExt::default()));
        }
        other => panic!("expected SEARCH, got {other:?}"),
    }
}
