//! Loopback integration tests for the serving daemon: served replies vs
//! direct `PartitionedLake` calls, hot swap under concurrent load, warm
//! cache behaviour, BUSY backpressure, and clean shutdown.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use pexeso_core::column::ColumnSet;
use pexeso_core::config::{ExecPolicy, IndexOptions, JoinThreshold, PivotSelection, Tau};
use pexeso_core::metric::Euclidean;
use pexeso_core::outofcore::{GlobalHit, LakeManifest, PartitionedLake};
use pexeso_core::partition::{PartitionConfig, PartitionMethod};
use pexeso_core::query::{Query, Queryable};
use pexeso_core::vector::VectorStore;
use pexeso_serve::protocol::{encode_reply, HitsReply, Reply, WireHit};
use pexeso_serve::{query_payload, stat_value, ClientError, ServeClient, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 12;

fn unit(rng: &mut StdRng) -> Vec<f32> {
    let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

/// A lake where the first columns contain exact copies of the query
/// vectors (guaranteed matches at any τ) and the rest are random.
fn workload(seed: u64, n_cols: usize, tag: &str) -> (ColumnSet, VectorStore) {
    let mut rng = StdRng::seed_from_u64(seed);
    let query_vecs: Vec<Vec<f32>> = (0..6).map(|_| unit(&mut rng)).collect();
    let mut columns = ColumnSet::new(DIM);
    for c in 0..n_cols {
        let mut vecs: Vec<Vec<f32>> = (0..15).map(|_| unit(&mut rng)).collect();
        if c < 3 {
            // Plant the query inside the first three columns.
            for (slot, q) in vecs.iter_mut().zip(&query_vecs) {
                slot.clone_from(q);
            }
        }
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column(&format!("{tag}_tab{c}"), "key", c as u64, refs)
            .unwrap();
    }
    let mut query = VectorStore::new(DIM);
    for q in &query_vecs {
        query.push(q).unwrap();
    }
    (columns, query)
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pexeso_serve_{name}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build + persist a deployment (partitions, manifest) and return it.
fn deploy(dir: &Path, columns: &ColumnSet) -> PartitionedLake {
    let lake = PartitionedLake::build(
        columns,
        Euclidean,
        &PartitionConfig {
            k: 3,
            method: PartitionMethod::JsdKmeans,
            ..Default::default()
        },
        &IndexOptions {
            num_pivots: 3,
            levels: Some(3),
            pivot_selection: PivotSelection::Pca,
            seed: 7,
            ..Default::default()
        },
        dir,
    )
    .unwrap();
    LakeManifest::next_build(dir, "test", DIM)
        .unwrap()
        .write(dir)
        .unwrap();
    lake
}

fn wire(hits: &[GlobalHit]) -> Vec<WireHit> {
    hits.iter().map(WireHit::from).collect()
}

#[test]
fn served_replies_byte_identical_to_direct_calls() {
    let dir = tempdir("exact");
    let (columns, query) = workload(11, 10, "a");
    let lake = deploy(&dir, &columns);
    let handle = Server::start(&dir, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let client = ServeClient::connect(handle.addr()).unwrap();

    let info = client.info().unwrap();
    assert_eq!(info.dim as usize, DIM);
    assert_eq!(info.generation, 1);
    assert_eq!(info.partitions as usize, lake.num_partitions());

    for tau in [Tau::Ratio(0.05), Tau::Ratio(0.2)] {
        for t in [
            JoinThreshold::Ratio(0.5),
            JoinThreshold::Ratio(0.9),
            JoinThreshold::Count(2),
        ] {
            for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel { threads: 4 }] {
                let served = client
                    .search(query_payload("euclidean", tau, policy, &query), t)
                    .unwrap();
                let direct = lake
                    .execute(&Query::threshold(tau, t), &query)
                    .unwrap()
                    .hits;
                assert!(!direct.is_empty(), "workload must produce hits");
                // Byte-identical: the served reply re-encodes to exactly
                // the bytes a reply built from the direct call encodes to.
                let direct_reply = Reply::Hits(HitsReply {
                    generation: served.generation,
                    cached: served.cached,
                    hits: wire(&direct),
                    ext: None,
                    trace: None,
                    explain: None,
                });
                assert_eq!(
                    encode_reply(&Reply::Hits(served.clone())),
                    encode_reply(&direct_reply),
                    "tau={tau:?} t={t:?} policy={policy:?}"
                );
            }
        }
        for k in [1usize, 3, 8] {
            let served = client
                .search_topk(
                    query_payload("euclidean", tau, ExecPolicy::Sequential, &query),
                    k as u64,
                )
                .unwrap();
            let direct = lake.execute(&Query::topk(tau, k), &query).unwrap().hits;
            assert_eq!(
                encode_reply(&Reply::Hits(served.clone())),
                encode_reply(&Reply::Hits(HitsReply {
                    generation: served.generation,
                    cached: served.cached,
                    hits: wire(&direct),
                    ext: None,
                    trace: None,
                    explain: None,
                })),
                "tau={tau:?} k={k}"
            );
        }
    }

    // Typed server-side errors come back as ClientError::Server.
    let bad_metric = client.search(
        query_payload("cosine", Tau::Ratio(0.1), ExecPolicy::Sequential, &query),
        JoinThreshold::Count(1),
    );
    assert!(matches!(bad_metric, Err(ClientError::Server(_))));
    // A *known* metric that differs from the build metric must also be
    // rejected — running Manhattan over Euclidean pivot mappings would
    // silently return non-exact results.
    let wrong_metric = client.search(
        query_payload("manhattan", Tau::Ratio(0.1), ExecPolicy::Sequential, &query),
        JoinThreshold::Count(1),
    );
    match wrong_metric {
        Err(ClientError::Server(msg)) => {
            assert!(
                msg.contains("euclidean"),
                "should name the build metric: {msg}"
            )
        }
        other => panic!("expected metric-mismatch rejection, got {other:?}"),
    }
    let mut wrong_dim = VectorStore::new(DIM + 1);
    wrong_dim.push(&[0.0; DIM + 1]).unwrap();
    let bad_dim = client.search(
        query_payload(
            "euclidean",
            Tau::Ratio(0.1),
            ExecPolicy::Sequential,
            &wrong_dim,
        ),
        JoinThreshold::Count(1),
    );
    assert!(matches!(bad_dim, Err(ClientError::Server(_))));

    drop(client);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_cache_serves_repeats_without_search_work() {
    let dir = tempdir("cache");
    let (columns, query) = workload(22, 10, "a");
    deploy(&dir, &columns);
    let handle = Server::start(&dir, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let client = ServeClient::connect(handle.addr()).unwrap();

    let payload = || query_payload("euclidean", Tau::Ratio(0.2), ExecPolicy::Sequential, &query);
    let cold = client.search(payload(), JoinThreshold::Ratio(0.5)).unwrap();
    assert!(!cold.cached);
    let stats_after_cold = client.stats_text().unwrap();
    let dc_cold = stat_value(&stats_after_cold, "distance_computations").unwrap();
    assert!(dc_cold > 0.0, "cold query must verify with real distances");
    let hits_cold = stat_value(&stats_after_cold, "cache.hits").unwrap();

    let warm = client.search(payload(), JoinThreshold::Ratio(0.5)).unwrap();
    assert!(warm.cached, "repeat query must come from cache");
    assert_eq!(warm.hits, cold.hits);
    assert_eq!(warm.generation, cold.generation);

    let stats_after_warm = client.stats_text().unwrap();
    // The hit counter moved...
    assert_eq!(
        stat_value(&stats_after_warm, "cache.hits").unwrap(),
        hits_cold + 1.0
    );
    // ...and no verify-stage distance computation happened for the repeat.
    assert_eq!(
        stat_value(&stats_after_warm, "distance_computations").unwrap(),
        dc_cold
    );
    // A different T is a different cache key.
    let other = client.search(payload(), JoinThreshold::Ratio(0.9)).unwrap();
    assert!(!other.cached);

    drop(client);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_swap_under_concurrent_load_drops_nothing() {
    let dir_a = tempdir("swap_a");
    let dir_b = tempdir("swap_b");
    let (columns_a, query) = workload(33, 10, "a");
    let lake_a = deploy(&dir_a, &columns_a);
    // B shares the query but is a different lake (more columns, new tag).
    let (columns_b, _) = workload(33, 14, "b");
    let lake_b = deploy(&dir_b, &columns_b);

    let tau = Tau::Ratio(0.2);
    let t = JoinThreshold::Ratio(0.5);
    let direct_a = lake_a
        .execute(&Query::threshold(tau, t), &query)
        .unwrap()
        .hits;
    let direct_b = lake_b
        .execute(&Query::threshold(tau, t), &query)
        .unwrap()
        .hits;
    let (expect_a, expect_b) = (wire(&direct_a), wire(&direct_b));
    assert_ne!(expect_a, expect_b, "swap must be observable in results");

    let handle = Server::start(
        &dir_a,
        "127.0.0.1:0",
        ServeConfig {
            workers: 6,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    const CLIENTS: usize = 4;
    let stop = AtomicBool::new(false);
    let swap_result = std::thread::scope(|scope| {
        let mut client_threads = Vec::new();
        for _ in 0..CLIENTS {
            let (stop, query) = (&stop, &query);
            let (expect_a, expect_b) = (&expect_a, &expect_b);
            client_threads.push(scope.spawn(move || {
                let client = ServeClient::connect(addr).unwrap();
                let mut generations: Vec<u64> = Vec::new();
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let reply = client
                        .search(
                            query_payload("euclidean", tau, ExecPolicy::Sequential, query),
                            t,
                        )
                        .expect("no query may be dropped during a hot swap");
                    // Replies must match the snapshot they claim to be from.
                    match reply.generation {
                        1 => assert_eq!(&reply.hits, expect_a),
                        2 => assert_eq!(&reply.hits, expect_b),
                        g => panic!("unexpected generation {g}"),
                    }
                    generations.push(reply.generation);
                    served += 1;
                }
                (generations, served)
            }));
        }

        // Let traffic flow on generation 1, then hot-swap to B.
        std::thread::sleep(Duration::from_millis(120));
        let admin = ServeClient::connect(addr).unwrap();
        let (generation, partitions) = admin.reload(Some(&dir_b)).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(partitions as usize, lake_b.num_partitions());
        // Let traffic flow on generation 2, then stop the clients.
        std::thread::sleep(Duration::from_millis(120));
        stop.store(true, Ordering::Relaxed);

        let mut total_served = 0;
        let mut saw_gen = [false; 3];
        for th in client_threads {
            let (generations, served) = th.join().unwrap();
            total_served += served;
            // Generations never go backwards within a connection.
            assert!(generations.windows(2).all(|w| w[0] <= w[1]));
            for g in generations {
                saw_gen[g as usize] = true;
            }
        }
        (admin, total_served, saw_gen)
    });
    let (admin, total_served, saw_gen) = swap_result;
    assert!(total_served > 0);
    assert!(saw_gen[1] && saw_gen[2], "load must straddle the swap");

    // After the swap the daemon serves B, and the swap was counted.
    let final_reply = admin
        .search(
            query_payload("euclidean", tau, ExecPolicy::Sequential, &query),
            t,
        )
        .unwrap();
    assert_eq!(final_reply.generation, 2);
    assert_eq!(final_reply.hits, expect_b);
    let stats = admin.stats_text().unwrap();
    assert_eq!(stat_value(&stats, "swaps"), Some(1.0));
    assert_eq!(stat_value(&stats, "snapshot.generation"), Some(2.0));

    drop(admin);
    handle.shutdown();
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn busy_backpressure_rejects_beyond_queue() {
    let dir = tempdir("busy");
    let (columns, query) = workload(44, 8, "a");
    deploy(&dir, &columns);
    // One worker, queue of one: the third concurrent connection gets BUSY.
    let handle = Server::start(
        &dir,
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            read_timeout: Some(Duration::from_secs(10)),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // A occupies the single worker (connected, sends nothing yet).
    let conn_a = ServeClient::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // B fills the queue slot.
    let conn_b = ServeClient::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // C overflows: the acceptor answers BUSY and hangs up.
    let conn_c = ServeClient::connect(addr).unwrap();
    let busy = conn_c.info();
    assert!(matches!(busy, Err(ClientError::Busy)), "got {busy:?}");

    // A's worker was never stolen: it still serves its held connection.
    let reply = conn_a
        .search(
            query_payload("euclidean", Tau::Ratio(0.2), ExecPolicy::Sequential, &query),
            JoinThreshold::Count(1),
        )
        .unwrap();
    assert!(!reply.hits.is_empty());
    // Releasing A lets the queued B be served.
    drop(conn_a);
    let info = conn_b.info().unwrap();
    assert_eq!(info.generation, 1);
    let stats = conn_b.stats_text().unwrap();
    assert_eq!(stat_value(&stats, "busy_rejections"), Some(1.0));

    drop(conn_b);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reload_same_dir_picks_up_reindex_and_failures_keep_serving() {
    let dir = tempdir("reindex");
    let (columns, query) = workload(55, 8, "a");
    let lake_a = deploy(&dir, &columns);
    // Direct answer of the first build, captured while its files exist.
    let direct_a = lake_a
        .execute(
            &Query::threshold(Tau::Ratio(0.2), JoinThreshold::Count(3)),
            &query,
        )
        .unwrap()
        .hits;
    let handle = Server::start(&dir, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let client = ServeClient::connect(handle.addr()).unwrap();
    assert_eq!(client.info().unwrap().index_version, 1);

    // A reload pointing at garbage fails without hurting live serving.
    let missing = tempdir("reindex_missing");
    std::fs::remove_dir_all(&missing).ok();
    assert!(matches!(
        client.reload(Some(&missing)),
        Err(ClientError::Server(_))
    ));
    assert_eq!(
        client.info().unwrap().generation,
        1,
        "failed swap is a no-op"
    );

    // Re-index the same directory *in place*: this deletes and rewrites
    // every partition file under the live daemon. The snapshot is fully
    // resident, so an *uncached* query during the window (Count(3) was
    // never asked before, so this is a real search, not a cache hit)
    // still answers from the old build, exactly.
    let (columns2, _) = workload(56, 9, "a2");
    deploy(&dir, &columns2);
    let payload = || query_payload("euclidean", Tau::Ratio(0.2), ExecPolicy::Sequential, &query);
    let during = client.search(payload(), JoinThreshold::Count(3)).unwrap();
    assert_eq!(during.generation, 1);
    assert!(!during.cached);
    assert_eq!(
        during.hits,
        wire(&direct_a),
        "must keep serving the old build"
    );

    // Now pick the re-index up (manifest bumps to 2).
    let (generation, _) = client.reload(None).unwrap();
    assert_eq!(generation, 2);
    let info = client.info().unwrap();
    assert_eq!(info.index_version, 2, "manifest version travels in INFO");
    let reply = client
        .search(
            query_payload("euclidean", Tau::Ratio(0.2), ExecPolicy::Sequential, &query),
            JoinThreshold::Count(1),
        )
        .unwrap();
    assert_eq!(reply.generation, 2);

    drop(client);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_shutdown_drains_and_joins() {
    let dir = tempdir("shutdown");
    let (columns, _) = workload(66, 6, "a");
    deploy(&dir, &columns);
    let handle = Server::start(&dir, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = handle.addr();
    // A chatty keep-alive peer must not be able to hold the daemon open:
    // after shutdown it gets at most its in-flight reply, then the
    // connection closes.
    let chatty = ServeClient::connect(addr).unwrap();
    chatty.info().unwrap();
    let client = ServeClient::connect(addr).unwrap();
    client.shutdown().unwrap();
    drop(client);
    // Whether this request sneaks in before the worker observes the flag
    // or fails on a closed connection, the follow-up must fail and join()
    // must return instead of hanging on the chatty peer.
    let first = chatty.info();
    let second = chatty.info();
    assert!(
        first.is_err() || second.is_err(),
        "a shutting-down server must close keep-alive connections"
    );
    drop(chatty);
    // The daemon exits on its own: join() returns instead of hanging.
    handle.join();
    // And the port is actually released/refusing.
    std::thread::sleep(Duration::from_millis(50));
    let late = match ServeClient::connect(addr) {
        Err(_) => return, // refused outright: fine
        Ok(c) => c,
    };
    assert!(late.info().is_err(), "a shut-down server must not answer");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn live_ingest_applies_without_reloading_the_base() {
    use pexeso_delta::{drop_tables, ingest_columns, DeltaLake, IngestColumn};

    let dir = tempdir("ingest");
    let (columns, query) = workload(77, 8, "a");
    deploy(&dir, &columns);
    let handle = Server::start(&dir, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let client = ServeClient::connect(handle.addr()).unwrap();

    let tau = Tau::Ratio(0.05);
    let t = JoinThreshold::Ratio(0.9);
    let q = Query::threshold(tau, t).with_policy(ExecPolicy::Sequential);
    let (before, meta) = client.execute_detailed(&q, &query).unwrap();
    assert_eq!(meta.generation, 1);
    assert!(!before.hits.iter().any(|h| h.table_name == "fresh_tab"));
    // Warm the cache so we can prove the apply invalidates it.
    let (_, warm) = client.execute_detailed(&q, &query).unwrap();
    assert!(warm.cached);

    // Ingest a table that mirrors the query (matches at any τ), then ask
    // the live daemon to publish it from the delta log.
    let mirror: Vec<f32> = (0..query.len())
        .flat_map(|i| query.get_raw(i).to_vec())
        .collect();
    ingest_columns(
        &dir,
        &[IngestColumn {
            table_name: "fresh_tab".into(),
            column_name: "key".into(),
            vectors: mirror,
        }],
    )
    .unwrap();
    let (generation, delta_columns, tombstones) = client.apply_delta().unwrap();
    assert_eq!(generation, 2);
    assert_eq!((delta_columns, tombstones), (1, 0));

    // The base build itself is untouched — only the serve generation
    // moved. An uncached query under the new generation sees the table,
    // byte-identical to opening the deployment (base + log) directly.
    let info = client.info().unwrap();
    assert_eq!(info.generation, 2);
    assert_eq!(info.index_version, 1, "APPLY must not re-index the base");
    let (after, meta) = client.execute_detailed(&q, &query).unwrap();
    assert_eq!(meta.generation, 2);
    assert!(!meta.cached, "the apply must invalidate the result cache");
    assert!(after.hits.iter().any(|h| h.table_name == "fresh_tab"));
    let direct = DeltaLake::open(&dir).unwrap();
    let local = direct.execute(&q, &query).unwrap();
    assert_eq!(wire(&local.hits), wire(&after.hits));

    // Tombstone one of the planted base tables; the next apply hides it.
    drop_tables(&dir, &["a_tab0".into()]).unwrap();
    let (generation, delta_columns, tombstones) = client.apply_delta().unwrap();
    assert_eq!(generation, 3);
    assert_eq!((delta_columns, tombstones), (1, 1));
    let (dropped, _) = client.execute_detailed(&q, &query).unwrap();
    assert!(!dropped.hits.iter().any(|h| h.table_name == "a_tab0"));
    assert!(dropped.hits.iter().any(|h| h.table_name == "fresh_tab"));

    // STATS exposes the delta shape and the apply counter.
    let stats = client.stats_text().unwrap();
    assert_eq!(stat_value(&stats, "delta.columns"), Some(1.0));
    assert_eq!(stat_value(&stats, "delta.tombstones"), Some(1.0));
    assert_eq!(stat_value(&stats, "delta.records"), Some(2.0));
    assert_eq!(stat_value(&stats, "applies"), Some(2.0));
    assert_eq!(stat_value(&stats, "apply.requests"), Some(2.0));

    // Compact the directory underneath the daemon, then APPLY again: the
    // manifest version moved, so the apply falls back to a full load of
    // the new base — and keeps answering the same thing.
    let report = pexeso_delta::compact_lake(&dir, None, ExecPolicy::Sequential).unwrap();
    assert_eq!(report.index_version, 2);
    let (generation, delta_columns, tombstones) = client.apply_delta().unwrap();
    assert_eq!(generation, 4);
    assert_eq!((delta_columns, tombstones), (0, 0));
    let info = client.info().unwrap();
    assert_eq!(info.index_version, 2);
    let (compacted, meta) = client.execute_detailed(&q, &query).unwrap();
    assert_eq!(meta.generation, 4);
    assert_eq!(wire(&compacted.hits), wire(&dropped.hits));

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The observability plane over loopback: a client-requested trace comes
/// back as a merged timeline whose phase spans are consistent with the
/// stats and bounded by the measured request latency; `METRICS` renders
/// valid Prometheus text; traced queries feed the slow-query log; and
/// requesting a trace never changes the answer.
#[test]
fn trace_metrics_and_slow_log_over_loopback() {
    use pexeso_core::trace::TraceLevel;
    use pexeso_serve::{validate_prometheus, ResilientClient, ResilientConfig};

    let dir = tempdir("observability");
    let (columns, query) = workload(29, 8, "obs");
    deploy(&dir, &columns);
    let config = ServeConfig {
        metrics_sample_rate: 1.0,
        ..ServeConfig::default()
    };
    let handle = Server::start(&dir, "127.0.0.1:0", config).unwrap();
    let client = ServeClient::connect(handle.addr()).unwrap();

    // Sequential policy so phase durations sum ≤ wall-clock: under a
    // parallel policy per-partition work overlaps and the back-to-back
    // span layout is reading order, not a schedule.
    let q = Query::threshold(Tau::Ratio(0.2), JoinThreshold::Ratio(0.5))
        .with_policy(ExecPolicy::Sequential);
    let (untraced, _) = client.execute_detailed(&q, &query).unwrap();
    assert!(!untraced.hits.is_empty(), "workload must produce hits");
    assert!(untraced.trace.is_none(), "no trace unless requested");

    let traced_q = q.clone().with_trace(TraceLevel::Detail);
    let started = std::time::Instant::now();
    let (traced, meta) = client.execute_detailed(&traced_q, &query).unwrap();
    let wall = started.elapsed();
    // Tracing never changes the answer (and bypasses the cache so the
    // trace reflects a real execution).
    assert_eq!(wire(&traced.hits), wire(&untraced.hits));
    assert!(!meta.cached, "traced queries bypass the cache read");
    let trace = traced.trace.as_ref().expect("requested trace must arrive");
    for phase in ["map", "block", "verify", "merge"] {
        assert!(trace.find(phase).is_some(), "missing {phase} span");
    }
    assert!(trace.span_count() >= 5, "root + four phases at minimum");
    // The server-side phase sum is bounded by the client's measured
    // round-trip (which additionally includes the network and queue).
    assert!(
        trace.phase_sum() <= wall,
        "phase sum {:?} exceeds wall {:?}",
        trace.phase_sum(),
        wall
    );
    // The stats phase durations are the very numbers the spans carry.
    assert_eq!(
        traced.stats.mapping_time,
        trace.find("map").unwrap().duration()
    );
    assert_eq!(
        traced.stats.block_time,
        trace.find("block").unwrap().duration()
    );
    assert_eq!(
        traced.stats.verify_time,
        trace.find("verify").unwrap().duration()
    );

    // The resilient client nests the same server trace under its own
    // attempt timeline: one correlated client→attempt→query tree.
    let resilient =
        ResilientClient::new(&[handle.addr().to_string()], ResilientConfig::default()).unwrap();
    let merged = resilient.execute(&traced_q, &query).unwrap();
    assert_eq!(wire(&merged.hits), wire(&untraced.hits));
    let mtrace = merged.trace.as_ref().expect("merged trace must arrive");
    assert_eq!(mtrace.root.name, "client");
    let attempt = mtrace.find("attempt/0").expect("attempt span");
    let server_root = attempt.children.first().expect("nested server trace");
    assert_eq!(server_root.name, "query");
    assert!(
        server_root.start_us >= attempt.start_us,
        "nesting must shift the server trace onto the client clock"
    );
    assert!(mtrace.find("verify").is_some());
    assert!(resilient.attempt_latency().count >= 1);

    // METRICS: valid Prometheus exposition carrying the request and
    // phase histogram families (the validator checks bucket monotonicity
    // and the +Inf == _count invariant for every series).
    let metrics = client.metrics_text().unwrap();
    validate_prometheus(&metrics).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{metrics}"));
    for family in [
        "pexeso_requests_total",
        "pexeso_request_latency_microseconds_bucket",
        "pexeso_phase_microseconds_sum",
        "pexeso_queue_wait_microseconds_count",
    ] {
        assert!(metrics.contains(family), "missing {family} in:\n{metrics}");
    }

    // The traced queries (and, at sample rate 1.0, every uncached one)
    // landed in the slow-query log with their rendered span trees.
    let slow = client.slow_log_text().unwrap();
    assert!(!slow.is_empty(), "slow log must have entries");
    assert!(
        slow.contains("verify"),
        "entries carry the span tree:\n{slow}"
    );

    // STATS still answers alongside METRICS, and the queue-wait
    // histogram has observations.
    let stats = client.stats_text().unwrap();
    assert!(stat_value(&stats, "queue_wait.p99_us").is_some());

    // Close both client connections before joining: a worker parked in
    // a read on a live keep-alive stream only notices shutdown at the
    // read timeout.
    drop(resilient);
    drop(client);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inspect_health_and_correlated_slow_log_over_loopback() {
    use pexeso_core::trace::TraceLevel;
    use pexeso_serve::validate_prometheus;

    let dir = tempdir("introspect");
    let (columns, query) = workload(53, 8, "ins");
    deploy(&dir, &columns);
    let config = ServeConfig {
        metrics_sample_rate: 1.0,
        ..ServeConfig::default()
    };
    let handle = Server::start(&dir, "127.0.0.1:0", config).unwrap();
    let client = ServeClient::connect(handle.addr()).unwrap();

    // INSPECT: the structural statistics of the live snapshot, stamped
    // with the generation that produced them.
    let inspect = client.inspect_text().unwrap();
    assert!(inspect.starts_with("generation=1\n"), "{inspect}");
    for key in [
        "partitions=",
        "columns=8",
        "vectors=",
        "cells=",
        "postings_len.p50=",
        "partition0.pivot_spread.mean=",
        "delta_columns=0",
    ] {
        assert!(inspect.contains(key), "missing {key} in:\n{inspect}");
    }

    // The same numbers ride the METRICS exposition as gauges and
    // histograms, and the whole exposition stays schema-valid.
    let metrics = client.metrics_text().unwrap();
    validate_prometheus(&metrics).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{metrics}"));
    for family in [
        "pexeso_index_columns 8",
        "pexeso_index_vectors",
        "# TYPE pexeso_index_postings_length histogram",
    ] {
        assert!(metrics.contains(family), "missing {family} in:\n{metrics}");
    }

    // HEALTH: an idle daemon is ready; DRAIN is refused (router verb).
    let health = client.health_text().unwrap();
    assert!(health.starts_with("status=ready\n"), "{health}");
    assert!(health.contains("generation=1"), "{health}");
    assert!(health.contains("queue_depth=0"), "{health}");
    assert!(client.drain("127.0.0.1:1", true).is_err());

    // A traced query carrying a caller-minted request id lands in the
    // slow log under that id (a shard daemon adds no shard attribution).
    let q = Query::threshold(Tau::Ratio(0.2), JoinThreshold::Ratio(0.5))
        .with_trace(TraceLevel::Phases)
        .with_request_id(0xFACE);
    let (resp, meta) = client.execute_detailed(&q, &query).unwrap();
    assert!(!meta.cached && resp.trace.is_some());
    let slow = client.slow_log_text().unwrap();
    assert!(slow.contains("rid=000000000000face"), "{slow}");
    assert!(!slow.contains("shard="), "{slow}");

    // An EXPLAIN report comes back over the wire and balances.
    let (resp, _) = client
        .execute_detailed(
            &q.clone().with_trace(TraceLevel::Off).with_explain(true),
            &query,
        )
        .unwrap();
    let report = resp.explain.expect("requested report travels back");
    assert!(report.consistent());
    assert_eq!(report.mode, "threshold");

    drop(client);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
