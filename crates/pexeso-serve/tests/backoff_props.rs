//! Property tests for the retry schedule ([`pexeso_serve::resilient::plan_retry`]):
//! the pure function behind every [`pexeso_serve::ResilientClient`] retry
//! decision. Pinned invariants:
//!
//! * retries are bounded: `None` once `retry > max_retries`;
//! * every delay respects the jitter envelope: at least `base`, at most
//!   `cap`, and at most `max(prev, base) · multiplier`;
//! * the deadline is inviolable: any delay is strictly below the
//!   remaining budget, and a whole simulated retry loop's sleep time
//!   never exceeds the deadline;
//! * the schedule is a pure function of (policy, inputs, seed): same
//!   seed, same schedule.

use std::time::Duration;

use pexeso_serve::resilient::{plan_retry, BackoffPolicy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a policy from raw draws (cap ≥ base by construction).
fn policy_from(base_ms: u64, extra_ms: u64, multiplier: u32, retries: u32) -> BackoffPolicy {
    BackoffPolicy {
        base: Duration::from_millis(base_ms),
        cap: Duration::from_millis(base_ms + extra_ms),
        multiplier,
        max_retries: retries,
    }
}

proptest! {
    /// Delays always sit inside [base, min(cap, max(prev, base)·mult)],
    /// and attempts stop exactly at max_retries.
    #[test]
    fn delays_respect_the_envelope_and_the_retry_bound(
        params in (1u64..50, 1u64..500, 1u32..6, 0u32..12),
        seed in 0u64..u64::MAX,
    ) {
        let (base_ms, extra_ms, multiplier, retries) = params;
        let policy = policy_from(base_ms, extra_ms, multiplier, retries);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prev = policy.base;
        for retry in 1..=policy.max_retries {
            let d = plan_retry(&policy, retry, prev, None, &mut rng)
                .expect("no deadline: every in-bound retry is allowed");
            prop_assert!(d >= policy.base, "delay {d:?} under base");
            prop_assert!(d <= policy.cap, "delay {d:?} over cap");
            let envelope = prev
                .max(policy.base)
                .saturating_mul(policy.multiplier.max(1))
                .min(policy.cap);
            prop_assert!(d <= envelope, "delay {d:?} escapes envelope {envelope:?}");
            prev = d;
        }
        prop_assert_eq!(
            plan_retry(&policy, policy.max_retries + 1, prev, None, &mut rng),
            None
        );
    }

    /// With a remaining budget, a granted delay is strictly below it; a
    /// budget at or under base grants nothing.
    #[test]
    fn no_single_delay_reaches_the_remaining_budget(
        params in (1u64..50, 1u64..500, 1u32..6, 1u32..12),
        draws in (0u64..u64::MAX, 0u64..1_000, 0u64..1_000),
    ) {
        let (base_ms, extra_ms, multiplier, retries) = params;
        let (seed, prev_ms, remaining_ms) = draws;
        let policy = policy_from(base_ms, extra_ms, multiplier, retries);
        prop_assume!(policy.max_retries >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let remaining = Duration::from_millis(remaining_ms);
        match plan_retry(&policy, 1, Duration::from_millis(prev_ms), Some(remaining), &mut rng) {
            Some(d) => prop_assert!(d < remaining, "delay {d:?} >= remaining {remaining:?}"),
            None => prop_assert!(
                remaining <= policy.cap,
                "a refusal with {remaining:?} of room means every candidate \
                 delay (≤ cap {:?}) was >= it — impossible",
                policy.cap
            ),
        }
        if remaining <= policy.base {
            let refused = plan_retry(
                &policy, 1, Duration::from_millis(prev_ms), Some(remaining), &mut rng,
            );
            prop_assert_eq!(refused, None, "budget ≤ base must never sleep");
        }
    }

    /// A whole simulated retry loop: total time slept never exceeds the
    /// deadline budget, however the failures fall.
    #[test]
    fn total_retry_sleep_never_exceeds_the_deadline(
        params in (1u64..50, 1u64..500, 1u32..6, 0u32..12),
        draws in (0u64..u64::MAX, 1u64..2_000),
    ) {
        let (base_ms, extra_ms, multiplier, retries) = params;
        let (seed, deadline_ms) = draws;
        let policy = policy_from(base_ms, extra_ms, multiplier, retries);
        let mut rng = StdRng::seed_from_u64(seed);
        let deadline = Duration::from_millis(deadline_ms);
        let mut slept = Duration::ZERO;
        let mut prev = policy.base;
        let mut retry = 0u32;
        loop {
            retry += 1;
            let remaining = deadline.saturating_sub(slept);
            match plan_retry(&policy, retry, prev, Some(remaining), &mut rng) {
                Some(d) => {
                    slept += d;
                    prev = d;
                    prop_assert!(
                        slept < deadline,
                        "cumulative sleep {slept:?} crossed deadline {deadline:?}"
                    );
                }
                None => break,
            }
            prop_assert!(retry <= policy.max_retries + 1, "loop must terminate");
        }
    }

    /// Same seed and inputs → byte-identical schedule (what makes chaos
    /// runs replayable).
    #[test]
    fn schedule_is_deterministic_per_seed(
        params in (1u64..50, 1u64..500, 1u32..6, 0u32..12),
        seed in 0u64..u64::MAX,
    ) {
        let (base_ms, extra_ms, multiplier, retries) = params;
        let policy = policy_from(base_ms, extra_ms, multiplier, retries);
        let run = || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut prev = policy.base;
            let mut out = Vec::new();
            for retry in 1..=policy.max_retries {
                match plan_retry(&policy, retry, prev, None, &mut rng) {
                    Some(d) => { out.push(d); prev = d; }
                    None => break,
                }
            }
            out
        };
        prop_assert_eq!(run(), run());
    }
}
