//! Failure-mode integration tests: desynced-stream discipline, resilient
//! retry/failover, deadline-bounded retries, and graceful degradation
//! (soft-watermark shed, queue-wait deadline expiry).
//!
//! Every test takes [`pexeso_core::fault::test_lock`]: the fault
//! registry is process-global, and even the tests that arm nothing start
//! servers whose connection hooks would otherwise consume another test's
//! armed rules.

use std::io::Write;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use pexeso_core::column::ColumnSet;
use pexeso_core::config::{IndexOptions, JoinThreshold, PivotSelection, Tau};
use pexeso_core::fault::{self, FaultAction, FaultRule};
use pexeso_core::metric::Euclidean;
use pexeso_core::outofcore::{LakeManifest, PartitionedLake};
use pexeso_core::partition::{PartitionConfig, PartitionMethod};
use pexeso_core::query::{Exceeded, Query, QueryOutcome, Queryable};
use pexeso_core::vector::VectorStore;
use pexeso_serve::protocol::{encode_reply, read_frame, write_frame, InfoReply, Reply};
use pexeso_serve::{
    stat_value, ClientError, ResilientClient, ResilientConfig, ServeClient, ServeConfig, Server,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 10;

fn unit(rng: &mut StdRng) -> Vec<f32> {
    let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n.max(1e-9));
    v
}

fn workload(seed: u64, n_cols: usize) -> (ColumnSet, VectorStore) {
    let mut rng = StdRng::seed_from_u64(seed);
    let query_vecs: Vec<Vec<f32>> = (0..5).map(|_| unit(&mut rng)).collect();
    let mut columns = ColumnSet::new(DIM);
    for c in 0..n_cols {
        let mut vecs: Vec<Vec<f32>> = (0..12).map(|_| unit(&mut rng)).collect();
        if c < 3 {
            for (slot, q) in vecs.iter_mut().zip(&query_vecs) {
                slot.clone_from(q);
            }
        }
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        columns
            .add_column(&format!("tab{c}"), "key", c as u64, refs)
            .unwrap();
    }
    let mut query = VectorStore::new(DIM);
    for q in &query_vecs {
        query.push(q).unwrap();
    }
    (columns, query)
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pexeso_fail_{name}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn deploy(dir: &Path, columns: &ColumnSet) -> PartitionedLake {
    let lake = PartitionedLake::build(
        columns,
        Euclidean,
        &PartitionConfig {
            k: 3,
            method: PartitionMethod::JsdKmeans,
            ..Default::default()
        },
        &IndexOptions {
            num_pivots: 3,
            levels: Some(3),
            pivot_selection: PivotSelection::Pca,
            seed: 7,
            ..Default::default()
        },
        dir,
    )
    .unwrap();
    LakeManifest::next_build(dir, "test", DIM)
        .unwrap()
        .write(dir)
        .unwrap();
    lake
}

fn battery() -> Vec<Query> {
    let mut queries = Vec::new();
    for tau in [Tau::Ratio(0.05), Tau::Ratio(0.2)] {
        for t in [JoinThreshold::Ratio(0.5), JoinThreshold::Count(2)] {
            queries.push(Query::threshold(tau, t));
        }
        for k in [1usize, 3, 50] {
            queries.push(Query::topk(tau, k));
        }
    }
    queries
}

/// Satellite regression: a reply that fails to arrive whole (read
/// timeout mid-frame) must surface as a typed [`ClientError::Desynced`]
/// and poison the stream — the next call reconnects and succeeds, and no
/// late bytes from the stalled reply can ever answer the wrong request.
#[test]
fn desynced_stream_is_discarded_and_reconnected() {
    let _guard = fault::test_lock();
    fault::disarm_all();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mock = std::thread::spawn(move || {
        // First connection: read the request, promise a 64-byte reply,
        // deliver 4 bytes, stall (the socket stays open well past the
        // client's read timeout).
        let (mut first, _) = listener.accept().unwrap();
        read_frame(&mut first).unwrap();
        first.write_all(&64u32.to_le_bytes()).unwrap();
        first.write_all(&[0u8; 4]).unwrap();
        first.flush().unwrap();
        // Second connection (the client's reconnect): answer properly.
        let (mut second, _) = listener.accept().unwrap();
        read_frame(&mut second).unwrap();
        let reply = Reply::Info(InfoReply {
            dim: DIM as u32,
            generation: 1,
            index_version: 1,
            partitions: 3,
            disk_bytes: 0,
        });
        write_frame(&mut second, &encode_reply(&reply)).unwrap();
        drop(first);
    });

    let client = ServeClient::connect(addr).unwrap();
    client
        .set_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    match client.info() {
        Err(ClientError::Desynced(_)) => {}
        other => panic!("mid-frame stall must desync, got {other:?}"),
    }
    // The poisoned stream was discarded: this reconnects and succeeds.
    let info = client.info().expect("reconnect after desync must work");
    assert_eq!(info.dim as usize, DIM);
    mock.join().unwrap();
}

/// The resilient differential: with one replica killed mid-run and a
/// transient injected reply-write fault on the survivor, every query
/// through `&dyn Queryable` still answers **byte-identically** to the
/// direct local execution.
#[test]
fn resilient_client_fails_over_and_retries_byte_identically() {
    let _guard = fault::test_lock();
    fault::disarm_all();
    let dir = tempdir("resilient");
    let (columns, query) = workload(91, 9);
    let lake = deploy(&dir, &columns);

    let handle_a = Server::start(&dir, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let handle_b = Server::start(&dir, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let resilient = ResilientClient::new(
        &[handle_a.addr().to_string(), handle_b.addr().to_string()],
        ResilientConfig {
            timeout: Some(Duration::from_secs(5)),
            ..Default::default()
        },
    )
    .unwrap();
    let remote: &dyn Queryable = &resilient;

    let queries = battery();
    let direct: Vec<_> = queries
        .iter()
        .map(|q| lake.execute(q, &query).unwrap().hits)
        .collect();
    assert!(direct.iter().any(|h| !h.is_empty()));

    // First half with both replicas healthy.
    let half = queries.len() / 2;
    for (q, expect) in queries[..half].iter().zip(&direct) {
        assert_eq!(remote.execute(q, &query).unwrap().hits, *expect);
    }
    // Kill replica A outright; the client must absorb the corpse.
    handle_a.shutdown();
    // And make the survivor flaky for one reply write: the client sees a
    // hang-up before the reply and must retry the same request.
    fault::arm("serve.conn.write", FaultRule::nth(0, FaultAction::Error));
    for (q, expect) in queries[half..].iter().zip(&direct[half..]) {
        assert_eq!(
            remote.execute(q, &query).unwrap().hits,
            *expect,
            "degraded-mode answers must stay byte-identical"
        );
    }
    fault::disarm_all();

    let stats = resilient.stats();
    assert!(stats.retries >= 1, "the dead replica must cost retries");
    assert!(stats.failovers >= 1, "retries must fail over: {stats:?}");
    assert_eq!(stats.deadline_stops, 0);

    handle_b.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// No retry is ever issued past the query deadline: with every replica
/// refusing connections, the retry loop gives up within the budget and
/// reports a deadline stop — it does not burn the full retry allowance.
#[test]
fn resilient_client_never_retries_past_the_deadline() {
    let _guard = fault::test_lock();
    fault::disarm_all();
    // A bound-then-dropped listener: its port refuses connections.
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let resilient = ResilientClient::new(
        &[dead_addr],
        ResilientConfig {
            backoff: pexeso_serve::BackoffPolicy {
                base: Duration::from_millis(20),
                cap: Duration::from_millis(100),
                multiplier: 3,
                max_retries: 1_000, // the deadline, not this, must stop the loop
            },
            ..Default::default()
        },
    )
    .unwrap();

    let deadline = Duration::from_millis(300);
    let mut q = Query::threshold(Tau::Ratio(0.1), JoinThreshold::Count(1));
    q.budget.deadline = Some(deadline);
    let mut store = VectorStore::new(DIM);
    store.push(&[0.1; DIM]).unwrap();

    let started = Instant::now();
    let result = resilient.execute(&q, &store);
    let elapsed = started.elapsed();
    assert!(result.is_err(), "no replica can answer");
    assert!(
        elapsed < deadline + Duration::from_millis(700),
        "retry loop must stop at the deadline, ran {elapsed:?}"
    );
    let stats = resilient.stats();
    assert_eq!(stats.deadline_stops, 1, "{stats:?}");
    assert!(stats.retries >= 1, "{stats:?}");
}

/// Graceful degradation: above the soft watermark the acceptor sheds
/// every other connection with a typed SHED reply, and a request whose
/// deadline elapsed while it sat in the accept queue gets the typed
/// `DeadlineExpired` reply (surfacing as the standard partial outcome)
/// instead of a full — and pointless — search. Both show up in STATS.
#[test]
fn soft_watermark_sheds_and_queue_wait_expires_deadlines() {
    let _guard = fault::test_lock();
    fault::disarm_all();
    let dir = tempdir("degrade");
    let (columns, query) = workload(44, 6);
    deploy(&dir, &columns);
    let handle = Server::start(
        &dir,
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            queue_soft_watermark: Some(1),
            read_timeout: Some(Duration::from_secs(10)),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // A occupies the single worker (connected, sends nothing).
    let conn_a = ServeClient::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // B queues below the soft watermark and waits there.
    let conn_b = ServeClient::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    // Releasing A hands the worker to B, whose queue wait is now ~150ms:
    // a 1ms-deadline query must expire typed, with no search work done.
    drop(conn_a);
    std::thread::sleep(Duration::from_millis(100));
    let mut expired_q = Query::threshold(Tau::Ratio(0.2), JoinThreshold::Count(1));
    expired_q.budget.deadline = Some(Duration::from_millis(1));
    let (resp, _meta) = conn_b.execute_detailed(&expired_q, &query).unwrap();
    assert_eq!(resp.outcome, QueryOutcome::Exceeded(Exceeded::Deadline));
    assert!(resp.hits.is_empty());
    // The same connection keeps working, and an undeadlined repeat is a
    // real answer: expiry is per-request, not per-connection.
    let (ok, _) = conn_b
        .execute_detailed(
            &Query::threshold(Tau::Ratio(0.05), JoinThreshold::Ratio(0.5)),
            &query,
        )
        .unwrap();
    assert!(!ok.hits.is_empty());

    // The worker is still parked on B (keep-alive). C queues (len 0 →
    // below soft), then D/E/F arrive above the watermark: every other
    // one is shed — D and F turned away typed, E still queued.
    let conn_c = ServeClient::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let conn_d = ServeClient::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let conn_e = ServeClient::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let conn_f = ServeClient::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    for shed_conn in [&conn_d, &conn_f] {
        match shed_conn.info() {
            Err(ClientError::Shed) => {}
            other => panic!("expected typed shed, got {other:?}"),
        }
    }
    // Drain the queue: B and C release the worker, E answers.
    drop(conn_b);
    drop(conn_c);
    let info = conn_e.info().expect("queued connection must be served");
    assert_eq!(info.generation, 1);
    let stats = conn_e.stats_text().unwrap();
    assert_eq!(stat_value(&stats, "shed"), Some(2.0), "{stats}");
    assert_eq!(stat_value(&stats, "expired"), Some(1.0), "{stats}");

    drop(conn_e);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
