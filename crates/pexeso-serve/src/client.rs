//! Synchronous client for the `pexeso serve` protocol.
//!
//! One [`ServeClient`] wraps one TCP connection and can issue any number
//! of requests sequentially. The server's explicit backpressure surfaces
//! as [`ClientError::Busy`] so callers can retry elsewhere or back off.
//!
//! The client is the *remote* [`Queryable`] backend: a unified
//! [`Query`] executes over the wire exactly like it would against a local
//! index, with the per-query options/budget travelling in the V2 frame
//! extension and the outcome/stats coming back in the extended reply.
//! The stream is guarded by a mutex so the trait's `&self` surface stays
//! sound; requests on one connection serialize.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

use pexeso_core::config::{ExecPolicy, JoinThreshold, Tau};
use pexeso_core::error::PexesoError;
use pexeso_core::outofcore::GlobalHit;
use pexeso_core::query::{Exceeded, Query, QueryMode, QueryOutcome, QueryResponse, Queryable};
use pexeso_core::stats::SearchStats;
use pexeso_core::trace::TraceLevel;
use pexeso_core::vector::VectorStore;

use crate::protocol::{
    decode_reply, encode_request, read_frame, write_frame, BatchMode, HitsReply, InfoReply,
    QueryBatch, QueryExt, QueryPayload, Reply, Request, WireError,
};

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect/read/write).
    Io(std::io::Error),
    /// The server rejected the connection under load; retry later.
    Busy,
    /// The server shed the connection early (soft watermark); same
    /// caller contract as [`ClientError::Busy`], reported separately so
    /// degradation is visible before saturation.
    Shed,
    /// The server processed the request and answered with an error.
    Server(String),
    /// The reply violated the protocol (or the connection died mid-frame).
    Protocol(String),
    /// The server hung up cleanly before sending any reply byte (e.g. it
    /// was killed, or is shutting down). Nothing is in flight; the next
    /// call transparently reconnects. Retryable.
    Disconnected,
    /// A reply failed to arrive whole (e.g. a read timeout mid-frame):
    /// the stream may still carry the rest of that reply, so it can
    /// never be reused for another request. The connection has been
    /// discarded; the next call transparently reconnects.
    Desynced(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Busy => write!(f, "server busy; retry later"),
            ClientError::Shed => write!(f, "server shedding load; retry later"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Disconnected => {
                write!(f, "server closed the connection before replying")
            }
            ClientError::Desynced(msg) => {
                write!(f, "connection desynced and discarded: {msg}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            WireError::Malformed(msg) => ClientError::Protocol(msg),
        }
    }
}

/// Fold client failures into the unified error type so `&dyn Queryable`
/// callers handle remote and local backends identically.
impl From<ClientError> for PexesoError {
    fn from(e: ClientError) -> Self {
        match e {
            ClientError::Io(e) => PexesoError::Io(e),
            other => PexesoError::Remote(other.to_string()),
        }
    }
}

type ClientResult<T> = std::result::Result<T, ClientError>;

/// Build the query half of a request from an embedded column.
pub fn query_payload(
    metric: &str,
    tau: Tau,
    policy: ExecPolicy,
    store: &VectorStore,
) -> QueryPayload {
    QueryPayload {
        metric: metric.to_string(),
        tau,
        policy,
        dim: store.dim() as u32,
        vectors: store.raw_data().to_vec(),
        ext: None,
        trace: TraceLevel::Off,
        request_id: None,
        explain: false,
    }
}

/// The wire request a unified [`Query`] translates to: every criterion —
/// mode, τ, T/k, policy, metric expectation, lemma toggles, quick-browse,
/// and budget — travels in the frame (the options/budget in the V2
/// extension). This is the client half of the serve mapping; the server
/// reassembles the same `Query` on the other side. Public so the
/// round-trip can be property-tested against the frame codec.
pub fn wire_request(query: &Query, vectors: &VectorStore) -> Request {
    let payload = QueryPayload {
        // An empty metric string spells "no expectation": the server
        // answers with its own build metric, exactly like the local
        // backends do for `Query::metric = None`.
        metric: query.metric.clone().unwrap_or_default(),
        tau: query.tau,
        policy: query.policy,
        dim: vectors.dim() as u32,
        vectors: vectors.raw_data().to_vec(),
        ext: Some(wire_ext(query)),
        trace: query.trace,
        request_id: query.request_id,
        explain: query.explain,
    };
    match query.mode {
        QueryMode::Threshold(t) => Request::Search { query: payload, t },
        QueryMode::Topk(k) => Request::Topk {
            query: payload,
            k: k as u64,
        },
    }
}

/// The V2 extension a unified [`Query`] travels with (shared by solo and
/// batch frames).
fn wire_ext(query: &Query) -> QueryExt {
    QueryExt {
        flags: query.options.flags,
        quick_browse: query.options.quick_browse,
        max_distance_computations: query.budget.max_distance_computations,
        // Ceil to whole milliseconds: a sub-millisecond (but nonzero)
        // deadline must not truncate to an instant trip server-side.
        deadline_ms: query
            .budget
            .deadline
            .map(|d| d.as_nanos().div_ceil(1_000_000) as u64),
    }
}

/// The V4 batch frame a unified [`Query`] over many columns translates
/// to: the criteria once, every column's vectors in one payload. All
/// columns must share one dimension (the caller checks). Public so the
/// round-trip can be property-tested against the frame codec.
pub fn wire_batch_request(query: &Query, columns: &[&VectorStore]) -> Request {
    let dim = columns.first().map_or(0, |c| c.dim()) as u32;
    let mode = match query.mode {
        QueryMode::Threshold(t) => BatchMode::Search(t),
        QueryMode::Topk(k) => BatchMode::Topk(k as u64),
    };
    Request::Batch(QueryBatch {
        metric: query.metric.clone().unwrap_or_default(),
        tau: query.tau,
        policy: query.policy,
        mode,
        dim,
        columns: columns.iter().map(|c| c.raw_data().to_vec()).collect(),
        ext: Some(wire_ext(query)),
        trace: query.trace,
        request_id: query.request_id,
    })
}

/// Serve-side facts accompanying a remote [`QueryResponse`]: which
/// snapshot generation answered and whether the result cache did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteMeta {
    pub generation: u64,
    pub cached: bool,
}

/// Idle connections kept per daemon address when the caller doesn't ask
/// for a different bound — enough for a router's per-shard fan-out to
/// reuse warm streams across a query burst without hoarding sockets.
pub const DEFAULT_POOL_CAPACITY: usize = 4;

/// One logical client for a `pexeso serve` daemon, backed by a small
/// pool of TCP connections.
///
/// Concurrent `&self` calls each check a stream out of the idle pool
/// (connecting a fresh one when it is empty), so a scatter-gather caller
/// issuing N requests at once pays N× TCP setup only on the *first*
/// burst; afterwards the streams are reused. The pool keeps at most
/// [`DEFAULT_POOL_CAPACITY`] idle streams (see
/// [`ServeClient::connect_with_capacity`]) — extras are closed on
/// check-in.
///
/// A stream is discarded instead of returned whenever it can no longer
/// be trusted: any failure to read a *whole* reply (timeout mid-frame,
/// transport error, hang-up) poisons it, because a late reply arriving
/// on a reused stream would answer the wrong request. The failing call
/// surfaces a typed error ([`ClientError::Desynced`] when bytes may
/// still be in flight) and the next call transparently reconnects to
/// the remembered address.
pub struct ServeClient {
    addr: SocketAddr,
    /// Idle, trusted streams; a roundtrip pops one (or connects) and
    /// pushes it back only after reading a whole reply on it.
    pool: Mutex<Vec<TcpStream>>,
    pool_capacity: usize,
    /// Remembered so reconnects inherit the caller's timeout.
    timeout: Mutex<Option<Duration>>,
}

impl ServeClient {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with_capacity(addr, DEFAULT_POOL_CAPACITY)
    }

    /// Connect with an explicit idle-pool bound (`0` keeps no idle
    /// streams: every request opens and closes its own connection). One
    /// stream is established eagerly so an unreachable daemon fails
    /// here, not on the first query.
    pub fn connect_with_capacity(
        addr: impl ToSocketAddrs,
        pool_capacity: usize,
    ) -> std::io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            addr,
            pool: Mutex::new(if pool_capacity > 0 {
                vec![stream]
            } else {
                Vec::new()
            }),
            pool_capacity,
            timeout: Mutex::new(None),
        })
    }

    /// The daemon address this client (re)connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Idle streams currently pooled (diagnostics; races with use).
    pub fn idle_connections(&self) -> usize {
        self.pool.lock().expect("client pool poisoned").len()
    }

    /// Bound how long any single reply may take. Applies to every pooled
    /// connection and every future reconnect.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        *self.timeout.lock().expect("client timeout poisoned") = timeout;
        for stream in self.pool.lock().expect("client pool poisoned").iter() {
            stream.set_read_timeout(timeout)?;
            stream.set_write_timeout(timeout)?;
        }
        Ok(())
    }

    fn reconnect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        let timeout = *self.timeout.lock().expect("client timeout poisoned");
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        Ok(stream)
    }

    /// Pop an idle stream or dial a fresh one.
    fn checkout(&self) -> std::io::Result<TcpStream> {
        if let Some(stream) = self.pool.lock().expect("client pool poisoned").pop() {
            return Ok(stream);
        }
        self.reconnect()
    }

    /// Return a still-trusted stream to the idle pool; beyond the bound
    /// it is simply closed.
    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.pool.lock().expect("client pool poisoned");
        if pool.len() < self.pool_capacity {
            pool.push(stream);
        }
    }

    fn roundtrip(&self, req: &Request) -> ClientResult<Reply> {
        let mut stream = self.checkout()?;
        // A rejected connection gets one BUSY/SHED frame and a hang-up
        // *before* we ever write; the write then fails with a broken pipe
        // while the rejection frame sits in our receive buffer. On write
        // failure, drain that pending reply instead of surfacing the
        // pipe error. (A pooled stream the server closed while idle fails
        // the same way and surfaces `Disconnected`, which retry-capable
        // callers treat as transient.)
        let write_err = write_frame(&mut stream, &encode_request(req)).err();
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => {
                // Clean hang-up before any reply byte: the stream is
                // dead but carries nothing late; drop it, the next call
                // checks out another.
                return Err(write_err
                    .map(ClientError::Io)
                    .unwrap_or(ClientError::Disconnected));
            }
            Err(e) => {
                // The reply failed to arrive whole. Crucially this
                // includes a read *timeout* mid-frame: the server may
                // still deliver the rest later, so reusing this stream
                // would desync every subsequent exchange. Poison it
                // (drop, never check in) and name the state.
                return Err(write_err.map(ClientError::Io).unwrap_or_else(|| match e {
                    WireError::Io(io) => ClientError::Desynced(io.to_string()),
                    WireError::Malformed(msg) => ClientError::Desynced(msg),
                }));
            }
        };
        match decode_reply(&payload)? {
            // A rejection is always followed by a server hang-up; drop
            // the stream now so the next call dials fresh instead of
            // tripping over the closed socket first.
            Reply::Busy => Err(ClientError::Busy),
            Reply::Shed => Err(ClientError::Shed),
            // A typed server error still leaves the stream synchronized
            // (one request, one whole reply): reuse it.
            Reply::Err { message } => {
                self.checkin(stream);
                Err(ClientError::Server(message))
            }
            reply => {
                self.checkin(stream);
                Ok(reply)
            }
        }
    }

    pub fn info(&self) -> ClientResult<InfoReply> {
        match self.roundtrip(&Request::Info)? {
            Reply::Info(info) => Ok(info),
            other => Err(unexpected("INFO", &other)),
        }
    }

    /// Raw threshold search over an explicit wire payload. The unified
    /// path is [`Queryable::execute`]; this is the protocol-level escape
    /// hatch (and what the V1-compat tests drive).
    pub fn search(&self, query: QueryPayload, t: JoinThreshold) -> ClientResult<HitsReply> {
        match self.roundtrip(&Request::Search { query, t })? {
            Reply::Hits(hits) => Ok(hits),
            other => Err(unexpected("SEARCH", &other)),
        }
    }

    /// Raw top-k search over an explicit wire payload; named to match the
    /// core `search_topk` verb. See [`ServeClient::search`].
    pub fn search_topk(&self, query: QueryPayload, k: u64) -> ClientResult<HitsReply> {
        match self.roundtrip(&Request::Topk { query, k })? {
            Reply::Hits(hits) => Ok(hits),
            other => Err(unexpected("TOPK", &other)),
        }
    }

    /// Old name of [`ServeClient::search_topk`].
    #[deprecated(note = "renamed to `search_topk` to match the core verbs")]
    pub fn topk(&self, query: QueryPayload, k: u64) -> ClientResult<HitsReply> {
        self.search_topk(query, k)
    }

    /// Execute a unified [`Query`] remotely and also return the serve-side
    /// metadata (snapshot generation, cache hit). [`Queryable::execute`]
    /// is this minus the metadata.
    pub fn execute_detailed(
        &self,
        query: &Query,
        vectors: &VectorStore,
    ) -> ClientResult<(QueryResponse, RemoteMeta)> {
        let reply = match self.roundtrip(&wire_request(query, vectors))? {
            Reply::Hits(hits) => hits,
            // The deadline elapsed in the server's queue: the same typed
            // partial outcome a local backend reports when its deadline
            // trips before any work — empty hits, `Exceeded(Deadline)`.
            Reply::DeadlineExpired { .. } => {
                return Ok((
                    QueryResponse {
                        hits: Vec::new(),
                        stats: SearchStats::new(),
                        outcome: QueryOutcome::Exceeded(Exceeded::Deadline),
                        trace: None,
                        explain: None,
                    },
                    RemoteMeta {
                        generation: 0,
                        cached: false,
                    },
                ))
            }
            other => return Err(unexpected("SEARCH/TOPK", &other)),
        };
        unwrap_hits_reply(reply)
    }

    /// Execute one unified [`Query`] over many columns in a single
    /// request frame (the V4 batch verb) and return each column's
    /// response plus its serve-side metadata.
    /// [`Queryable::execute_many`] is this minus the metadata.
    pub fn execute_many_detailed(
        &self,
        query: &Query,
        columns: &[&VectorStore],
    ) -> ClientResult<Vec<(QueryResponse, RemoteMeta)>> {
        if columns.is_empty() {
            return Ok(Vec::new());
        }
        let replies = match self.roundtrip(&wire_batch_request(query, columns))? {
            Reply::HitsBatch(replies) => replies,
            // The whole frame expired in the server's queue; every column
            // gets the typed partial outcome a solo frame would.
            Reply::DeadlineExpired { .. } => {
                return Ok(columns
                    .iter()
                    .map(|_| {
                        (
                            QueryResponse {
                                hits: Vec::new(),
                                stats: SearchStats::new(),
                                outcome: QueryOutcome::Exceeded(Exceeded::Deadline),
                                trace: None,
                                explain: None,
                            },
                            RemoteMeta {
                                generation: 0,
                                cached: false,
                            },
                        )
                    })
                    .collect())
            }
            other => return Err(unexpected("BATCH", &other)),
        };
        if replies.len() != columns.len() {
            return Err(ClientError::Protocol(format!(
                "batch reply carries {} entries for {} columns",
                replies.len(),
                columns.len()
            )));
        }
        replies.into_iter().map(unwrap_hits_reply).collect()
    }

    /// The raw `key=value` stats body (see
    /// [`crate::metrics::stat_value`] for parsing single entries).
    pub fn stats_text(&self) -> ClientResult<String> {
        match self.roundtrip(&Request::Stats)? {
            Reply::Stats { text } => Ok(text),
            other => Err(unexpected("STATS", &other)),
        }
    }

    /// The Prometheus text-format exposition (the V5 `METRICS` verb).
    /// Validates with [`crate::metrics::validate_prometheus`].
    pub fn metrics_text(&self) -> ClientResult<String> {
        match self.roundtrip(&Request::Metrics)? {
            Reply::Stats { text } => Ok(text),
            other => Err(unexpected("METRICS", &other)),
        }
    }

    /// The slow-query log: the slowest traced requests the daemon has
    /// seen, slowest first, each with its rendered phase tree (the V5
    /// `SLOW` verb). Empty until a traced or sampled query lands.
    pub fn slow_log_text(&self) -> ClientResult<String> {
        match self.roundtrip(&Request::SlowLog)? {
            Reply::Stats { text } => Ok(text),
            other => Err(unexpected("SLOW", &other)),
        }
    }

    /// Index introspection: per-partition column/vector counts, postings
    /// and cell-occupancy histograms, pivot spread, and delta-overlay
    /// depth as `key=value` text (the V6 `INSPECT` verb). A router
    /// answers with every shard's report, keys prefixed `shardN.`.
    pub fn inspect_text(&self) -> ClientResult<String> {
        match self.roundtrip(&Request::Inspect)? {
            Reply::Stats { text } => Ok(text),
            other => Err(unexpected("INSPECT", &other)),
        }
    }

    /// Liveness/readiness summary as `key=value` text (the V6 `HEALTH`
    /// verb): `status=ready|degraded|draining` plus supporting detail. A
    /// router rolls every shard's replica set into one fleet answer.
    pub fn health_text(&self) -> ClientResult<String> {
        match self.roundtrip(&Request::Health)? {
            Reply::Stats { text } => Ok(text),
            other => Err(unexpected("HEALTH", &other)),
        }
    }

    /// Mark a replica drained (`true`) or back in rotation (`false`) on a
    /// router (the V6 `DRAIN` verb). Returns the router's confirmation
    /// text; shard daemons reject the verb.
    pub fn drain(&self, addr: &str, drained: bool) -> ClientResult<String> {
        match self.roundtrip(&Request::Drain {
            addr: addr.to_string(),
            drained,
        })? {
            Reply::Stats { text } => Ok(text),
            other => Err(unexpected("DRAIN", &other)),
        }
    }

    /// Publish a new generation from the served directory's delta log
    /// without reloading the base snapshot (the V3 live-ingest verb).
    /// Returns (new generation, live delta columns, tombstoned tables).
    pub fn apply_delta(&self) -> ClientResult<(u64, u64, u64)> {
        self.apply_delta_shard(None)
    }

    /// Routed live ingest: the V5 form of APPLY that names the shard
    /// whose replicas should apply their delta log. Meaningful when the
    /// peer is a router (a shard daemon ignores the tail); `None` sends
    /// the historical bare V3 frame.
    pub fn apply_delta_shard(&self, shard: Option<u32>) -> ClientResult<(u64, u64, u64)> {
        match self.roundtrip(&Request::ApplyDelta { shard })? {
            Reply::Applied {
                generation,
                delta_columns,
                tombstones,
            } => Ok((generation, delta_columns, tombstones)),
            other => Err(unexpected("APPLY", &other)),
        }
    }

    /// Hot-swap the served snapshot; `dir = None` re-opens the current
    /// directory. Returns (new generation, partition count).
    pub fn reload(&self, dir: Option<&Path>) -> ClientResult<(u64, u32)> {
        let dir = dir.map(|p| p.to_string_lossy().into_owned());
        match self.roundtrip(&Request::Reload { dir })? {
            Reply::Reloaded {
                generation,
                partitions,
            } => Ok((generation, partitions)),
            other => Err(unexpected("RELOAD", &other)),
        }
    }

    pub fn shutdown(&self) -> ClientResult<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            other => Err(unexpected("SHUTDOWN", &other)),
        }
    }
}

/// The remote backend: a unified [`Query`] answered by a `pexeso serve`
/// daemon, byte-identical to the same query against the served deployment
/// locally (pinned by `tests/query_api.rs` at the workspace root).
impl Queryable for ServeClient {
    fn execute(
        &self,
        query: &Query,
        vectors: &VectorStore,
    ) -> pexeso_core::error::Result<QueryResponse> {
        let (resp, _meta) = self.execute_detailed(query, vectors)?;
        // The server reports Exact for every uncapped query; trust but
        // keep the type honest if a budget was set and tripped remotely.
        debug_assert!(query.budget.is_limited() || resp.outcome == QueryOutcome::Exact);
        Ok(resp)
    }

    /// One request frame for the whole batch instead of N round-trips.
    /// Results are byte-identical to per-column [`Queryable::execute`]
    /// (the server answers each column independently over one pinned
    /// snapshot).
    fn execute_many(
        &self,
        query: &Query,
        columns: &[&VectorStore],
    ) -> pexeso_core::error::Result<Vec<QueryResponse>> {
        // Mixed-dimension batches cannot share one frame; fall back to
        // the solo path so each column still gets its own typed error or
        // answer, exactly as the default impl would produce.
        let dim = columns.first().map(|c| c.dim());
        if columns.iter().any(|c| Some(c.dim()) != dim) {
            return columns.iter().map(|c| self.execute(query, c)).collect();
        }
        Ok(self
            .execute_many_detailed(query, columns)?
            .into_iter()
            .map(|(resp, _meta)| resp)
            .collect())
    }
}

/// Convert one wire `HITS` entry into the unified response + metadata.
fn unwrap_hits_reply(reply: HitsReply) -> ClientResult<(QueryResponse, RemoteMeta)> {
    let meta = RemoteMeta {
        generation: reply.generation,
        cached: reply.cached,
    };
    let ext = reply.ext.ok_or_else(|| {
        ClientError::Protocol("server answered a V2 request without the reply extension".into())
    })?;
    let hits = reply
        .hits
        .into_iter()
        .map(|h| GlobalHit {
            external_id: h.external_id,
            table_name: h.table_name,
            column_name: h.column_name,
            match_count: h.match_count,
        })
        .collect();
    let mut stats = SearchStats {
        distance_computations: ext.distance_computations,
        ..SearchStats::new()
    };
    // A requested trace doubles as the wire carrier for the per-phase
    // timings: rehydrate the `SearchStats` phase durations from the
    // server's span tree so client-side consumers (Table VI tooling)
    // see the same breakdown a local backend reports.
    if let Some(trace) = &reply.trace {
        let phase = |name: &str| trace.find(name).map(|s| s.duration()).unwrap_or_default();
        stats.mapping_time = phase("map");
        stats.block_time = phase("block");
        stats.verify_time = phase("verify");
        stats.total_time = trace.root.duration();
    }
    Ok((
        QueryResponse {
            hits,
            stats,
            outcome: ext.outcome,
            trace: reply.trace,
            explain: reply.explain.map(|report| *report),
        },
        meta,
    ))
}

fn unexpected(verb: &str, reply: &Reply) -> ClientError {
    ClientError::Protocol(format!("unexpected reply to {verb}: {reply:?}"))
}
