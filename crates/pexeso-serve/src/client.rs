//! Synchronous client for the `pexeso serve` protocol.
//!
//! One [`ServeClient`] wraps one TCP connection and can issue any number
//! of requests sequentially. The server's explicit backpressure surfaces
//! as [`ClientError::Busy`] so callers can retry elsewhere or back off.

use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::Duration;

use pexeso_core::config::{ExecPolicy, JoinThreshold, Tau};
use pexeso_core::vector::VectorStore;

use crate::protocol::{
    decode_reply, encode_request, read_frame, write_frame, HitsReply, InfoReply, QueryPayload,
    Reply, Request, WireError,
};

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect/read/write).
    Io(std::io::Error),
    /// The server rejected the connection under load; retry later.
    Busy,
    /// The server processed the request and answered with an error.
    Server(String),
    /// The reply violated the protocol (or the connection died mid-frame).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Busy => write!(f, "server busy; retry later"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            WireError::Malformed(msg) => ClientError::Protocol(msg),
        }
    }
}

type ClientResult<T> = std::result::Result<T, ClientError>;

/// Build the query half of a request from an embedded column.
pub fn query_payload(
    metric: &str,
    tau: Tau,
    policy: ExecPolicy,
    store: &VectorStore,
) -> QueryPayload {
    QueryPayload {
        metric: metric.to_string(),
        tau,
        policy,
        dim: store.dim() as u32,
        vectors: store.raw_data().to_vec(),
    }
}

/// One connection to a `pexeso serve` daemon.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Bound how long any single reply may take.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    fn roundtrip(&mut self, req: &Request) -> ClientResult<Reply> {
        // A rejected connection gets one BUSY frame and a hang-up *before*
        // we ever write; the write then fails with a broken pipe while the
        // BUSY frame sits in our receive buffer. On write failure, drain
        // that pending reply instead of surfacing the pipe error.
        let write_err = write_frame(&mut self.stream, &encode_request(req)).err();
        let payload = match read_frame(&mut self.stream) {
            Ok(Some(p)) => p,
            Ok(None) => {
                return Err(write_err.map(ClientError::Io).unwrap_or_else(|| {
                    ClientError::Protocol("connection closed before reply".into())
                }))
            }
            Err(e) => {
                return Err(write_err.map(ClientError::Io).unwrap_or_else(|| e.into()));
            }
        };
        match decode_reply(&payload)? {
            Reply::Busy => Err(ClientError::Busy),
            Reply::Err { message } => Err(ClientError::Server(message)),
            reply => Ok(reply),
        }
    }

    pub fn info(&mut self) -> ClientResult<InfoReply> {
        match self.roundtrip(&Request::Info)? {
            Reply::Info(info) => Ok(info),
            other => Err(unexpected("INFO", &other)),
        }
    }

    pub fn search(&mut self, query: QueryPayload, t: JoinThreshold) -> ClientResult<HitsReply> {
        match self.roundtrip(&Request::Search { query, t })? {
            Reply::Hits(hits) => Ok(hits),
            other => Err(unexpected("SEARCH", &other)),
        }
    }

    pub fn topk(&mut self, query: QueryPayload, k: u64) -> ClientResult<HitsReply> {
        match self.roundtrip(&Request::Topk { query, k })? {
            Reply::Hits(hits) => Ok(hits),
            other => Err(unexpected("TOPK", &other)),
        }
    }

    /// The raw `key=value` stats body (see
    /// [`crate::metrics::stat_value`] for parsing single entries).
    pub fn stats_text(&mut self) -> ClientResult<String> {
        match self.roundtrip(&Request::Stats)? {
            Reply::Stats { text } => Ok(text),
            other => Err(unexpected("STATS", &other)),
        }
    }

    /// Hot-swap the served snapshot; `dir = None` re-opens the current
    /// directory. Returns (new generation, partition count).
    pub fn reload(&mut self, dir: Option<&Path>) -> ClientResult<(u64, u32)> {
        let dir = dir.map(|p| p.to_string_lossy().into_owned());
        match self.roundtrip(&Request::Reload { dir })? {
            Reply::Reloaded {
                generation,
                partitions,
            } => Ok((generation, partitions)),
            other => Err(unexpected("RELOAD", &other)),
        }
    }

    pub fn shutdown(&mut self) -> ClientResult<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            other => Err(unexpected("SHUTDOWN", &other)),
        }
    }
}

fn unexpected(verb: &str, reply: &Reply) -> ClientError {
    ClientError::Protocol(format!("unexpected reply to {verb}: {reply:?}"))
}
