//! The serving daemon: listener, worker pool, dispatch.
//!
//! One acceptor thread owns the listening socket and feeds accepted
//! connections into a bounded queue; a fixed pool of worker threads pops
//! connections and serves request frames until the peer closes. When the
//! queue is full the acceptor answers the connection with a single BUSY
//! frame and drops it — explicit backpressure instead of unbounded
//! queueing, so a traffic spike degrades into fast rejections rather than
//! ballooning latency for everyone.
//!
//! Each query request grabs the current [`crate::snapshot::Snapshot`] `Arc` once and uses
//! it end-to-end; a concurrent `RELOAD` hot-swaps the cell without
//! touching in-flight queries (they finish on the old snapshot, new
//! arrivals see the new generation). Served results are memoised in the
//! sharded result cache, keyed on the query fingerprint + snapshot
//! generation and cleared wholesale on swap.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pexeso_core::config::ExecPolicy;
use pexeso_core::error::Result;
use pexeso_core::fault;
use pexeso_core::inspect::IndexInspection;
use pexeso_core::log::{self as plog, LogLevel, Value};
use pexeso_core::query::{Query, QueryBudget, QueryMode, QueryOutcome, Queryable};
use pexeso_core::vector::VectorStore;

use pexeso_core::trace::TraceLevel;

use crate::cache::ShardedCache;
use crate::metrics::{EndpointMetrics, ServerMetrics, SlowQueryLog, SnapshotFacts};
use crate::protocol::{
    decode_request, encode_reply, query_fingerprint, read_frame, write_frame, BatchMode, HitsExt,
    HitsReply, InfoReply, QueryBatch, QueryPayload, Reply, Request, WireHit,
};
use crate::snapshot::{Snapshot, SnapshotCell};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Accepted connections waiting for a worker before BUSY kicks in.
    pub queue_capacity: usize,
    /// Total result-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Result-cache shards.
    pub cache_shards: usize,
    /// Per-connection read timeout; an idle or wedged peer releases its
    /// worker after this long.
    pub read_timeout: Option<Duration>,
    /// Ceiling on the per-request `ExecPolicy` thread count.
    pub max_request_threads: usize,
    /// Soft queue watermark: when the connection queue reaches this
    /// length, every other new connection is shed with a typed
    /// [`Reply::Shed`] — degradation begins *before* the hard
    /// `queue_capacity` limit turns everyone away with BUSY. `None`
    /// disables early shedding (hard limit only).
    pub queue_soft_watermark: Option<usize>,
    /// Write timeout for the one-frame BUSY/SHED rejection on the
    /// acceptor thread. A slow-reading (or malicious) rejected peer must
    /// not stall all accepts behind its receive window.
    pub reject_write_timeout: Duration,
    /// Fraction of *untraced* search/topk requests the server traces on
    /// its own initiative to feed the slow-query log (`0.0` = never,
    /// `1.0` = every one). Sampling is a deterministic 1-in-N counter,
    /// not a coin flip, so a test at rate 1.0 sees every request and a
    /// production daemon at 0.01 pays the trace cost on exactly one
    /// request in a hundred. Client-requested traces are always honoured
    /// regardless of this rate.
    pub metrics_sample_rate: f64,
    /// Slowest-N capacity of the slow-query log dumped by the `SLOW`
    /// verb (0 disables the log).
    pub slow_log_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 4096,
            cache_shards: 8,
            read_timeout: Some(Duration::from_secs(30)),
            max_request_threads: 16,
            queue_soft_watermark: None,
            reject_write_timeout: Duration::from_millis(100),
            metrics_sample_rate: 0.0,
            slow_log_capacity: 8,
        }
    }
}

/// The 1-in-N sampling stride a rate maps to: `0` = never, else trace
/// every `N`-th untraced request.
fn sample_stride(rate: f64) -> u64 {
    if rate.is_nan() || rate <= 0.0 {
        0
    } else if rate >= 1.0 {
        1
    } else {
        (1.0 / rate).round() as u64
    }
}

/// One accepted connection waiting for a worker, stamped with its accept
/// time so queue wait can be charged against the request's deadline.
struct QueuedConn {
    stream: TcpStream,
    accepted_at: Instant,
}

struct Shared {
    snapshot: SnapshotCell,
    cache: ShardedCache<Arc<Vec<WireHit>>>,
    metrics: ServerMetrics,
    config: ServeConfig,
    queue: Mutex<VecDeque<QueuedConn>>,
    queue_cv: Condvar,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    /// Accept-sequence counter inside the soft-watermark band, driving
    /// the deterministic every-other shed.
    shed_seq: AtomicU64,
    /// Slowest sampled/traced requests with their phase trees.
    slow_log: SlowQueryLog,
    /// Untraced-request counter driving the deterministic 1-in-N trace
    /// sampler (`sample_stride` of the configured rate; 0 = off).
    sample_seq: AtomicU64,
    sample_every: u64,
    /// Every connection currently owned by a worker, keyed by an
    /// arbitrary id. Shutdown closes these sockets directly so an idle
    /// keep-alive peer (e.g. a router's pooled connection) cannot hold
    /// a worker hostage for a full `read_timeout`.
    live_conns: Mutex<HashMap<u64, TcpStream>>,
    conn_seq: AtomicU64,
    /// The `INSPECT` walk is a full pass over every resident partition;
    /// memoise it per generation so repeated scrapes (text verb and the
    /// Prometheus gauges) pay it once per publish.
    inspection: Mutex<Option<(u64, Arc<IndexInspection>)>>,
}

/// The memoised structural statistics of the snapshot's generation,
/// computing (and caching) them on first use after a publish.
fn inspection_of(shared: &Shared, snap: &Arc<Snapshot>) -> Arc<IndexInspection> {
    let mut slot = shared.inspection.lock().expect("inspection cache poisoned");
    if let Some((generation, insp)) = slot.as_ref() {
        if *generation == snap.generation() {
            return insp.clone();
        }
    }
    let insp = Arc::new(snap.inspect());
    *slot = Some((snap.generation(), insp.clone()));
    insp
}

/// The daemon entry point.
pub struct Server;

impl Server {
    /// Open `index_dir` as the first snapshot, bind `addr` (use port 0 for
    /// an ephemeral test port), and spawn the acceptor + worker threads.
    pub fn start(
        index_dir: &Path,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> Result<ServerHandle> {
        let snapshot = SnapshotCell::open(index_dir)?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
            metrics: ServerMetrics::default(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            addr: local_addr,
            shed_seq: AtomicU64::new(0),
            slow_log: SlowQueryLog::new(config.slow_log_capacity),
            sample_seq: AtomicU64::new(0),
            sample_every: sample_stride(config.metrics_sample_rate),
            live_conns: Mutex::new(HashMap::new()),
            conn_seq: AtomicU64::new(0),
            inspection: Mutex::new(None),
            snapshot,
            config,
        });

        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = shared.clone();
            threads.push(std::thread::spawn(move || accept_loop(listener, &shared)));
        }
        for _ in 0..workers {
            let shared = shared.clone();
            threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        Ok(ServerHandle {
            addr: local_addr,
            threads,
            shared,
        })
    }
}

/// A running daemon: its address plus the thread handles to join.
pub struct ServerHandle {
    addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiate shutdown (idempotent) and join every server thread.
    /// In-flight connections finish their current request; queued
    /// connections are still served before workers exit.
    pub fn shutdown(mut self) {
        initiate_shutdown(&self.shared);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Block until the server shuts down via a protocol `SHUTDOWN`.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn initiate_shutdown(shared: &Shared) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    shared.queue_cv.notify_all();
    // The acceptor is parked in `accept`; poke it with a throwaway
    // connection so it observes the flag.
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_secs(1));
    // Workers parked in `read_frame` on idle keep-alive connections
    // would otherwise only notice the flag after `read_timeout`; close
    // the sockets out from under them so they return immediately.
    for conn in shared
        .live_conns
        .lock()
        .expect("conn registry poisoned")
        .values()
    {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
}

/// RAII registration of a worker-owned connection in the shutdown
/// registry; deregisters on every exit path out of `handle_connection`.
struct ConnRegistration<'a> {
    shared: &'a Shared,
    id: u64,
}

impl Drop for ConnRegistration<'_> {
    fn drop(&mut self) {
        if let Ok(mut conns) = self.shared.live_conns.lock() {
            conns.remove(&self.id);
        }
    }
}

fn register_conn<'a>(shared: &'a Shared, stream: &TcpStream) -> Option<ConnRegistration<'a>> {
    let clone = stream.try_clone().ok()?;
    let id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
    shared
        .live_conns
        .lock()
        .expect("conn registry poisoned")
        .insert(id, clone);
    Some(ConnRegistration { shared, id })
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let accepted_at = Instant::now();
        let mut queue = shared.queue.lock().expect("connection queue poisoned");
        let len = queue.len();
        if len >= shared.config.queue_capacity {
            drop(queue);
            // Explicit backpressure: one BUSY frame, then hang up.
            shared
                .metrics
                .busy_rejections
                .fetch_add(1, Ordering::Relaxed);
            plog::log(
                LogLevel::Warn,
                "serve",
                "busy_rejected",
                &[("queue_depth", (len as u64).into())],
            );
            reject(shared, stream, &Reply::Busy);
        } else if shared
            .config
            .queue_soft_watermark
            .is_some_and(|soft| len >= soft)
            // Deterministic every-other shed inside the soft band: half
            // the arrivals are turned away early (so retry-capable
            // clients back off before saturation), the other half still
            // queue — the queue can reach the hard limit under sustained
            // load, keeping BUSY reachable and the shed rate bounded.
            && shared
                .shed_seq
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(2)
        {
            drop(queue);
            shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
            plog::log(
                LogLevel::Warn,
                "serve",
                "load_shed",
                &[("queue_depth", (len as u64).into())],
            );
            reject(shared, stream, &Reply::Shed);
        } else {
            queue.push_back(QueuedConn {
                stream,
                accepted_at,
            });
            drop(queue);
            shared.queue_cv.notify_one();
        }
    }
    // Unblock any workers still parked on the queue.
    shared.queue_cv.notify_all();
}

/// Answer a rejected connection with one frame, bounded by the rejection
/// write timeout: this runs on the acceptor thread, and a peer that
/// never drains its receive buffer must not stall every accept behind
/// it. A timed-out (or otherwise failed) write just drops the
/// connection — the peer sees a hang-up, which it must treat as
/// retryable anyway.
fn reject(shared: &Shared, mut stream: TcpStream, reply: &Reply) {
    let _ = stream.set_write_timeout(Some(shared.config.reject_write_timeout));
    let _ = write_frame(&mut stream, &encode_reply(reply));
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = shared.queue.lock().expect("connection queue poisoned");
            loop {
                if let Some(c) = queue.pop_front() {
                    break Some(c);
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .expect("connection queue poisoned");
            }
        };
        match conn {
            Some(conn) => handle_connection(shared, conn),
            None => break,
        }
    }
}

fn handle_connection(shared: &Shared, conn: QueuedConn) {
    let QueuedConn {
        mut stream,
        accepted_at,
    } = conn;
    let _ = stream.set_read_timeout(shared.config.read_timeout);
    let _ = stream.set_nodelay(true);
    let _registration = register_conn(shared, &stream);
    // The first request on a connection waited in the accept queue; that
    // wait is charged against its deadline. Later requests on the same
    // (interactive) connection never queued.
    let mut queue_wait = Some(accepted_at.elapsed());
    loop {
        // Dev-only fault point: delay models a wedged server socket, an
        // injected error a connection torn mid-stream.
        if fault::check("serve.conn.read").is_err() {
            return;
        }
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            // Clean close, read timeout, or garbage framing: hang up.
            Ok(None) | Err(_) => return,
        };
        match decode_request(&payload) {
            Ok(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                let reply = dispatch(shared, req, queue_wait.take());
                if fault::check("serve.conn.write").is_err() {
                    return;
                }
                if write_frame(&mut stream, &encode_reply(&reply)).is_err() {
                    return;
                }
                if is_shutdown {
                    initiate_shutdown(shared);
                    return;
                }
                // A shutdown initiated elsewhere must not be held open by
                // a chatty keep-alive peer: finish the current request,
                // then close instead of reading the next frame.
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) => {
                let reply = Reply::Err {
                    message: format!("bad request: {e}"),
                };
                let _ = write_frame(&mut stream, &encode_reply(&reply));
                return; // a peer speaking garbage gets one error, not a loop
            }
        }
    }
}

fn dispatch(shared: &Shared, req: Request, queue_wait: Option<Duration>) -> Reply {
    let started = Instant::now();
    match req {
        Request::Info => {
            let snap = shared.snapshot.current();
            let reply = match snap.lake().disk_bytes() {
                Ok(disk_bytes) => Reply::Info(InfoReply {
                    dim: snap.dim() as u32,
                    generation: snap.generation(),
                    index_version: snap.manifest().index_version,
                    partitions: snap.lake().num_partitions() as u32,
                    disk_bytes,
                }),
                Err(e) => error_reply(&shared.metrics.info, e.to_string()),
            };
            shared.metrics.info.record(started.elapsed());
            reply
        }
        Request::Stats => {
            let snap = shared.snapshot.current();
            let text = shared.metrics.render(
                &shared.cache.stats(),
                &SnapshotFacts {
                    generation: snap.generation(),
                    index_version: snap.manifest().index_version,
                    partitions: snap.lake().num_partitions(),
                    dim: snap.dim(),
                    delta_columns: snap.delta_columns(),
                    delta_tombstones: snap.delta_tombstones(),
                    delta_records: snap.overlay().n_records(),
                },
            );
            shared.metrics.stats.record(started.elapsed());
            Reply::Stats { text }
        }
        Request::Metrics => {
            let snap = shared.snapshot.current();
            let mut text = shared.metrics.render_prometheus(
                &shared.cache.stats(),
                &SnapshotFacts {
                    generation: snap.generation(),
                    index_version: snap.manifest().index_version,
                    partitions: snap.lake().num_partitions(),
                    dim: snap.dim(),
                    delta_columns: snap.delta_columns(),
                    delta_tombstones: snap.delta_tombstones(),
                    delta_records: snap.overlay().n_records(),
                },
            );
            // The introspection plane rides the same scrape: structural
            // index gauges + cell-shape histograms per generation.
            text.push_str(&crate::metrics::render_inspection_prometheus(
                &inspection_of(shared, &snap),
            ));
            shared.metrics.stats.record(started.elapsed());
            Reply::Stats { text }
        }
        Request::Inspect => {
            let snap = shared.snapshot.current();
            let mut text = format!("generation={}\n", snap.generation());
            text.push_str(&inspection_of(shared, &snap).render_text());
            shared.metrics.stats.record(started.elapsed());
            Reply::Stats { text }
        }
        Request::Health => {
            let snap = shared.snapshot.current();
            let text = render_health(shared, &snap);
            shared.metrics.stats.record(started.elapsed());
            Reply::Stats { text }
        }
        // A shard daemon owns no replica set; draining happens at the
        // router tier (which rewrites its routing table) or by simply
        // shutting the daemon down.
        Request::Drain { .. } => Reply::Err {
            message: "DRAIN is a router verb; a shard daemon has no replica set".into(),
        },
        Request::SlowLog => {
            let text = shared.slow_log.render();
            shared.metrics.stats.record(started.elapsed());
            Reply::Stats { text }
        }
        Request::Reload { dir } => {
            let target: Option<PathBuf> = dir.map(PathBuf::from);
            let reply = match shared.snapshot.swap(target.as_deref()) {
                Ok(fresh) => {
                    // Every cached entry keyed the old generation; release
                    // the memory in one sweep.
                    shared.cache.clear();
                    shared.metrics.swaps.fetch_add(1, Ordering::Relaxed);
                    plog::log(
                        LogLevel::Info,
                        "serve",
                        "reloaded",
                        &[
                            ("generation", fresh.generation().into()),
                            ("partitions", (fresh.lake().num_partitions() as u64).into()),
                        ],
                    );
                    Reply::Reloaded {
                        generation: fresh.generation(),
                        partitions: fresh.lake().num_partitions() as u32,
                    }
                }
                // A failed load leaves the served snapshot untouched.
                Err(e) => {
                    let message = e.to_string();
                    plog::log(
                        LogLevel::Error,
                        "serve",
                        "reload_failed",
                        &[("error", Value::Str(&message))],
                    );
                    error_reply(&shared.metrics.reload, message)
                }
            };
            shared.metrics.reload.record(started.elapsed());
            reply
        }
        // The routed-ingest shard tail is addressing for the router tier;
        // a shard daemon owns exactly one deployment and applies it.
        Request::ApplyDelta { shard: _ } => {
            // Live ingest: republish from the delta log, sharing the
            // resident base. Cached entries keyed the old generation;
            // clear them so fresh queries see the new overlay. The fault
            // point arms a deterministic window for kill-mid-APPLY tests.
            let reply = match fault::check("serve.apply")
                .map_err(pexeso_core::error::PexesoError::Io)
                .and_then(|()| shared.snapshot.apply_delta())
            {
                Ok(fresh) => {
                    shared.cache.clear();
                    shared.metrics.applies.fetch_add(1, Ordering::Relaxed);
                    plog::log(
                        LogLevel::Info,
                        "serve",
                        "delta_applied",
                        &[
                            ("generation", fresh.generation().into()),
                            ("delta_columns", (fresh.delta_columns() as u64).into()),
                            ("tombstones", (fresh.delta_tombstones() as u64).into()),
                        ],
                    );
                    Reply::Applied {
                        generation: fresh.generation(),
                        delta_columns: fresh.delta_columns() as u64,
                        tombstones: fresh.delta_tombstones() as u64,
                    }
                }
                // A failed apply leaves the served snapshot untouched.
                Err(e) => {
                    let message = e.to_string();
                    plog::log(
                        LogLevel::Error,
                        "serve",
                        "apply_failed",
                        &[("error", Value::Str(&message))],
                    );
                    error_reply(&shared.metrics.apply, message)
                }
            };
            shared.metrics.apply.record(started.elapsed());
            reply
        }
        Request::Shutdown => {
            plog::log(LogLevel::Info, "serve", "shutdown_requested", &[]);
            Reply::ShuttingDown
        }
        Request::Search { .. } | Request::Topk { .. } => {
            handle_query(shared, req, started, queue_wait)
        }
        Request::Batch(batch) => handle_batch(shared, batch, started, queue_wait),
    }
}

fn error_reply(endpoint: &EndpointMetrics, message: String) -> Reply {
    endpoint.record_error();
    Reply::Err { message }
}

/// The `HEALTH` verb body: one `status=` line an orchestrator can gate
/// on, plus the facts behind the verdict. `draining` while a shutdown is
/// in flight, `degraded` when the accept queue has crossed the soft
/// shed watermark (new arrivals are already being turned away), `ready`
/// otherwise.
fn render_health(shared: &Shared, snap: &Arc<Snapshot>) -> String {
    let queue_depth = shared
        .queue
        .lock()
        .expect("connection queue poisoned")
        .len();
    let status = if shared.shutting_down.load(Ordering::SeqCst) {
        "draining"
    } else if shared
        .config
        .queue_soft_watermark
        .is_some_and(|soft| queue_depth >= soft)
    {
        "degraded"
    } else {
        "ready"
    };
    format!(
        "status={status}\ngeneration={}\npartitions={}\nqueue_depth={queue_depth}\n\
         queue_capacity={}\nworkers={}\n",
        snap.generation(),
        snap.lake().num_partitions(),
        shared.config.queue_capacity,
        shared.config.workers.max(1),
    )
}

fn handle_query(
    shared: &Shared,
    req: Request,
    started: Instant,
    queue_wait: Option<Duration>,
) -> Reply {
    let endpoint = match &req {
        Request::Search { .. } => &shared.metrics.search,
        _ => &shared.metrics.topk,
    };
    if let Some(wait) = queue_wait {
        shared.metrics.queue_wait.record_duration(wait);
    }
    // Queue wait counts against the request's deadline budget. A request
    // whose whole deadline elapsed before a worker popped it gets a
    // typed refusal immediately — computing (or even cache-serving) a
    // dead answer would hide the overload the deadline exists to expose.
    if let (Some(wait), Some(deadline)) = (queue_wait, request_deadline(&req)) {
        if wait >= deadline {
            shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
            endpoint.record(started.elapsed());
            let rid = match &req {
                Request::Search { query, .. } | Request::Topk { query, .. } => query.request_id,
                _ => None,
            };
            let mut fields: Vec<(&str, Value)> =
                vec![("waited_ms", (wait.as_millis() as u64).into())];
            if let Some(rid) = rid {
                fields.push(("rid", Value::Rid(rid)));
            }
            plog::log(
                LogLevel::Warn,
                "serve",
                "deadline_expired_in_queue",
                &fields,
            );
            return Reply::DeadlineExpired {
                waited_ms: wait.as_millis() as u64,
            };
        }
    }
    let reply = match run_query(shared, &req, queue_wait) {
        Ok(hits) => Reply::Hits(hits),
        Err(message) => error_reply(endpoint, message),
    };
    endpoint.record(started.elapsed());
    reply
}

/// The deadline a query request carried on the wire, if any.
fn request_deadline(req: &Request) -> Option<Duration> {
    let payload = match req {
        Request::Search { query, .. } | Request::Topk { query, .. } => query,
        _ => return None,
    };
    payload
        .ext
        .as_ref()
        .and_then(|ext| ext.deadline_ms)
        .map(Duration::from_millis)
}

fn run_query(
    shared: &Shared,
    req: &Request,
    queue_wait: Option<Duration>,
) -> std::result::Result<HitsReply, String> {
    // Pin the snapshot for the whole request: a concurrent hot swap must
    // never split one query across two index states.
    let snap = shared.snapshot.current();
    run_query_on(shared, &snap, req, queue_wait)
}

/// Answer one query verb against an already-pinned snapshot. Solo frames
/// pin per request; batch frames pin once and answer every column here.
fn run_query_on(
    shared: &Shared,
    snap: &Arc<Snapshot>,
    req: &Request,
    queue_wait: Option<Duration>,
) -> std::result::Result<HitsReply, String> {
    let (payload, mode) = match req {
        Request::Search { query, t } => (query, QueryMode::Threshold(*t)),
        Request::Topk { query, k } => (query, QueryMode::Topk(*k as usize)),
        _ => unreachable!("run_query only sees query verbs"),
    };
    // Requests carrying the V2 extension get the extended reply.
    let v2 = payload.ext.is_some();
    if payload.dim as usize != snap.dim() {
        return Err(format!(
            "query dimension {} does not match index dimension {}",
            payload.dim,
            snap.dim()
        ));
    }
    // A client-requested trace must describe *this* execution, so it
    // bypasses the result-cache read (untraced traffic is untouched, and
    // the executed result still populates the cache below); an EXPLAIN
    // request likewise — its funnel must describe a real execution, not
    // a memoised answer. Server-initiated sampling only traces requests
    // that would execute anyway — a sampled cache hit stays a cache hit.
    let requested = payload.trace;
    let fingerprint =
        query_fingerprint(req, snap.generation()).expect("query verbs always fingerprint");
    if !requested.enabled() && !payload.explain {
        let lookup_start = Instant::now();
        let cached = shared.cache.get(fingerprint);
        let hist = if cached.is_some() {
            &shared.metrics.cache_hit_lookup
        } else {
            &shared.metrics.cache_miss_lookup
        };
        hist.record_duration(lookup_start.elapsed());
        if let Some(hits) = cached {
            log_query_done(payload, mode, true, hits.len(), snap.generation(), 0);
            return Ok(HitsReply {
                generation: snap.generation(),
                cached: true,
                hits: (*hits).clone(),
                // Only exact results are cached, and the cache charges the
                // requester no verification work.
                ext: v2.then_some(HitsExt {
                    outcome: QueryOutcome::Exact,
                    distance_computations: 0,
                }),
                trace: None,
                explain: None,
            });
        }
    }
    let sampled = !requested.enabled()
        && shared.sample_every > 0
        && shared
            .sample_seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(shared.sample_every);
    let effective = if requested.enabled() {
        requested
    } else if sampled {
        TraceLevel::Phases
    } else {
        TraceLevel::Off
    };
    let store = VectorStore::from_raw(payload.dim as usize, payload.vectors.clone())
        .map_err(|e| e.to_string())?;
    // Reassemble the unified query the wire frame describes and hand it
    // to the snapshot's `Queryable` impl — the same executor every local
    // backend uses.
    let mut query = match mode {
        QueryMode::Threshold(t) => Query::threshold(payload.tau, t),
        QueryMode::Topk(k) => Query::topk(payload.tau, k),
    }
    .with_policy(clamp_policy(
        payload.policy,
        shared.config.max_request_threads,
    ));
    // An empty metric string spells "no expectation" (the V2 client's
    // encoding of `Query::metric = None`): serve with the build metric,
    // exactly like every local backend does.
    if !payload.metric.is_empty() {
        query = query.expect_metric(&payload.metric);
    }
    query = query.with_trace(effective).with_explain(payload.explain);
    if let Some(rid) = payload.request_id {
        query = query.with_request_id(rid);
    }
    if let Some(ext) = &payload.ext {
        query.options.flags = ext.flags;
        query.options.quick_browse = ext.quick_browse;
        query.budget = QueryBudget {
            max_distance_computations: ext.max_distance_computations,
            // Queue wait already spent part of the deadline; execution
            // gets only the remainder (the caller checked it is > 0).
            deadline: ext.deadline_ms.map(|ms| {
                let full = Duration::from_millis(ms);
                queue_wait.map_or(full, |w| full.saturating_sub(w))
            }),
        };
    }
    let resp = snap.execute(&query, &store).map_err(|e| e.to_string())?;
    shared
        .metrics
        .distance_computations
        .fetch_add(resp.stats.distance_computations, Ordering::Relaxed);
    // Phase histograms cover every executed search — the breakdown does
    // not depend on the request asking for a trace.
    shared.metrics.record_phases(&resp.stats);
    if effective.enabled() {
        let verb = match mode {
            QueryMode::Threshold(_) => "search",
            QueryMode::Topk(_) => "topk",
        };
        let rendered = resp.trace.as_ref().map(|t| t.render()).unwrap_or_default();
        shared.slow_log.offer_correlated(
            verb,
            resp.stats.total_time,
            rendered,
            payload.request_id,
            None,
        );
    }
    log_query_done(
        payload,
        mode,
        false,
        resp.hits.len(),
        snap.generation(),
        resp.stats.total_time.as_micros() as u64,
    );
    let wire: Vec<WireHit> = resp.hits.iter().map(WireHit::from).collect();
    // A budget-limited partial answer must never masquerade as the exact
    // one for a later (possibly unbudgeted) identical request: cache
    // exact outcomes only. The fingerprint deliberately ignores the
    // options/budget extension — flags and quick-browse never change
    // results, and an exact answer is exact regardless of the budget that
    // allowed it — so budgeted and unbudgeted requests share a line.
    if resp.outcome == QueryOutcome::Exact {
        shared.cache.insert(fingerprint, Arc::new(wire.clone()));
    }
    Ok(HitsReply {
        generation: snap.generation(),
        cached: false,
        hits: wire,
        ext: v2.then_some(HitsExt {
            outcome: resp.outcome,
            distance_computations: resp.stats.distance_computations,
        }),
        // Only a *requested* trace travels back; sampled traces exist for
        // the slow-query log and never change the reply shape.
        trace: if requested.enabled() {
            resp.trace
        } else {
            None
        },
        explain: resp.explain.map(Box::new),
    })
}

/// One structured `query_done` line per answered query request, carrying
/// the request id (when the frame had one) so the shard's log joins the
/// router's on a single grep. Free when logging is off: the only cost is
/// the `enabled` atomic load.
fn log_query_done(
    payload: &QueryPayload,
    mode: QueryMode,
    cached: bool,
    hits: usize,
    generation: u64,
    latency_us: u64,
) {
    if !plog::enabled(LogLevel::Info) {
        return;
    }
    let verb = match mode {
        QueryMode::Threshold(_) => "search",
        QueryMode::Topk(_) => "topk",
    };
    let mut fields: Vec<(&str, Value)> = Vec::with_capacity(6);
    if let Some(rid) = payload.request_id {
        fields.push(("rid", Value::Rid(rid)));
    }
    fields.push(("verb", Value::Str(verb)));
    fields.push(("cached", cached.into()));
    fields.push(("hits", (hits as u64).into()));
    fields.push(("generation", generation.into()));
    fields.push(("latency_us", latency_us.into()));
    plog::log(LogLevel::Info, "serve", "query_done", &fields);
}

/// Answer a V4 batch frame: one pinned snapshot, one reply frame, and
/// per-column answers that are byte-identical to what the equivalent solo
/// frames would return (including result-cache interplay — a batch column
/// hits and fills the same cache lines as a solo query).
fn handle_batch(
    shared: &Shared,
    batch: QueryBatch,
    started: Instant,
    queue_wait: Option<Duration>,
) -> Reply {
    let endpoint = match batch.mode {
        BatchMode::Search(_) => &shared.metrics.search,
        BatchMode::Topk(_) => &shared.metrics.topk,
    };
    if let Some(wait) = queue_wait {
        shared.metrics.queue_wait.record_duration(wait);
    }
    // Queue wait counts against the batch's deadline, exactly as for a
    // solo query frame.
    let deadline = batch
        .ext
        .as_ref()
        .and_then(|ext| ext.deadline_ms)
        .map(Duration::from_millis);
    if let (Some(wait), Some(deadline)) = (queue_wait, deadline) {
        if wait >= deadline {
            shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
            endpoint.record(started.elapsed());
            return Reply::DeadlineExpired {
                waited_ms: wait.as_millis() as u64,
            };
        }
    }
    // Pin the snapshot once: every column answers against the same
    // generation even if a hot swap lands mid-batch.
    let snap = shared.snapshot.current();
    let mut replies = Vec::with_capacity(batch.columns.len());
    for vectors in &batch.columns {
        let solo = solo_request(&batch, vectors.clone());
        match run_query_on(shared, &snap, &solo, queue_wait) {
            Ok(hits) => replies.push(hits),
            Err(message) => {
                endpoint.record(started.elapsed());
                return error_reply(endpoint, message);
            }
        }
    }
    endpoint.record(started.elapsed());
    Reply::HitsBatch(replies)
}

/// The solo request a batch column is equivalent to — used both for
/// execution and for result-cache fingerprinting, so batch and solo
/// traffic share cache lines.
fn solo_request(batch: &QueryBatch, vectors: Vec<f32>) -> Request {
    let query = QueryPayload {
        metric: batch.metric.clone(),
        tau: batch.tau,
        policy: batch.policy,
        dim: batch.dim,
        vectors,
        ext: batch.ext,
        trace: batch.trace,
        request_id: batch.request_id,
        explain: false,
    };
    match batch.mode {
        BatchMode::Search(t) => Request::Search { query, t },
        BatchMode::Topk(k) => Request::Topk { query, k },
    }
}

/// Resolve `Parallel {{ threads: 0 }}` to the machine size and clamp to the
/// server's per-request ceiling. Shared with the router tier so routed
/// and direct requests resolve a wire policy identically.
pub fn clamp_policy(policy: ExecPolicy, max_threads: usize) -> ExecPolicy {
    match policy {
        ExecPolicy::Sequential => ExecPolicy::Sequential,
        ExecPolicy::Parallel { .. } => ExecPolicy::Parallel {
            threads: policy.effective_threads().clamp(1, max_threads.max(1)),
        },
        // Fixed bypasses the adaptive break-even clamp in the core but
        // still honours the server's resource ceiling.
        ExecPolicy::Fixed { threads } => ExecPolicy::Fixed {
            threads: threads.clamp(1, max_threads.max(1)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_clamping() {
        assert_eq!(
            clamp_policy(ExecPolicy::Sequential, 4),
            ExecPolicy::Sequential
        );
        assert_eq!(
            clamp_policy(ExecPolicy::Parallel { threads: 99 }, 4),
            ExecPolicy::Parallel { threads: 4 }
        );
        let auto = clamp_policy(ExecPolicy::Parallel { threads: 0 }, 8);
        match auto {
            ExecPolicy::Parallel { threads } => assert!((1..=8).contains(&threads)),
            _ => panic!("auto must stay parallel"),
        }
        assert_eq!(
            clamp_policy(ExecPolicy::Fixed { threads: 99 }, 4),
            ExecPolicy::Fixed { threads: 4 }
        );
        assert_eq!(
            clamp_policy(ExecPolicy::Fixed { threads: 2 }, 4),
            ExecPolicy::Fixed { threads: 2 }
        );
    }

    #[test]
    fn sample_stride_maps_rates_to_strides() {
        assert_eq!(sample_stride(0.0), 0, "0 disables sampling");
        assert_eq!(sample_stride(-1.0), 0, "negative rates disable");
        assert_eq!(sample_stride(f64::NAN), 0, "NaN disables");
        assert_eq!(sample_stride(1.0), 1, "1.0 samples everything");
        assert_eq!(sample_stride(2.5), 1, ">1 clamps to everything");
        assert_eq!(sample_stride(0.5), 2);
        assert_eq!(sample_stride(0.01), 100);
        assert_eq!(sample_stride(0.001), 1000);
    }
}
