//! Server instrumentation: lock-free counters, latency histograms, and
//! the two exposition formats.
//!
//! Every hot-path record is a handful of relaxed atomic adds into a
//! [`pexeso_core::hist::AtomicHistogram`] — no mutex, no sampling ring,
//! no lost samples under contention (pinned by the hammer test below).
//! Two renderings exist:
//!
//! * [`ServerMetrics::render`] — the historical `key=value` lines behind
//!   the `STATS` verb, grep-friendly and stable;
//! * [`ServerMetrics::render_prometheus`] — Prometheus text exposition
//!   (`# TYPE`/`# HELP`, `_bucket`/`_sum`/`_count` series) behind the
//!   `METRICS` verb, scrapeable by a stock Prometheus. The in-repo
//!   [`validate_prometheus`] checker keeps the format honest without a
//!   new dependency.
//!
//! The daemon also keeps a [`SlowQueryLog`]: a small slowest-N ring of
//! traced requests (fed by the `--metrics-sample-rate` sampler) dumped by
//! the `SLOW` verb, so a p99 spike comes with the phase tree that caused
//! it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pexeso_core::hist::{self, bucket_upper_bound, AtomicHistogram, HistSnapshot, NUM_BUCKETS};

use crate::cache::CacheStats;

/// One endpoint's counters + latency histogram. Recording is atomics-only
/// — safe to call from every worker without serialising them.
#[derive(Default)]
pub struct EndpointMetrics {
    pub requests: AtomicU64,
    pub errors: AtomicU64,
    latency: AtomicHistogram,
}

impl EndpointMetrics {
    /// Count one served request and record its handling latency.
    /// Wait-free: four relaxed atomic adds, no lock anywhere.
    pub fn record(&self, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.latency.record_duration(latency);
    }

    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// (p50, p99) of the latency histogram, in microseconds. Zero when no
    /// request has been served yet. Estimates are conservative: the upper
    /// bound of the bucket holding the rank, at most one bucket width
    /// (~12.5%) above the true quantile.
    pub fn latency_quantiles_us(&self) -> (f64, f64) {
        let s = self.latency.snapshot();
        (s.quantile(0.50) as f64, s.quantile(0.99) as f64)
    }

    /// Snapshot of the latency histogram (for exposition / merging).
    pub fn latency_snapshot(&self) -> HistSnapshot {
        self.latency.snapshot()
    }
}

/// All server metrics, grouped per endpoint plus daemon-wide counters
/// and histograms.
pub struct ServerMetrics {
    pub search: EndpointMetrics,
    pub topk: EndpointMetrics,
    pub info: EndpointMetrics,
    pub stats: EndpointMetrics,
    pub reload: EndpointMetrics,
    /// Delta APPLY latency (ingest → published snapshot) rides on this
    /// endpoint's histogram.
    pub apply: EndpointMetrics,
    /// Time a request sat in the accept queue before a worker popped it.
    pub queue_wait: AtomicHistogram,
    /// Result-cache lookup time, split by outcome — a hit that costs as
    /// much as a miss is a sharding problem.
    pub cache_hit_lookup: AtomicHistogram,
    pub cache_miss_lookup: AtomicHistogram,
    /// Per-phase search timings (Table VI's breakdown, as served).
    pub phase_map: AtomicHistogram,
    pub phase_block: AtomicHistogram,
    pub phase_verify: AtomicHistogram,
    /// Connections rejected with a BUSY reply (queue full).
    pub busy_rejections: AtomicU64,
    /// Connections rejected with a SHED reply (soft watermark crossed
    /// before the hard BUSY limit — degradation beginning).
    pub shed: AtomicU64,
    /// Requests answered `DeadlineExpired`: their deadline budget
    /// elapsed in the queue before a worker ever popped them.
    pub expired: AtomicU64,
    /// Completed hot swaps.
    pub swaps: AtomicU64,
    /// Completed delta applies (live-ingest publishes).
    pub applies: AtomicU64,
    /// Cumulative exact distance computations spent in the verify stage
    /// across all served (uncached) queries — flat between repeats of a
    /// cached query, which is how the tests prove a cache hit skipped the
    /// search entirely.
    pub distance_computations: AtomicU64,
    started: Instant,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self {
            search: EndpointMetrics::default(),
            topk: EndpointMetrics::default(),
            info: EndpointMetrics::default(),
            stats: EndpointMetrics::default(),
            reload: EndpointMetrics::default(),
            apply: EndpointMetrics::default(),
            queue_wait: AtomicHistogram::new(),
            cache_hit_lookup: AtomicHistogram::new(),
            cache_miss_lookup: AtomicHistogram::new(),
            phase_map: AtomicHistogram::new(),
            phase_block: AtomicHistogram::new(),
            phase_verify: AtomicHistogram::new(),
            busy_rejections: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            applies: AtomicU64::new(0),
            distance_computations: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

/// The served-snapshot facts rendered into STATS alongside the counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotFacts {
    pub generation: u64,
    pub index_version: u64,
    pub partitions: usize,
    pub dim: usize,
    /// Live columns ingested since the base build.
    pub delta_columns: usize,
    /// Tables tombstoned since the base build.
    pub delta_tombstones: usize,
    /// Records in the replayed delta log.
    pub delta_records: usize,
}

impl ServerMetrics {
    fn endpoints(&self) -> [(&'static str, &EndpointMetrics); 6] {
        [
            ("search", &self.search),
            ("topk", &self.topk),
            ("info", &self.info),
            ("stats", &self.stats),
            ("reload", &self.reload),
            ("apply", &self.apply),
        ]
    }

    /// Record the per-phase timings of one executed (uncached) search.
    pub fn record_phases(&self, stats: &pexeso_core::stats::SearchStats) {
        self.phase_map.record_duration(stats.mapping_time);
        self.phase_block.record_duration(stats.block_time);
        self.phase_verify.record_duration(stats.verify_time);
    }

    /// Render every counter as `key=value` lines (the `STATS` reply body).
    pub fn render(&self, cache: &CacheStats, snap: &SnapshotFacts) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "uptime_us={}", self.started.elapsed().as_micros());
        let _ = writeln!(out, "snapshot.generation={}", snap.generation);
        let _ = writeln!(out, "snapshot.index_version={}", snap.index_version);
        let _ = writeln!(out, "snapshot.partitions={}", snap.partitions);
        let _ = writeln!(out, "snapshot.dim={}", snap.dim);
        let _ = writeln!(out, "delta.columns={}", snap.delta_columns);
        let _ = writeln!(out, "delta.tombstones={}", snap.delta_tombstones);
        let _ = writeln!(out, "delta.records={}", snap.delta_records);
        let _ = writeln!(out, "applies={}", self.applies.load(Ordering::Relaxed));
        let _ = writeln!(out, "swaps={}", self.swaps.load(Ordering::Relaxed));
        let _ = writeln!(
            out,
            "busy_rejections={}",
            self.busy_rejections.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "shed={}", self.shed.load(Ordering::Relaxed));
        let _ = writeln!(out, "expired={}", self.expired.load(Ordering::Relaxed));
        let _ = writeln!(
            out,
            "distance_computations={}",
            self.distance_computations.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "cache.capacity={}", cache.capacity);
        let _ = writeln!(out, "cache.len={}", cache.len);
        let _ = writeln!(out, "cache.shards={}", cache.shards);
        let _ = writeln!(out, "cache.hits={}", cache.hits);
        let _ = writeln!(out, "cache.misses={}", cache.misses);
        let _ = writeln!(out, "cache.insertions={}", cache.insertions);
        let _ = writeln!(out, "cache.evictions={}", cache.evictions);
        let qw = self.queue_wait.snapshot();
        let _ = writeln!(out, "queue_wait.p50_us={}", qw.quantile(0.50));
        let _ = writeln!(out, "queue_wait.p99_us={}", qw.quantile(0.99));
        for (name, ep) in self.endpoints() {
            let (p50, p99) = ep.latency_quantiles_us();
            let _ = writeln!(
                out,
                "{name}.requests={}",
                ep.requests.load(Ordering::Relaxed)
            );
            let _ = writeln!(out, "{name}.errors={}", ep.errors.load(Ordering::Relaxed));
            let _ = writeln!(out, "{name}.p50_us={p50:.0}");
            let _ = writeln!(out, "{name}.p99_us={p99:.0}");
        }
        out
    }

    /// Render the Prometheus text exposition (the `METRICS` reply body).
    ///
    /// Histogram families render cumulative `_bucket{le=…}` series at
    /// every octave boundary of the log-bucketed layout (24 bounds +
    /// `+Inf`) — full resolution stays queryable via `STATS` quantiles,
    /// the scrape stays small. Output passes [`validate_prometheus`],
    /// which the CI smoke job asserts against a live daemon.
    pub fn render_prometheus(&self, cache: &CacheStats, snap: &SnapshotFacts) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(8192);

        let gauge = |out: &mut String, name: &str, help: &str, v: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        };
        gauge(
            &mut out,
            "pexeso_uptime_seconds",
            "Seconds since the daemon started.",
            self.started.elapsed().as_secs_f64(),
        );
        gauge(
            &mut out,
            "pexeso_snapshot_generation",
            "Generation of the served snapshot.",
            snap.generation as f64,
        );
        gauge(
            &mut out,
            "pexeso_snapshot_partitions",
            "Partitions in the served snapshot.",
            snap.partitions as f64,
        );
        gauge(
            &mut out,
            "pexeso_delta_columns",
            "Live delta columns ingested since the base build.",
            snap.delta_columns as f64,
        );
        gauge(
            &mut out,
            "pexeso_cache_len",
            "Entries in the result cache.",
            cache.len as f64,
        );

        let _ = writeln!(
            out,
            "# HELP pexeso_requests_total Requests served, per endpoint."
        );
        let _ = writeln!(out, "# TYPE pexeso_requests_total counter");
        for (name, ep) in self.endpoints() {
            let _ = writeln!(
                out,
                "pexeso_requests_total{{endpoint=\"{name}\"}} {}",
                ep.requests.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# HELP pexeso_errors_total Request errors, per endpoint."
        );
        let _ = writeln!(out, "# TYPE pexeso_errors_total counter");
        for (name, ep) in self.endpoints() {
            let _ = writeln!(
                out,
                "pexeso_errors_total{{endpoint=\"{name}\"}} {}",
                ep.errors.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# HELP pexeso_rejected_total Requests rejected before execution, by reason."
        );
        let _ = writeln!(out, "# TYPE pexeso_rejected_total counter");
        for (reason, v) in [
            ("busy", &self.busy_rejections),
            ("shed", &self.shed),
            ("expired", &self.expired),
        ] {
            let _ = writeln!(
                out,
                "pexeso_rejected_total{{reason=\"{reason}\"}} {}",
                v.load(Ordering::Relaxed)
            );
        }
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        counter(
            &mut out,
            "pexeso_swaps_total",
            "Completed hot snapshot swaps.",
            self.swaps.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "pexeso_applies_total",
            "Completed delta applies.",
            self.applies.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "pexeso_distance_computations_total",
            "Exact distance computations across all served searches.",
            self.distance_computations.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "# HELP pexeso_cache_ops_total Result-cache operations, by kind."
        );
        let _ = writeln!(out, "# TYPE pexeso_cache_ops_total counter");
        for (op, v) in [
            ("hit", cache.hits),
            ("miss", cache.misses),
            ("insert", cache.insertions),
            ("evict", cache.evictions),
        ] {
            let _ = writeln!(out, "pexeso_cache_ops_total{{op=\"{op}\"}} {v}");
        }

        let _ = writeln!(
            out,
            "# HELP pexeso_request_latency_microseconds Request handling latency, per endpoint."
        );
        let _ = writeln!(out, "# TYPE pexeso_request_latency_microseconds histogram");
        for (name, ep) in self.endpoints() {
            write_histogram_series(
                &mut out,
                "pexeso_request_latency_microseconds",
                &format!("endpoint=\"{name}\""),
                &ep.latency_snapshot(),
            );
        }
        let _ = writeln!(
            out,
            "# HELP pexeso_phase_microseconds Per-phase search time (Table VI breakdown)."
        );
        let _ = writeln!(out, "# TYPE pexeso_phase_microseconds histogram");
        for (phase, h) in [
            ("map", &self.phase_map),
            ("block", &self.phase_block),
            ("verify", &self.phase_verify),
        ] {
            write_histogram_series(
                &mut out,
                "pexeso_phase_microseconds",
                &format!("phase=\"{phase}\""),
                &h.snapshot(),
            );
        }
        let _ = writeln!(
            out,
            "# HELP pexeso_cache_lookup_microseconds Result-cache lookup time, by outcome."
        );
        let _ = writeln!(out, "# TYPE pexeso_cache_lookup_microseconds histogram");
        for (result, h) in [
            ("hit", &self.cache_hit_lookup),
            ("miss", &self.cache_miss_lookup),
        ] {
            write_histogram_series(
                &mut out,
                "pexeso_cache_lookup_microseconds",
                &format!("result=\"{result}\""),
                &h.snapshot(),
            );
        }
        let plain_hist = |out: &mut String, name: &str, help: &str, s: &HistSnapshot| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} histogram");
            write_histogram_series(out, name, "", s);
        };
        plain_hist(
            &mut out,
            "pexeso_queue_wait_microseconds",
            "Time requests waited in the accept queue.",
            &self.queue_wait.snapshot(),
        );
        plain_hist(
            &mut out,
            "pexeso_wal_append_microseconds",
            "Delta WAL record append latency (write + flush).",
            &hist::global::WAL_APPEND.snapshot(),
        );
        plain_hist(
            &mut out,
            "pexeso_wal_fsync_microseconds",
            "Delta WAL fsync latency.",
            &hist::global::WAL_FSYNC.snapshot(),
        );
        out
    }
}

/// Append one labelled histogram series (`_bucket`s, `_sum`, `_count`) in
/// Prometheus text format. `labels` is the inner label list without
/// braces (may be empty); `le` is appended to it.
/// Append one Prometheus histogram series (`_bucket`/`_sum`/`_count`) for
/// a [`HistSnapshot`], sampled at octave boundaries. The caller owns the
/// family's `# HELP`/`# TYPE` header; this is shared by the server's
/// `METRICS` verb and the router tier's metrics plane so both render the
/// same bucket layout.
pub fn write_histogram_series(out: &mut String, name: &str, labels: &str, s: &HistSnapshot) {
    use std::fmt::Write as _;
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    let mut next_bound = 0usize;
    for (i, &c) in s.buckets.iter().enumerate() {
        cumulative += c;
        // Emit at every octave boundary (every 8th bucket ends an octave).
        if i == next_bound {
            let le = bucket_upper_bound(i);
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
            );
            next_bound += 8;
        }
    }
    debug_assert_eq!(next_bound, NUM_BUCKETS);
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", s.count);
    // Omit the braces entirely on label-free series — `name{}` is not
    // universally accepted by Prometheus text parsers.
    let wrapped = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{name}_sum{wrapped} {}", s.sum);
    let _ = writeln!(out, "{name}_count{wrapped} {}", s.count);
}

/// The introspection plane's Prometheus families: structural index
/// gauges plus the two cell-shape histograms, appended to the `METRICS`
/// scrape by the daemon (per generation — the underlying walk is
/// memoised snapshot-side). Passes [`validate_prometheus`].
pub fn render_inspection_prometheus(insp: &pexeso_core::inspect::IndexInspection) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(2048);
    let gauge = |out: &mut String, name: &str, help: &str, v: f64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    };
    let (columns, deleted, vectors, cells, postings) = insp.totals();
    gauge(
        &mut out,
        "pexeso_index_columns",
        "Columns indexed across every partition (tombstoned included).",
        columns as f64,
    );
    gauge(
        &mut out,
        "pexeso_index_deleted_columns",
        "Tombstoned columns awaiting compaction.",
        deleted as f64,
    );
    gauge(
        &mut out,
        "pexeso_index_vectors",
        "Repository vectors indexed across every partition.",
        vectors as f64,
    );
    gauge(
        &mut out,
        "pexeso_index_cells",
        "Non-empty leaf cells of the repository grid.",
        cells as f64,
    );
    gauge(
        &mut out,
        "pexeso_index_postings",
        "Total inverted-index postings entries.",
        postings as f64,
    );
    gauge(
        &mut out,
        "pexeso_index_delta_vectors",
        "Vectors living in the delta overlay (unindexed by the base).",
        insp.delta_vectors as f64,
    );
    gauge(
        &mut out,
        "pexeso_index_delta_records",
        "Delta-log records replayed into the overlay.",
        insp.delta_records as f64,
    );
    let _ = writeln!(
        out,
        "# HELP pexeso_index_postings_length Distinct columns per non-empty leaf cell."
    );
    let _ = writeln!(out, "# TYPE pexeso_index_postings_length histogram");
    write_histogram_series(
        &mut out,
        "pexeso_index_postings_length",
        "",
        &insp.postings_len(),
    );
    let _ = writeln!(
        out,
        "# HELP pexeso_index_cell_occupancy Vectors per non-empty leaf cell."
    );
    let _ = writeln!(out, "# TYPE pexeso_index_cell_occupancy histogram");
    write_histogram_series(
        &mut out,
        "pexeso_index_cell_occupancy",
        "",
        &insp.cell_occupancy(),
    );
    out
}

/// Split a `name="value",…` label body into pairs, validating Prometheus
/// label syntax: names match `[a-zA-Z_][a-zA-Z0-9_]*`, values are
/// double-quoted with only `\\`, `\"`, and `\n` escapes.
fn parse_labels(labels: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut rest = labels;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {labels:?}"))?;
        let name = &rest[..eq];
        let legal_name = !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        if !legal_name {
            return Err(format!("illegal label name {name:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("label {name} value not quoted"))?;
        // Scan the quoted value, honouring escapes.
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let close = loop {
            let Some((i, c)) = chars.next() else {
                return Err(format!("label {name} value missing closing quote"));
            };
            match c {
                '"' => break i,
                '\\' => match chars.next() {
                    Some((_, e @ ('\\' | '"'))) => value.push(e),
                    Some((_, 'n')) => value.push('\n'),
                    other => {
                        return Err(format!(
                            "label {name} value has illegal escape \\{:?}",
                            other.map(|(_, c)| c)
                        ))
                    }
                },
                c => value.push(c),
            }
        };
        pairs.push((name.to_string(), value));
        rest = &rest[close + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return Err(format!("labels not comma-separated in {labels:?}"));
        }
    }
    Ok(pairs)
}

/// Minimal Prometheus text-format checker — enough for the tests and the
/// CI smoke job to assert a scrape is well-formed without pulling a
/// parser dependency. Checks:
///
/// * every sample line parses as `name[{labels}] value` with a legal
///   metric name and a float value;
/// * label names and values use legal Prometheus syntax;
/// * `# HELP`/`# TYPE` lines are well-formed, each family is declared
///   exactly once with a known type, and `HELP` precedes `TYPE`;
/// * every sample belongs to a family declared by a preceding `# TYPE`
///   (histogram samples may use the `_bucket`/`_sum`/`_count` suffixes);
/// * within each histogram series (same labels modulo `le`), bucket
///   counts are cumulative-monotone, `le` bounds increase, and the
///   series ends with `le="+Inf"` matching its `_count`.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    use std::collections::{HashMap, HashSet};
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashSet<String> = HashSet::new();
    // (family, labels-without-le) -> (last le, last cumulative, inf seen, count sample)
    #[derive(Default)]
    struct Series {
        last_le: Option<f64>,
        last_cumulative: Option<u64>,
        inf: Option<u64>,
        count: Option<u64>,
    }
    let mut series: HashMap<(String, String), Series> = HashMap::new();

    fn split_sample(line: &str) -> Option<(String, String, f64)> {
        let (name_labels, value) = line.rsplit_once(' ')?;
        let value: f64 = value.parse().ok()?;
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, rest)) => (n, rest.strip_suffix('}')?),
            None => (name_labels, ""),
        };
        let legal = !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            && !name.starts_with(|c: char| c.is_ascii_digit());
        if !legal {
            return None;
        }
        Some((name.to_string(), labels.to_string(), value))
    }

    for (n, line) in text.lines().enumerate() {
        let lineno = n + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let Some((name, doc)) = rest.split_once(' ') else {
                return Err(format!("line {lineno}: malformed HELP line"));
            };
            if doc.trim().is_empty() {
                return Err(format!("line {lineno}: HELP {name} has no text"));
            }
            if !helps.insert(name.to_string()) {
                return Err(format!("line {lineno}: duplicate HELP for {name}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(ty)) = (it.next(), it.next()) else {
                return Err(format!("line {lineno}: malformed TYPE line"));
            };
            if !matches!(
                ty,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {lineno}: unknown metric type {ty}"));
            }
            if !helps.contains(name) {
                return Err(format!("line {lineno}: TYPE {name} without preceding HELP"));
            }
            if types.insert(name.to_string(), ty.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some((name, labels, value)) = split_sample(line) else {
            return Err(format!("line {lineno}: unparseable sample: {line}"));
        };
        parse_labels(&labels).map_err(|e| format!("line {lineno}: {e}"))?;
        // Resolve the family: exact name, or histogram suffix.
        let family = if types.contains_key(&name) {
            name.clone()
        } else {
            let stripped = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|s| name.strip_suffix(s))
                .map(str::to_string);
            match stripped {
                Some(f) if types.get(&f).map(String::as_str) == Some("histogram") => f,
                _ => return Err(format!("line {lineno}: sample {name} has no # TYPE")),
            }
        };
        if types.get(&family).map(String::as_str) != Some("histogram") {
            continue;
        }
        // Histogram bookkeeping.
        let base_labels: String = labels
            .split(',')
            .filter(|l| !l.is_empty() && !l.starts_with("le="))
            .collect::<Vec<_>>()
            .join(",");
        let entry = series.entry((family.clone(), base_labels)).or_default();
        if name.ends_with("_bucket") {
            let le = labels
                .split(',')
                .find_map(|l| l.strip_prefix("le=\"")?.strip_suffix('"'))
                .ok_or_else(|| format!("line {lineno}: bucket without le label"))?;
            let cumulative = value as u64;
            if let Some(prev) = entry.last_cumulative {
                if cumulative < prev {
                    return Err(format!(
                        "line {lineno}: non-monotone histogram bucket ({cumulative} < {prev})"
                    ));
                }
            }
            entry.last_cumulative = Some(cumulative);
            if le == "+Inf" {
                entry.inf = Some(cumulative);
            } else {
                let le: f64 = le
                    .parse()
                    .map_err(|_| format!("line {lineno}: unparseable le bound {le}"))?;
                if let Some(prev) = entry.last_le {
                    if le <= prev {
                        return Err(format!("line {lineno}: le bounds not increasing"));
                    }
                }
                entry.last_le = Some(le);
            }
        } else if name.ends_with("_count") {
            entry.count = Some(value as u64);
        }
    }
    for ((family, labels), s) in &series {
        let Some(inf) = s.inf else {
            return Err(format!(
                "histogram {family}{{{labels}}} missing le=\"+Inf\""
            ));
        };
        if let Some(count) = s.count {
            if inf != count {
                return Err(format!(
                    "histogram {family}{{{labels}}}: +Inf bucket {inf} != _count {count}"
                ));
            }
        }
    }
    Ok(())
}

/// Parse one counter back out of a rendered STATS body (client-side
/// convenience for tests and tooling).
pub fn stat_value(text: &str, key: &str) -> Option<f64> {
    text.lines()
        .find_map(|l| l.strip_prefix(key)?.strip_prefix('='))
        .and_then(|v| v.trim().parse().ok())
}

/// One entry of the slow-query log: the request's latency and its
/// rendered phase tree.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    pub verb: &'static str,
    pub latency_us: u64,
    /// The rendered [`pexeso_core::trace::QueryTrace`] of the request.
    pub trace: String,
    /// The request id the frame carried, if any — lets one grep connect
    /// a SLOW entry to the structured log lines for the same request.
    pub request_id: Option<u64>,
    /// The shard that dominated the latency (router tier only): the
    /// scatter leg the merged trace charges the most wall time to.
    pub shard: Option<u32>,
}

/// A slowest-N ring of traced requests. Insertion takes a mutex, but only
/// sampled requests (see `--metrics-sample-rate`) ever reach it — the
/// unsampled hot path never touches this structure.
pub struct SlowQueryLog {
    capacity: usize,
    entries: Mutex<Vec<SlowQuery>>,
}

impl SlowQueryLog {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Offer a traced request. Kept if the log has room or the request is
    /// slower than the current fastest entry (which it evicts).
    pub fn offer(&self, verb: &'static str, latency: Duration, trace: String) {
        self.offer_correlated(verb, latency, trace, None, None);
    }

    /// [`SlowQueryLog::offer`] with correlation detail: the wire request
    /// id (if the frame carried one) and, on the router tier, the shard
    /// the latency is attributed to.
    pub fn offer_correlated(
        &self,
        verb: &'static str,
        latency: Duration,
        trace: String,
        request_id: Option<u64>,
        shard: Option<u32>,
    ) {
        if self.capacity == 0 {
            return;
        }
        let latency_us = latency.as_micros() as u64;
        let entry = SlowQuery {
            verb,
            latency_us,
            trace,
            request_id,
            shard,
        };
        let mut entries = self.entries.lock().expect("slow log poisoned");
        if entries.len() < self.capacity {
            entries.push(entry);
            return;
        }
        let (idx, fastest) = entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.latency_us)
            .map(|(i, e)| (i, e.latency_us))
            .expect("capacity > 0");
        if latency_us > fastest {
            entries[idx] = entry;
        }
    }

    pub fn len(&self) -> usize {
        self.entries.lock().expect("slow log poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The log as text, slowest first: a `slow_query verb=… latency_us=…`
    /// header line per entry followed by its indented phase tree.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut entries = self.entries.lock().expect("slow log poisoned").clone();
        entries.sort_by_key(|e| std::cmp::Reverse(e.latency_us));
        let mut out = String::new();
        for e in &entries {
            let _ = write!(
                out,
                "slow_query verb={} latency_us={}",
                e.verb, e.latency_us
            );
            if let Some(rid) = e.request_id {
                let _ = write!(out, " rid={}", pexeso_core::log::fmt_request_id(rid));
            }
            if let Some(shard) = e.shard {
                let _ = write!(out, " shard={shard}");
            }
            let _ = writeln!(out);
            for line in e.trace.lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pexeso_core::hist::{bucket_index, bucket_width};

    #[test]
    fn quantiles_bracket_the_distribution() {
        let ep = EndpointMetrics::default();
        // 1000 samples: 98% at ~100us, 2% at ~10000us — the slow 2% must
        // pull p99 into the slow region while p50 stays fast.
        for _ in 0..980 {
            ep.record(Duration::from_micros(100));
        }
        for _ in 0..20 {
            ep.record(Duration::from_micros(10_000));
        }
        let (p50, p99) = ep.latency_quantiles_us();
        assert!(
            p50 >= 100.0 && p50 <= (100 + bucket_width(bucket_index(100))) as f64,
            "p50={p50}"
        );
        assert!(
            p99 >= 10_000.0 && p99 <= (10_000 + bucket_width(bucket_index(10_000))) as f64,
            "p99={p99}"
        );
        assert_eq!(ep.requests.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn empty_endpoint_reports_zero() {
        let ep = EndpointMetrics::default();
        assert_eq!(ep.latency_quantiles_us(), (0.0, 0.0));
    }

    #[test]
    fn concurrent_recording_loses_no_samples() {
        // The regression the old mutex ring could not make: N threads
        // hammering one endpoint must account for every sample exactly —
        // the only imprecision allowed is bucket granularity, never loss.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 20_000;
        let ep = std::sync::Arc::new(EndpointMetrics::default());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let ep = ep.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        ep.record(Duration::from_micros(t * 100 + i % 1009));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = THREADS * PER_THREAD;
        assert_eq!(ep.requests.load(Ordering::Relaxed), total);
        let s = ep.latency_snapshot();
        assert_eq!(s.count, total, "histogram lost samples");
        assert_eq!(s.buckets.iter().sum::<u64>(), total, "bucket mass lost");
    }

    #[test]
    fn render_and_parse_roundtrip() {
        let m = ServerMetrics::default();
        m.search.record(Duration::from_micros(250));
        m.busy_rejections.fetch_add(3, Ordering::Relaxed);
        let cache = CacheStats {
            hits: 7,
            misses: 2,
            capacity: 100,
            shards: 4,
            ..Default::default()
        };
        let text = m.render(
            &cache,
            &SnapshotFacts {
                generation: 2,
                index_version: 5,
                partitions: 3,
                dim: 64,
                delta_columns: 4,
                delta_tombstones: 1,
                delta_records: 6,
            },
        );
        assert_eq!(stat_value(&text, "snapshot.generation"), Some(2.0));
        assert_eq!(stat_value(&text, "snapshot.index_version"), Some(5.0));
        assert_eq!(stat_value(&text, "delta.columns"), Some(4.0));
        assert_eq!(stat_value(&text, "delta.tombstones"), Some(1.0));
        assert_eq!(stat_value(&text, "delta.records"), Some(6.0));
        assert_eq!(stat_value(&text, "applies"), Some(0.0));
        assert_eq!(stat_value(&text, "cache.hits"), Some(7.0));
        assert_eq!(stat_value(&text, "busy_rejections"), Some(3.0));
        assert_eq!(stat_value(&text, "shed"), Some(0.0));
        assert_eq!(stat_value(&text, "expired"), Some(0.0));
        assert_eq!(stat_value(&text, "search.requests"), Some(1.0));
        assert!(stat_value(&text, "search.p99_us").unwrap() > 0.0);
        assert_eq!(stat_value(&text, "no.such.key"), None);
    }

    #[test]
    fn prometheus_output_is_valid() {
        let m = ServerMetrics::default();
        m.search.record(Duration::from_micros(250));
        m.topk.record(Duration::from_micros(42));
        m.queue_wait.record(17);
        m.cache_hit_lookup.record(3);
        m.record_phases(&pexeso_core::stats::SearchStats {
            mapping_time: Duration::from_micros(10),
            block_time: Duration::from_micros(20),
            verify_time: Duration::from_micros(30),
            ..Default::default()
        });
        let text = m.render_prometheus(&CacheStats::default(), &SnapshotFacts::default());
        validate_prometheus(&text).unwrap();
        assert!(text.contains("# TYPE pexeso_request_latency_microseconds histogram"));
        assert!(text.contains("pexeso_requests_total{endpoint=\"search\"} 1"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn validator_rejects_broken_expositions() {
        // Sample without a TYPE declaration.
        assert!(validate_prometheus("nope_total 3\n").is_err());
        // Non-monotone buckets.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\n\
                   h_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\n\
                   h_sum 9\nh_count 5\n";
        assert!(validate_prometheus(bad).is_err());
        // Missing +Inf.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_prometheus(bad).is_err());
        // +Inf disagreeing with _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n";
        assert!(validate_prometheus(bad).is_err());
        // A good one passes.
        let good = "# HELP h a histogram\n\
                    # TYPE h histogram\n\
                    h_bucket{le=\"1\"} 3\n\
                    h_bucket{le=\"+Inf\"} 5\n\
                    h_sum 9\nh_count 5\n";
        validate_prometheus(good).unwrap();
    }

    #[test]
    fn validator_enforces_help_type_and_label_syntax() {
        // TYPE without a preceding HELP.
        assert!(validate_prometheus("# TYPE h gauge\nh 1\n").is_err());
        // Unknown TYPE.
        let bad = "# HELP h doc\n# TYPE h speedometer\nh 1\n";
        assert!(validate_prometheus(bad).is_err());
        // HELP with no documentation text.
        assert!(validate_prometheus("# HELP h\n").is_err());
        // Duplicate HELP / duplicate TYPE for one family.
        let bad = "# HELP h doc\n# HELP h doc again\n# TYPE h gauge\nh 1\n";
        assert!(validate_prometheus(bad).is_err());
        let bad = "# HELP h doc\n# TYPE h gauge\n# TYPE h gauge\nh 1\n";
        assert!(validate_prometheus(bad).is_err());
        // Label names must be [a-zA-Z_][a-zA-Z0-9_]*.
        let bad = "# HELP h doc\n# TYPE h gauge\nh{0bad=\"x\"} 1\n";
        assert!(validate_prometheus(bad).is_err());
        // Label values must be quoted...
        let bad = "# HELP h doc\n# TYPE h gauge\nh{a=x} 1\n";
        assert!(validate_prometheus(bad).is_err());
        // ...and closed.
        let bad = "# HELP h doc\n# TYPE h gauge\nh{a=\"x} 1\n";
        assert!(validate_prometheus(bad).is_err());
        // Escapes inside label values are fine, including an escaped
        // quote and a literal comma.
        let good = "# HELP h doc\n# TYPE h gauge\n\
                    h{a=\"x\\\"y\",b=\"u,v\"} 1\n";
        validate_prometheus(good).unwrap();
    }

    #[test]
    fn inspection_prometheus_renders_valid() {
        use pexeso_core::inspect::{IndexInspection, PartitionInspection};
        let mut insp = IndexInspection::default();
        insp.partitions.push(PartitionInspection {
            columns: 10,
            vectors: 100,
            cells: 7,
            postings: 12,
            ..Default::default()
        });
        insp.delta_columns = 2;
        insp.delta_vectors = 20;
        let text = render_inspection_prometheus(&insp);
        validate_prometheus(&text).unwrap();
        assert!(text.contains("# TYPE pexeso_index_columns gauge"));
        assert!(text.contains("pexeso_index_columns 10"));
        assert!(text.contains("pexeso_index_delta_vectors 20"));
        assert!(text.contains("# TYPE pexeso_index_postings_length histogram"));
    }

    #[test]
    fn slow_log_renders_request_id_and_shard() {
        let log = SlowQueryLog::new(4);
        log.offer_correlated(
            "topk",
            Duration::from_micros(500),
            "trace".into(),
            Some(0xABCD),
            Some(3),
        );
        log.offer("search", Duration::from_micros(100), "t".into());
        let text = log.render();
        assert!(text.contains("rid=000000000000abcd"), "{text}");
        assert!(text.contains("shard=3"), "{text}");
        // Uncorrelated entries stay exactly as before: no rid, no shard.
        let plain = text
            .lines()
            .find(|l| l.contains("verb=search"))
            .expect("search entry present");
        assert!(!plain.contains("rid="), "{plain}");
        assert!(!plain.contains("shard="), "{plain}");
    }

    #[test]
    fn slow_log_keeps_the_slowest() {
        let log = SlowQueryLog::new(2);
        log.offer("search", Duration::from_micros(100), "t100".into());
        log.offer("search", Duration::from_micros(300), "t300".into());
        // Faster than everything kept: dropped.
        log.offer("search", Duration::from_micros(50), "t50".into());
        // Slower than the fastest kept: evicts it.
        log.offer("topk", Duration::from_micros(200), "t200".into());
        assert_eq!(log.len(), 2);
        let text = log.render();
        assert!(text.contains("latency_us=300"));
        assert!(text.contains("latency_us=200"));
        assert!(!text.contains("latency_us=100"));
        assert!(!text.contains("latency_us=50"));
        // Slowest first, trace lines indented under their header.
        let first = text.lines().next().unwrap();
        assert!(first.contains("latency_us=300"), "{first}");
        assert!(text.contains("  t300"));
    }
}
