//! Server instrumentation: per-endpoint counters and latency quantiles.
//!
//! Counters are lock-free atomics; latencies go into a small fixed-size
//! ring of recent samples per endpoint and are summarised into p50/p99 on
//! demand by binning them through [`pexeso_core::histogram::Histogram`] —
//! the same histogram the cost model and JSD partitioner use, reused here
//! as a quantile sketch. Everything is rendered as `key=value` lines for
//! the `STATS` protocol verb, so operators (and the CI smoke job) can
//! scrape it with nothing fancier than `grep`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pexeso_core::histogram::Histogram;

use crate::cache::CacheStats;

/// Recent-latency ring; 4096 samples ≈ the last few seconds under load,
/// which is what p50/p99 should describe on a live server.
const LATENCY_RING: usize = 4096;
/// Histogram resolution for the quantile sketch.
const LATENCY_BINS: usize = 256;

#[derive(Default)]
struct Ring {
    samples: Vec<f32>, // microseconds
    next: usize,
}

/// One endpoint's counters + latency ring.
#[derive(Default)]
pub struct EndpointMetrics {
    pub requests: AtomicU64,
    pub errors: AtomicU64,
    ring: Mutex<Ring>,
}

impl EndpointMetrics {
    /// Count one served request and record its handling latency.
    pub fn record(&self, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_secs_f64() * 1e6;
        let mut ring = self.ring.lock().expect("latency ring poisoned");
        let next = ring.next;
        if ring.samples.len() < LATENCY_RING {
            ring.samples.push(us as f32);
        } else {
            ring.samples[next] = us as f32;
        }
        ring.next = (next + 1) % LATENCY_RING;
    }

    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// (p50, p99) of the recent-latency ring, in microseconds. Zero when
    /// no request has been served yet.
    pub fn latency_quantiles_us(&self) -> (f64, f64) {
        let samples = {
            let ring = self.ring.lock().expect("latency ring poisoned");
            ring.samples.clone()
        };
        (quantile_us(&samples, 0.50), quantile_us(&samples, 0.99))
    }
}

/// Quantile from a latency sample set via a fixed-range histogram: bin the
/// samples over `[0, max]`, walk the cumulative mass to the target
/// quantile, and report the bin's upper edge (a conservative estimate —
/// never below the true quantile by more than one bin width).
fn quantile_us(samples: &[f32], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let hi = samples.iter().copied().fold(0.0f32, f32::max).max(1e-3);
    let h = Histogram::from_values(samples.iter().copied(), 0.0, hi, LATENCY_BINS);
    let width = hi as f64 / LATENCY_BINS as f64;
    let mut cumulative = 0.0;
    for (i, mass) in h.masses().iter().enumerate() {
        cumulative += mass;
        if cumulative >= q - 1e-12 {
            return (i + 1) as f64 * width;
        }
    }
    hi as f64
}

/// All server metrics, grouped per endpoint plus daemon-wide counters.
pub struct ServerMetrics {
    pub search: EndpointMetrics,
    pub topk: EndpointMetrics,
    pub info: EndpointMetrics,
    pub stats: EndpointMetrics,
    pub reload: EndpointMetrics,
    pub apply: EndpointMetrics,
    /// Connections rejected with a BUSY reply (queue full).
    pub busy_rejections: AtomicU64,
    /// Connections rejected with a SHED reply (soft watermark crossed
    /// before the hard BUSY limit — degradation beginning).
    pub shed: AtomicU64,
    /// Requests answered `DeadlineExpired`: their deadline budget
    /// elapsed in the queue before a worker ever popped them.
    pub expired: AtomicU64,
    /// Completed hot swaps.
    pub swaps: AtomicU64,
    /// Completed delta applies (live-ingest publishes).
    pub applies: AtomicU64,
    /// Cumulative exact distance computations spent in the verify stage
    /// across all served (uncached) queries — flat between repeats of a
    /// cached query, which is how the tests prove a cache hit skipped the
    /// search entirely.
    pub distance_computations: AtomicU64,
    started: Instant,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self {
            search: EndpointMetrics::default(),
            topk: EndpointMetrics::default(),
            info: EndpointMetrics::default(),
            stats: EndpointMetrics::default(),
            reload: EndpointMetrics::default(),
            apply: EndpointMetrics::default(),
            busy_rejections: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            applies: AtomicU64::new(0),
            distance_computations: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

/// The served-snapshot facts rendered into STATS alongside the counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotFacts {
    pub generation: u64,
    pub index_version: u64,
    pub partitions: usize,
    pub dim: usize,
    /// Live columns ingested since the base build.
    pub delta_columns: usize,
    /// Tables tombstoned since the base build.
    pub delta_tombstones: usize,
    /// Records in the replayed delta log.
    pub delta_records: usize,
}

impl ServerMetrics {
    /// Render every counter as `key=value` lines (the `STATS` reply body).
    pub fn render(&self, cache: &CacheStats, snap: &SnapshotFacts) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "uptime_us={}", self.started.elapsed().as_micros());
        let _ = writeln!(out, "snapshot.generation={}", snap.generation);
        let _ = writeln!(out, "snapshot.index_version={}", snap.index_version);
        let _ = writeln!(out, "snapshot.partitions={}", snap.partitions);
        let _ = writeln!(out, "snapshot.dim={}", snap.dim);
        let _ = writeln!(out, "delta.columns={}", snap.delta_columns);
        let _ = writeln!(out, "delta.tombstones={}", snap.delta_tombstones);
        let _ = writeln!(out, "delta.records={}", snap.delta_records);
        let _ = writeln!(out, "applies={}", self.applies.load(Ordering::Relaxed));
        let _ = writeln!(out, "swaps={}", self.swaps.load(Ordering::Relaxed));
        let _ = writeln!(
            out,
            "busy_rejections={}",
            self.busy_rejections.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "shed={}", self.shed.load(Ordering::Relaxed));
        let _ = writeln!(out, "expired={}", self.expired.load(Ordering::Relaxed));
        let _ = writeln!(
            out,
            "distance_computations={}",
            self.distance_computations.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "cache.capacity={}", cache.capacity);
        let _ = writeln!(out, "cache.len={}", cache.len);
        let _ = writeln!(out, "cache.shards={}", cache.shards);
        let _ = writeln!(out, "cache.hits={}", cache.hits);
        let _ = writeln!(out, "cache.misses={}", cache.misses);
        let _ = writeln!(out, "cache.insertions={}", cache.insertions);
        let _ = writeln!(out, "cache.evictions={}", cache.evictions);
        for (name, ep) in [
            ("search", &self.search),
            ("topk", &self.topk),
            ("info", &self.info),
            ("stats", &self.stats),
            ("reload", &self.reload),
            ("apply", &self.apply),
        ] {
            let (p50, p99) = ep.latency_quantiles_us();
            let _ = writeln!(
                out,
                "{name}.requests={}",
                ep.requests.load(Ordering::Relaxed)
            );
            let _ = writeln!(out, "{name}.errors={}", ep.errors.load(Ordering::Relaxed));
            let _ = writeln!(out, "{name}.p50_us={p50:.0}");
            let _ = writeln!(out, "{name}.p99_us={p99:.0}");
        }
        out
    }
}

/// Parse one counter back out of a rendered STATS body (client-side
/// convenience for tests and tooling).
pub fn stat_value(text: &str, key: &str) -> Option<f64> {
    text.lines()
        .find_map(|l| l.strip_prefix(key)?.strip_prefix('='))
        .and_then(|v| v.trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_the_distribution() {
        let ep = EndpointMetrics::default();
        // 1000 samples: 98% at ~100us, 2% at ~10000us — the slow 2% must
        // pull p99 into the slow region while p50 stays fast.
        for _ in 0..980 {
            ep.record(Duration::from_micros(100));
        }
        for _ in 0..20 {
            ep.record(Duration::from_micros(10_000));
        }
        let (p50, p99) = ep.latency_quantiles_us();
        assert!((100.0..500.0).contains(&p50), "p50={p50}");
        assert!(p99 > 5_000.0 && p99 <= 10_100.0, "p99={p99}");
        assert_eq!(ep.requests.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn empty_ring_reports_zero() {
        let ep = EndpointMetrics::default();
        assert_eq!(ep.latency_quantiles_us(), (0.0, 0.0));
    }

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        let ep = EndpointMetrics::default();
        // Fill far past the ring: only recent (fast) samples remain.
        for _ in 0..LATENCY_RING {
            ep.record(Duration::from_millis(50));
        }
        for _ in 0..LATENCY_RING {
            ep.record(Duration::from_micros(10));
        }
        let (p50, p99) = ep.latency_quantiles_us();
        assert!(p99 < 1_000.0, "old slow samples must age out, p99={p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn render_and_parse_roundtrip() {
        let m = ServerMetrics::default();
        m.search.record(Duration::from_micros(250));
        m.busy_rejections.fetch_add(3, Ordering::Relaxed);
        let cache = CacheStats {
            hits: 7,
            misses: 2,
            capacity: 100,
            shards: 4,
            ..Default::default()
        };
        let text = m.render(
            &cache,
            &SnapshotFacts {
                generation: 2,
                index_version: 5,
                partitions: 3,
                dim: 64,
                delta_columns: 4,
                delta_tombstones: 1,
                delta_records: 6,
            },
        );
        assert_eq!(stat_value(&text, "snapshot.generation"), Some(2.0));
        assert_eq!(stat_value(&text, "snapshot.index_version"), Some(5.0));
        assert_eq!(stat_value(&text, "delta.columns"), Some(4.0));
        assert_eq!(stat_value(&text, "delta.tombstones"), Some(1.0));
        assert_eq!(stat_value(&text, "delta.records"), Some(6.0));
        assert_eq!(stat_value(&text, "applies"), Some(0.0));
        assert_eq!(stat_value(&text, "cache.hits"), Some(7.0));
        assert_eq!(stat_value(&text, "busy_rejections"), Some(3.0));
        assert_eq!(stat_value(&text, "shed"), Some(0.0));
        assert_eq!(stat_value(&text, "expired"), Some(0.0));
        assert_eq!(stat_value(&text, "search.requests"), Some(1.0));
        assert!(stat_value(&text, "search.p99_us").unwrap() > 0.0);
        assert_eq!(stat_value(&text, "no.such.key"), None);
    }
}
