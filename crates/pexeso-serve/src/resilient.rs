//! [`ResilientClient`]: a replica-aware, retrying, failover-capable
//! client over one or more `pexeso serve` daemons.
//!
//! [`crate::client::ServeClient`] is one logical connection: it reports
//! BUSY, shed, and transport failures to the caller and stops. This
//! module wraps a *set* of replica addresses into a single
//! [`pexeso_core::query::Queryable`] backend that absorbs transient
//! failure instead of surfacing it:
//!
//! * **Retries** on BUSY/shed/transport errors, with capped exponential
//!   backoff and decorrelated jitter ([`BackoffPolicy`]); delays come
//!   from a seeded RNG, so a test run's schedule is reproducible.
//! * **Deadline discipline**: a query's [`pexeso_core::query::QueryBudget`]
//!   deadline bounds the *whole* logical operation. Each attempt ships
//!   only the remaining budget in its wire extension, and no retry is
//!   ever issued once the deadline has elapsed — the schedule logic is
//!   the pure function [`plan_retry`], property-tested in isolation.
//! * **Failover**: attempts rotate across replicas, so a dead or
//!   saturated node costs one failed attempt, not the query.
//! * **Circuit breaking**: a replica failing [`ResilientConfig::failure_threshold`]
//!   times in a row is *open* (skipped) for [`ResilientConfig::open_for`],
//!   then half-open: one probe attempt decides whether it closes again.
//!   When every replica is open the breaker degrades gracefully —
//!   attempts proceed anyway (an open breaker must never turn "slow" into
//!   "down" when there is nothing left to fail over to).
//!
//! Exactness is untouched: a retry either returns the byte-identical
//! exact answer some replica computed, or a typed error/partial outcome
//! — never a silently different result (pinned by the differential test
//! in `tests/resilient.rs`).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};

use pexeso_core::error::PexesoError;
use pexeso_core::hist::{AtomicHistogram, HistSnapshot};
use pexeso_core::log::{self as plog, LogLevel, Value};
use pexeso_core::query::{Query, QueryResponse, Queryable};
use pexeso_core::trace::{QueryTrace, TraceSpan};
use pexeso_core::vector::VectorStore;

use crate::client::{ClientError, ServeClient};

/// Capped exponential backoff with decorrelated jitter (each delay is
/// drawn uniformly from `[base, min(cap, prev · multiplier)]`, so
/// retries from many clients spread out instead of thundering back in
/// lockstep).
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// Lower bound of every delay (and the first draw's upper seed).
    pub base: Duration,
    /// Hard ceiling on any single delay.
    pub cap: Duration,
    /// Growth factor of the decorrelated-jitter envelope.
    pub multiplier: u32,
    /// Attempts after the first (i.e. retries) before giving up.
    pub max_retries: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            multiplier: 3,
            max_retries: 8,
        }
    }
}

/// One step of the retry schedule, as a pure function so the contract is
/// property-testable without clocks or sockets.
///
/// Given the retry ordinal (1 = first retry), the previous delay, and
/// the remaining deadline budget (`None` = unbounded), decide whether to
/// retry and how long to sleep first. Guarantees, pinned by
/// `tests/backoff_props.rs`:
///
/// * `None` once `retry > max_retries` — bounded attempts;
/// * any returned delay is within `[base, cap]` (jitter never escapes
///   the configured envelope, and never exceeds the cap);
/// * with a remaining budget `r`, any returned delay is strictly less
///   than `r`, and `None` is returned when `r ≤ base` — a retry is never
///   issued past the deadline, and never issued when sleeping the
///   minimum would already consume the whole budget.
pub fn plan_retry<R: rand::RngCore>(
    policy: &BackoffPolicy,
    retry: u32,
    prev_delay: Duration,
    remaining: Option<Duration>,
    rng: &mut R,
) -> Option<Duration> {
    if retry > policy.max_retries {
        return None;
    }
    let base = policy.base.min(policy.cap);
    let envelope = prev_delay
        .max(base)
        .saturating_mul(policy.multiplier.max(1))
        .min(policy.cap);
    let lo = base.as_nanos() as u64;
    let hi = envelope.as_nanos() as u64;
    let delay = Duration::from_nanos(if hi > lo { rng.gen_range(lo..=hi) } else { lo });
    match remaining {
        Some(r) if delay >= r => None,
        _ => Some(delay),
    }
}

/// Tuning for [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct ResilientConfig {
    pub backoff: BackoffPolicy,
    /// Consecutive failures that open a replica's circuit.
    pub failure_threshold: u32,
    /// How long an open circuit is skipped before a half-open probe.
    pub open_for: Duration,
    /// Per-reply timeout applied to every replica connection (and
    /// reconnect). `None` = wait forever (not recommended: a wedged
    /// replica then wedges the attempt).
    pub timeout: Option<Duration>,
    /// Seed for the jitter RNG — fixed so failure tests replay the same
    /// schedule.
    pub seed: u64,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        Self {
            backoff: BackoffPolicy::default(),
            failure_threshold: 3,
            open_for: Duration::from_secs(1),
            timeout: Some(Duration::from_secs(10)),
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

/// A live snapshot of the client's failure-handling counters — what
/// `pexeso query --stats` prints so operators see degradation without
/// reading code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts beyond the first, across all operations.
    pub retries: u64,
    /// Attempts that moved to a different replica than the previous one.
    pub failovers: u64,
    /// BUSY rejections absorbed.
    pub busy: u64,
    /// Soft-watermark shed rejections absorbed.
    pub shed: u64,
    /// Connections discarded after a mid-frame failure (desync guard).
    pub desyncs: u64,
    /// Retry loops stopped by the query deadline (not by success).
    pub deadline_stops: u64,
    /// Circuit-breaker transitions to open.
    pub circuit_opens: u64,
}

#[derive(Default)]
struct Counters {
    retries: AtomicU64,
    failovers: AtomicU64,
    busy: AtomicU64,
    shed: AtomicU64,
    desyncs: AtomicU64,
    deadline_stops: AtomicU64,
    circuit_opens: AtomicU64,
}

/// Per-replica connection + circuit-breaker state.
struct ReplicaState {
    client: Option<ServeClient>,
    consecutive_failures: u32,
    /// `Some(t)`: circuit open until `t`; after `t` the next pick is a
    /// half-open probe.
    open_until: Option<Instant>,
}

struct Replica {
    addr: String,
    state: Mutex<ReplicaState>,
    /// Administratively drained: skipped by `pick` (unless nothing else
    /// is left) without touching breaker state, so a rolling restart can
    /// steer traffic away *before* the node goes down and hand it back
    /// afterwards — no rebuilt client, no failure-counted churn.
    drained: AtomicBool,
}

/// One replica's health as seen by this client — the per-shard gauge a
/// router's STATS plane reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    pub addr: String,
    /// Administratively drained via [`ResilientClient::set_drained`].
    pub drained: bool,
    /// Circuit currently open (skipped until the half-open probe).
    pub circuit_open: bool,
    pub consecutive_failures: u32,
    /// A connection is currently established (healthy at last use).
    pub connected: bool,
}

/// A retrying, failover-capable [`Queryable`] over replica `pexeso
/// serve` daemons. Connections are created lazily (a replica that is
/// down at construction time is simply unhealthy, not fatal) and
/// re-created after any failure.
pub struct ResilientClient {
    replicas: Vec<Replica>,
    config: ResilientConfig,
    rng: Mutex<rand::rngs::StdRng>,
    counters: Counters,
    /// Rotates the starting replica so load spreads when healthy.
    cursor: AtomicUsize,
    /// Per-attempt wall-clock latency (every attempt, failed or not) —
    /// the client-side complement of the server's request histogram, so
    /// retries and backoff show up as a fatter tail here than there.
    attempt_latency: AtomicHistogram,
    /// Highest snapshot generation any replica has reported — the
    /// freshness gauge a router exposes per shard (0 until the first
    /// successful query).
    last_generation: AtomicU64,
}

impl ResilientClient {
    /// Wrap `addrs` (at least one). No connection is attempted yet.
    pub fn new(addrs: &[String], config: ResilientConfig) -> Result<Self, PexesoError> {
        if addrs.is_empty() {
            return Err(PexesoError::InvalidParameter(
                "resilient client needs at least one replica address".into(),
            ));
        }
        Ok(Self {
            replicas: addrs
                .iter()
                .map(|a| Replica {
                    addr: a.clone(),
                    state: Mutex::new(ReplicaState {
                        client: None,
                        consecutive_failures: 0,
                        open_until: None,
                    }),
                    drained: AtomicBool::new(false),
                })
                .collect(),
            rng: Mutex::new(rand::rngs::StdRng::seed_from_u64(config.seed)),
            counters: Counters::default(),
            config,
            cursor: AtomicUsize::new(0),
            attempt_latency: AtomicHistogram::new(),
            last_generation: AtomicU64::new(0),
        })
    }

    /// The replica addresses, in configuration order.
    pub fn addrs(&self) -> Vec<&str> {
        self.replicas.iter().map(|r| r.addr.as_str()).collect()
    }

    /// Snapshot the per-attempt latency histogram (microsecond buckets;
    /// every attempt counts, including failed ones).
    pub fn attempt_latency(&self) -> HistSnapshot {
        self.attempt_latency.snapshot()
    }

    /// The highest snapshot generation any replica has reported on a
    /// successful query (0 until one lands) — how a router tracks shard
    /// freshness without a dedicated probe.
    pub fn last_generation(&self) -> u64 {
        self.last_generation.load(Ordering::Relaxed)
    }

    /// Administratively drain (or undrain) the replica at `addr`:
    /// `pick` steers new attempts away from a drained replica without
    /// rebuilding the client or touching its breaker state, so a rolling
    /// restart is: drain → restart → undrain. Returns `false` when no
    /// replica has that address. When *every* eligible replica is
    /// drained the drain degrades gracefully, exactly like an all-open
    /// breaker: attempts proceed anyway rather than refusing outright.
    pub fn set_drained(&self, addr: &str, drained: bool) -> bool {
        let Some(replica) = self.replicas.iter().find(|r| r.addr == addr) else {
            return false;
        };
        replica.drained.store(drained, Ordering::Relaxed);
        true
    }

    /// Per-replica health gauges, in configuration order.
    pub fn replica_status(&self) -> Vec<ReplicaStatus> {
        let now = Instant::now();
        self.replicas
            .iter()
            .map(|r| {
                let state = r.state.lock().expect("replica poisoned");
                ReplicaStatus {
                    addr: r.addr.clone(),
                    drained: r.drained.load(Ordering::Relaxed),
                    circuit_open: state.open_until.is_some_and(|until| now < until),
                    consecutive_failures: state.consecutive_failures,
                    connected: state.client.is_some(),
                }
            })
            .collect()
    }

    /// Snapshot the failure-handling counters.
    pub fn stats(&self) -> RetryStats {
        let c = &self.counters;
        RetryStats {
            retries: c.retries.load(Ordering::Relaxed),
            failovers: c.failovers.load(Ordering::Relaxed),
            busy: c.busy.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            desyncs: c.desyncs.load(Ordering::Relaxed),
            deadline_stops: c.deadline_stops.load(Ordering::Relaxed),
            circuit_opens: c.circuit_opens.load(Ordering::Relaxed),
        }
    }

    /// Pick the next replica to try: rotate from `start`, skipping
    /// drained replicas and open circuits (half-open ones — whose open
    /// window elapsed — are eligible as probes). Degradation order when
    /// nothing is eligible: first fall back to undrained replicas even
    /// with open circuits (with nowhere to fail over, probing a suspect
    /// replica beats refusing to try at all), and only when *everything*
    /// is drained ignore the drain too — an administrative flag must
    /// never turn "all drained" into "down".
    fn pick(&self, start: usize, now: Instant) -> usize {
        let n = self.replicas.len();
        let mut fallback = None;
        for off in 0..n {
            let i = (start + off) % n;
            let replica = &self.replicas[i];
            if replica.drained.load(Ordering::Relaxed) {
                continue;
            }
            fallback.get_or_insert(i);
            let state = replica.state.lock().expect("replica poisoned");
            let open = state.open_until.is_some_and(|until| now < until);
            if !open {
                return i;
            }
        }
        fallback.unwrap_or(start % n)
    }

    /// One attempt against one replica, updating its breaker state.
    fn try_replica(
        &self,
        idx: usize,
        query: &Query,
        vectors: &VectorStore,
    ) -> Result<QueryResponse, ClientError> {
        let replica = &self.replicas[idx];
        let mut state = replica.state.lock().expect("replica poisoned");
        if state.client.is_none() {
            let client = ServeClient::connect(replica.addr.as_str())?;
            client.set_timeout(self.config.timeout)?;
            state.client = Some(client);
        }
        let result = state
            .client
            .as_ref()
            .expect("client just ensured")
            .execute_detailed(query, vectors)
            .map(|(resp, meta)| {
                // Track the freshest generation seen across replicas
                // (max, not last: a lagging replica must not roll the
                // gauge backwards).
                self.last_generation
                    .fetch_max(meta.generation, Ordering::Relaxed);
                resp
            });
        match &result {
            Ok(_) => {
                state.consecutive_failures = 0;
                state.open_until = None;
            }
            Err(e) => {
                // Connection-level failures make the cached client
                // suspect; drop it so the next attempt reconnects.
                if matches!(
                    e,
                    ClientError::Io(_) | ClientError::Desynced(_) | ClientError::Disconnected
                ) {
                    state.client = None;
                }
                state.consecutive_failures += 1;
                if state.consecutive_failures >= self.config.failure_threshold {
                    // (Re-)open the circuit; a half-open probe that
                    // fails lands here again and re-opens it.
                    state.open_until = Some(Instant::now() + self.config.open_for);
                    self.counters.circuit_opens.fetch_add(1, Ordering::Relaxed);
                    plog::log(
                        LogLevel::Warn,
                        "client",
                        "circuit_opened",
                        &[
                            ("addr", Value::Str(&replica.addr)),
                            (
                                "consecutive_failures",
                                Value::U64(state.consecutive_failures as u64),
                            ),
                        ],
                    );
                }
            }
        }
        result
    }

    fn record_failure_kind(&self, e: &ClientError) {
        let c = &self.counters;
        match e {
            ClientError::Busy => c.busy.fetch_add(1, Ordering::Relaxed),
            ClientError::Shed => c.shed.fetch_add(1, Ordering::Relaxed),
            ClientError::Desynced(_) => c.desyncs.fetch_add(1, Ordering::Relaxed),
            _ => return,
        };
    }
}

/// Failures worth another attempt: backpressure, shed, transport, and
/// torn-connection errors. A typed server error or protocol violation is
/// not — the same request would fail the same way everywhere.
fn retryable(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Io(_)
            | ClientError::Busy
            | ClientError::Shed
            | ClientError::Disconnected
            | ClientError::Desynced(_)
    )
}

impl Queryable for ResilientClient {
    /// Execute with retry/failover. The query's deadline bounds the whole
    /// loop: each attempt carries only the remaining budget, and once it
    /// is spent the last failure (or the server's typed partial outcome)
    /// is what the caller gets — never a late retry.
    fn execute(
        &self,
        query: &Query,
        vectors: &VectorStore,
    ) -> pexeso_core::error::Result<QueryResponse> {
        let started = Instant::now();
        let deadline = query.budget.deadline;
        let tracing = query.trace.enabled();
        // Client-side attempt/backoff spans, accumulated only when the
        // query asked for a trace; merged with the winning attempt's
        // server-side trace into one correlated timeline.
        let mut client_spans: Vec<TraceSpan> = Vec::new();
        let mut attempt_query = query.clone();
        let mut retry = 0u32;
        let mut prev_delay = self.config.backoff.base;
        let mut idx = self.pick(self.cursor.fetch_add(1, Ordering::Relaxed), Instant::now());
        loop {
            if let Some(d) = deadline {
                // Ship only the unspent budget, so a replica that queues
                // us still answers (or typed-expires) within the total.
                attempt_query.budget.deadline = Some(d.saturating_sub(started.elapsed()));
            }
            let attempt_start = started.elapsed();
            let result = self.try_replica(idx, &attempt_query, vectors);
            let attempt_dur = started.elapsed() - attempt_start;
            self.attempt_latency.record_duration(attempt_dur);
            let err = match result {
                Ok(mut resp) => {
                    if tracing {
                        let start_us = attempt_start.as_micros() as u64;
                        let mut span = TraceSpan::new(
                            format!("attempt/{retry}"),
                            start_us,
                            attempt_dur.as_micros() as u64,
                        )
                        .counter("replica", idx as u64);
                        // Nest the server's phase tree inside the attempt
                        // that produced it, shifted onto the client clock.
                        if let Some(server) = resp.trace.take() {
                            span.children.push(server.nested_under(start_us));
                        }
                        client_spans.push(span);
                        let mut root =
                            TraceSpan::new("client", 0, started.elapsed().as_micros() as u64)
                                .counter("retries", retry as u64);
                        root.children = client_spans;
                        resp.trace = Some(QueryTrace::new(root));
                    }
                    return Ok(resp);
                }
                Err(e) => e,
            };
            if tracing {
                client_spans.push(
                    TraceSpan::new(
                        format!("attempt/{retry}"),
                        attempt_start.as_micros() as u64,
                        attempt_dur.as_micros() as u64,
                    )
                    .counter("replica", idx as u64)
                    .counter("failed", 1),
                );
            }
            self.record_failure_kind(&err);
            if !retryable(&err) {
                return Err(err.into());
            }
            retry += 1;
            let remaining = deadline.map(|d| d.saturating_sub(started.elapsed()));
            let plan = {
                let mut rng = self.rng.lock().expect("rng poisoned");
                plan_retry(
                    &self.config.backoff,
                    retry,
                    prev_delay,
                    remaining,
                    &mut *rng,
                )
            };
            let Some(delay) = plan else {
                // Within the retry allowance, `None` can only mean the
                // deadline guard refused the sleep.
                if retry <= self.config.backoff.max_retries {
                    self.counters.deadline_stops.fetch_add(1, Ordering::Relaxed);
                }
                return Err(err.into());
            };
            self.counters.retries.fetch_add(1, Ordering::Relaxed);
            if plog::enabled(LogLevel::Warn) {
                let error = err.to_string();
                let mut fields: Vec<(&str, Value)> = Vec::with_capacity(4);
                if let Some(rid) = query.request_id {
                    fields.push(("rid", Value::Rid(rid)));
                }
                fields.push(("addr", Value::Str(&self.replicas[idx].addr)));
                fields.push(("retry", Value::U64(retry as u64)));
                fields.push(("error", Value::Str(&error)));
                plog::log(LogLevel::Warn, "client", "query_retry", &fields);
            }
            if tracing {
                client_spans.push(TraceSpan::new(
                    format!("backoff/{retry}"),
                    started.elapsed().as_micros() as u64,
                    delay.as_micros() as u64,
                ));
            }
            std::thread::sleep(delay);
            prev_delay = delay;
            let next = self.pick(idx + 1, Instant::now());
            if next != idx {
                self.counters.failovers.fetch_add(1, Ordering::Relaxed);
            }
            idx = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn policy() -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            multiplier: 3,
            max_retries: 5,
        }
    }

    #[test]
    fn delays_stay_inside_the_envelope() {
        let p = policy();
        let mut rng = StdRng::seed_from_u64(7);
        let mut prev = p.base;
        for retry in 1..=p.max_retries {
            let d = plan_retry(&p, retry, prev, None, &mut rng).expect("unbounded retries allowed");
            assert!(d >= p.base, "delay {d:?} under base");
            assert!(d <= p.cap, "delay {d:?} over cap");
            prev = d;
        }
        assert_eq!(
            plan_retry(&p, p.max_retries + 1, prev, None, &mut rng),
            None,
            "retries must be bounded"
        );
    }

    #[test]
    fn never_retries_past_the_deadline() {
        let p = policy();
        let mut rng = StdRng::seed_from_u64(7);
        // Remaining budget at or under the minimum sleep: no retry.
        assert_eq!(
            plan_retry(&p, 1, p.base, Some(Duration::from_millis(5)), &mut rng),
            None
        );
        assert_eq!(plan_retry(&p, 1, p.base, Some(p.base), &mut rng), None);
        // With room, the delay fits strictly inside the remainder.
        for _ in 0..200 {
            let remaining = Duration::from_millis(40);
            if let Some(d) = plan_retry(&p, 1, p.cap, Some(remaining), &mut rng) {
                assert!(d < remaining);
            }
        }
    }

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let p = policy();
        let run = || {
            let mut rng = StdRng::seed_from_u64(42);
            let mut prev = p.base;
            let mut out = Vec::new();
            for retry in 1..=p.max_retries {
                let d = plan_retry(&p, retry, prev, None, &mut rng).unwrap();
                out.push(d);
                prev = d;
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn constructor_rejects_no_replicas() {
        assert!(ResilientClient::new(&[], ResilientConfig::default()).is_err());
    }

    #[test]
    fn stats_start_at_zero() {
        let c = ResilientClient::new(&["127.0.0.1:1".into()], ResilientConfig::default()).unwrap();
        assert_eq!(c.stats(), RetryStats::default());
        assert_eq!(c.addrs(), vec!["127.0.0.1:1"]);
        assert_eq!(c.last_generation(), 0);
    }

    fn three_replicas() -> ResilientClient {
        ResilientClient::new(
            &[
                "127.0.0.1:1".into(),
                "127.0.0.1:2".into(),
                "127.0.0.1:3".into(),
            ],
            ResilientConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn drained_replicas_are_skipped_without_rebuilding() {
        let c = three_replicas();
        let now = Instant::now();
        assert_eq!(c.pick(0, now), 0);
        assert!(c.set_drained("127.0.0.1:1", true));
        assert_eq!(c.pick(0, now), 1, "rotation skips the drained replica");
        assert_eq!(c.pick(1, now), 1);
        // Undrain hands traffic back; the replica set never changed.
        assert!(c.set_drained("127.0.0.1:1", false));
        assert_eq!(c.pick(0, now), 0);
        assert!(!c.set_drained("10.0.0.9:1", true), "unknown address");
    }

    #[test]
    fn all_drained_degrades_to_plain_rotation() {
        let c = three_replicas();
        for addr in ["127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"] {
            assert!(c.set_drained(addr, true));
        }
        // Draining everything must not turn the client into a refusal
        // machine: picks proceed as if nothing were drained.
        let now = Instant::now();
        assert_eq!(c.pick(1, now), 1);
        let status = c.replica_status();
        assert_eq!(status.len(), 3);
        assert!(status.iter().all(|s| s.drained && !s.circuit_open));
    }

    #[test]
    fn drain_beats_open_circuit_in_fallback_order() {
        let c = three_replicas();
        // Open replica 1's circuit and drain replica 0: the pick must
        // land on 2 (healthy), then — with 2 drained too — fall back to
        // the *undrained* open replica 1, not the drained 0.
        c.replicas[1]
            .state
            .lock()
            .unwrap()
            .open_until
            .replace(Instant::now() + Duration::from_secs(60));
        assert!(c.set_drained("127.0.0.1:1", true));
        let now = Instant::now();
        assert_eq!(c.pick(0, now), 2);
        assert!(c.set_drained("127.0.0.1:3", true));
        assert_eq!(c.pick(0, now), 1);
    }
}
