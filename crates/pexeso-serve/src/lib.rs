//! # pexeso-serve — a resident query-serving daemon for PEXESO
//!
//! The PEXESO indexes of a partitioned lake are expensive to build and
//! cheap to query — exactly the shape that wants a long-running process
//! instead of a pay-the-startup-cost-every-time CLI. This crate turns a
//! persisted [`pexeso_core::outofcore::PartitionedLake`] deployment into a
//! TCP daemon (`std::net` only; no external runtime):
//!
//! * [`protocol`] — a small length-prefixed binary protocol
//!   (`INFO`/`SEARCH`/`TOPK`/`STATS`/`RELOAD`/`SHUTDOWN`), query vectors
//!   on the wire as raw `f32`s, explicit `BUSY` backpressure;
//! * [`snapshot`] — `Arc`-swapped immutable index snapshots with a
//!   versioned-manifest reload path: `RELOAD` re-opens the deployment
//!   directory and atomically publishes it under live traffic with zero
//!   dropped queries (in-flight requests finish on the old snapshot);
//!   snapshots also carry the deployment's replayed delta log
//!   (`pexeso-delta`), and the V3 `APPLY` verb publishes a fresh overlay
//!   over the *shared resident base* — live ingest without reloading a
//!   single partition;
//! * [`cache`] — a sharded LRU result cache keyed on (query fingerprint,
//!   τ, T/k, metric, snapshot generation), invalidated wholesale on swap;
//! * [`server`] — a fixed worker pool over a bounded connection queue,
//!   per-request [`pexeso_core::config::ExecPolicy`] selection (clamped by
//!   the server), and a clean shutdown path;
//! * [`metrics`] — lock-free per-endpoint counters and log-bucketed
//!   latency histograms ([`pexeso_core::hist::AtomicHistogram`]),
//!   rendered as `key=value` text on the `STATS` verb and as Prometheus
//!   text format on the V5 `METRICS` verb (validated in-repo by
//!   [`metrics::validate_prometheus`]), plus a slowest-N traced query
//!   log behind the `SLOW` verb;
//! * [`client`] — a synchronous client used by `pexeso query` and the
//!   integration tests; queries can request a server-side phase trace
//!   ([`pexeso_core::trace`]) that [`ResilientClient`] merges with its
//!   own attempt/backoff spans into one correlated timeline.
//!
//! Served results are exact: a reply is byte-identical to what a direct
//! [`pexeso_core::outofcore::PartitionedLake::search`] call returns, for
//! every execution policy (the crate-wide determinism contract is also
//! why a sequential and a parallel request may share one cache entry).

pub mod cache;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod resilient;
pub mod server;
pub mod snapshot;

pub use cache::{CacheStats, LruCache, ShardedCache};
pub use client::{query_payload, wire_request, ClientError, RemoteMeta, ServeClient};
pub use metrics::{stat_value, validate_prometheus, ServerMetrics, SlowQueryLog, SnapshotFacts};
pub use protocol::{
    HitsExt, HitsReply, InfoReply, QueryExt, QueryPayload, Reply, Request, WireHit,
};
pub use resilient::{BackoffPolicy, ReplicaStatus, ResilientClient, ResilientConfig, RetryStats};
pub use server::{ServeConfig, Server, ServerHandle};
pub use snapshot::{Snapshot, SnapshotCell};
