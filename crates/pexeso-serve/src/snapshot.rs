//! Arc-swapped immutable, fully-resident index snapshots.
//!
//! A [`Snapshot`] is one opened deployment loaded *entirely into memory*
//! ([`ResidentPartitions`]) plus its manifest, tagged with a serve-side
//! *generation* that increases by one on every hot swap. Residency is
//! what makes the daemon worth running — queries never pay the partition
//! load the one-shot CLI pays — and it is also what makes the swap safe:
//! an operator can re-index the backing directory *in place* (which
//! deletes and rewrites the partition files) while in-flight queries keep
//! answering from the old snapshot's memory, untouched by the filesystem.
//!
//! The server keeps the current snapshot in a [`SnapshotCell`]; request
//! handlers grab an `Arc` once per request and use it for the whole
//! query. A swap loads the new deployment outside the write lock (readers
//! never block behind the disk) and publishes it with a single pointer
//! store. Concurrent swaps are serialized by a dedicated swap mutex so
//! generations are strictly increasing — two racing `RELOAD`s can never
//! mint the same generation (which would let the result cache serve one
//! deployment's entries for the other).
//!
//! The manifest records the metric the partition indexes were built with;
//! the persisted pivot mappings are only valid under that metric, so
//! queries requesting any other metric are rejected with a typed error
//! instead of silently returning non-exact results.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

use pexeso_core::error::{PexesoError, Result};
use pexeso_core::metric::{Angular, Chebyshev, Euclidean, Manhattan};
use pexeso_core::outofcore::{LakeManifest, PartitionedLake, ResidentPartitions};
use pexeso_core::query::{Query, QueryResponse, Queryable};
use pexeso_core::vector::VectorStore;

/// The resident indexes, monomorphised per supported metric (the metric
/// type is fixed at load time by the manifest).
#[derive(Debug)]
enum ResidentLake {
    Euclidean(ResidentPartitions<Euclidean>),
    Manhattan(ResidentPartitions<Manhattan>),
    Chebyshev(ResidentPartitions<Chebyshev>),
    Angular(ResidentPartitions<Angular>),
}

/// One immutable, memory-resident opened deployment.
#[derive(Debug)]
pub struct Snapshot {
    /// Path handles, kept for `disk_bytes` and same-dir reload.
    lake: PartitionedLake,
    resident: ResidentLake,
    manifest: LakeManifest,
    generation: u64,
    dir: PathBuf,
}

impl Snapshot {
    /// Open `dir` (manifest + partition files) as generation `generation`
    /// and load every partition into memory under the manifest's metric.
    pub fn load(dir: &Path, generation: u64) -> Result<Self> {
        let manifest = LakeManifest::read(dir)?;
        let lake = PartitionedLake::open(dir)?;
        let resident = match manifest.metric.as_str() {
            "euclidean" => ResidentLake::Euclidean(ResidentPartitions::load(&lake, Euclidean)?),
            "manhattan" => ResidentLake::Manhattan(ResidentPartitions::load(&lake, Manhattan)?),
            "chebyshev" => ResidentLake::Chebyshev(ResidentPartitions::load(&lake, Chebyshev)?),
            "angular" => ResidentLake::Angular(ResidentPartitions::load(&lake, Angular)?),
            other => {
                return Err(PexesoError::Corrupt(format!(
                    "manifest names unsupported metric '{other}'"
                )))
            }
        };
        Ok(Self {
            lake,
            resident,
            manifest,
            generation,
            dir: dir.to_path_buf(),
        })
    }

    pub fn lake(&self) -> &PartitionedLake {
        &self.lake
    }

    pub fn manifest(&self) -> &LakeManifest {
        &self.manifest
    }

    pub fn dim(&self) -> usize {
        self.manifest.dim
    }

    /// Serve-side generation; bumps on every hot swap.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Reject a query whose metric does not match the one the indexes
    /// were built with — the pivot mappings would be invalid and results
    /// silently wrong, violating the exactness contract.
    fn check_metric(&self, requested: &str) -> Result<()> {
        if requested == self.manifest.metric {
            Ok(())
        } else {
            Err(PexesoError::InvalidParameter(format!(
                "index was built with metric '{}'; cannot serve '{requested}'",
                self.manifest.metric
            )))
        }
    }
}

/// A snapshot answers the unified [`Query`] by checking the metric
/// expectation against its manifest and delegating to the matching
/// monomorphised resident backend — the serve dispatch is one
/// [`Queryable::execute`] call away from the core engines.
impl Queryable for Snapshot {
    fn execute(&self, query: &Query, vectors: &VectorStore) -> Result<QueryResponse> {
        if let Some(expected) = query.metric.as_deref() {
            self.check_metric(expected)?;
        }
        match &self.resident {
            ResidentLake::Euclidean(r) => r.execute(query, vectors),
            ResidentLake::Manhattan(r) => r.execute(query, vectors),
            ResidentLake::Chebyshev(r) => r.execute(query, vectors),
            ResidentLake::Angular(r) => r.execute(query, vectors),
        }
    }
}

/// The swap point: a shared cell holding the current snapshot.
pub struct SnapshotCell {
    current: RwLock<Arc<Snapshot>>,
    /// Serializes whole swaps (load + publish). Without it two concurrent
    /// reloads could both read generation G and both publish G+1 —
    /// duplicate generations would alias result-cache keys across
    /// deployments.
    swap_lock: Mutex<()>,
}

impl SnapshotCell {
    /// Open `dir` as the first served snapshot (generation 1).
    pub fn open(dir: &Path) -> Result<Self> {
        let snapshot = Snapshot::load(dir, 1)?;
        Ok(Self {
            current: RwLock::new(Arc::new(snapshot)),
            swap_lock: Mutex::new(()),
        })
    }

    /// The snapshot new requests should use. Cheap (`Arc` clone under a
    /// read lock); call once per request and reuse the `Arc`.
    pub fn current(&self) -> Arc<Snapshot> {
        self.current.read().expect("snapshot cell poisoned").clone()
    }

    /// Hot swap: load `dir` (or re-load the currently served directory),
    /// then atomically publish it with the next generation. On any load
    /// error the served snapshot is left untouched — a bad re-index never
    /// takes down live traffic. Swaps serialize; generations are strictly
    /// increasing.
    pub fn swap(&self, dir: Option<&Path>) -> Result<Arc<Snapshot>> {
        let _swapping = self.swap_lock.lock().expect("swap lock poisoned");
        let old = self.current();
        let target = dir.unwrap_or_else(|| old.dir());
        // Expensive directory scan + full resident load happens outside
        // the write lock, so readers never block behind a slow disk.
        let fresh = Arc::new(Snapshot::load(target, old.generation() + 1)?);
        *self.current.write().expect("snapshot cell poisoned") = fresh.clone();
        Ok(fresh)
    }
}
