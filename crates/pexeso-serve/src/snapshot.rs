//! Arc-swapped immutable, fully-resident index snapshots.
//!
//! A [`Snapshot`] is one opened deployment loaded *entirely into memory*
//! ([`ResidentPartitions`]) plus its manifest and — new with incremental
//! maintenance — the deployment's replayed delta log as a
//! [`pexeso_delta::AnyOverlay`], tagged with a serve-side *generation*
//! that increases by one on every publish. Residency is what makes the
//! daemon worth running — queries never pay the partition load the
//! one-shot CLI pays — and it is also what makes the swap safe: an
//! operator can re-index or compact the backing directory *in place*
//! while in-flight queries keep answering from the old snapshot's memory,
//! untouched by the filesystem.
//!
//! Two publish paths exist:
//!
//! * [`SnapshotCell::swap`] (the `RELOAD` verb) re-opens the directory
//!   from scratch — partitions, manifest, and delta log;
//! * [`SnapshotCell::apply_delta`] (the V3 `APPLY` verb) re-reads *only*
//!   the delta log and publishes a new generation **sharing the resident
//!   base via `Arc`** — live ingest in milliseconds, no partition
//!   reloaded, no memory doubled. If the base build itself changed
//!   underneath the daemon (manifest `index_version` moved, e.g. a
//!   compaction or re-index finished), `apply_delta` falls back to a full
//!   load: the delta log belongs to the new base, not the resident one.
//!
//! Publishes are serialized by a dedicated swap mutex so generations are
//! strictly increasing — two racing operators can never mint the same
//! generation (which would let the result cache serve one deployment's
//! entries for the other).
//!
//! The manifest records the metric the partition indexes were built with;
//! the persisted pivot mappings are only valid under that metric, so
//! queries requesting any other metric are rejected with a typed error
//! instead of silently returning non-exact results.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

use pexeso_core::error::{PexesoError, Result};
use pexeso_core::metric::{Angular, Chebyshev, Euclidean, Manhattan, Metric};
use pexeso_core::outofcore::{execute_on_index, LakeManifest, PartitionedLake, ResidentPartitions};
use pexeso_core::query::{Query, QueryResponse, Queryable};
use pexeso_core::vector::VectorStore;
use pexeso_delta::{check_header, read_log, AnyOverlay, DeltaOverlay, DeltaState, LogStatus};

/// The resident indexes, monomorphised per supported metric (the metric
/// type is fixed at load time by the manifest).
#[derive(Debug)]
enum ResidentLake {
    Euclidean(ResidentPartitions<Euclidean>),
    Manhattan(ResidentPartitions<Manhattan>),
    Chebyshev(ResidentPartitions<Chebyshev>),
    Angular(ResidentPartitions<Angular>),
}

/// One immutable, memory-resident opened deployment plus its delta
/// overlay.
#[derive(Debug)]
pub struct Snapshot {
    /// Path handles, kept for `disk_bytes` and same-dir reload.
    lake: PartitionedLake,
    /// Shared across delta generations: an `apply_delta` publish reuses
    /// the previous snapshot's resident base untouched.
    resident: Arc<ResidentLake>,
    manifest: LakeManifest,
    overlay: AnyOverlay,
    generation: u64,
    dir: PathBuf,
}

impl Snapshot {
    /// Open `dir` (manifest + partition files + delta log) as generation
    /// `generation` and load every partition into memory under the
    /// manifest's metric. A delta log left stale by a compaction crash
    /// (older base version) is ignored; a damaged one is a typed error.
    pub fn load(dir: &Path, generation: u64) -> Result<Self> {
        let manifest = LakeManifest::read(dir)?;
        let lake = PartitionedLake::open(dir)?;
        let resident = match manifest.metric.as_str() {
            "euclidean" => ResidentLake::Euclidean(ResidentPartitions::load(&lake, Euclidean)?),
            "manhattan" => ResidentLake::Manhattan(ResidentPartitions::load(&lake, Manhattan)?),
            "chebyshev" => ResidentLake::Chebyshev(ResidentPartitions::load(&lake, Chebyshev)?),
            "angular" => ResidentLake::Angular(ResidentPartitions::load(&lake, Angular)?),
            other => {
                return Err(PexesoError::Corrupt(format!(
                    "manifest names unsupported metric '{other}'"
                )))
            }
        };
        let overlay = load_overlay(dir, &manifest)?;
        Ok(Self {
            lake,
            resident: Arc::new(resident),
            manifest,
            overlay,
            generation,
            dir: dir.to_path_buf(),
        })
    }

    /// The `APPLY` fast path: a new snapshot serving the *same resident
    /// base* as `prev` with a freshly replayed delta log. The caller
    /// (`SnapshotCell::apply_delta`) guarantees the manifest on disk
    /// still matches `prev`'s — otherwise the base must be reloaded.
    fn with_fresh_overlay(prev: &Snapshot, generation: u64) -> Result<Self> {
        let overlay = load_overlay(&prev.dir, &prev.manifest)?;
        Ok(Self {
            lake: PartitionedLake::open(&prev.dir)?,
            resident: prev.resident.clone(),
            manifest: prev.manifest.clone(),
            overlay,
            generation,
            dir: prev.dir.clone(),
        })
    }

    pub fn lake(&self) -> &PartitionedLake {
        &self.lake
    }

    pub fn manifest(&self) -> &LakeManifest {
        &self.manifest
    }

    pub fn dim(&self) -> usize {
        self.manifest.dim
    }

    /// Serve-side generation; bumps on every publish (reload or apply).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The delta overlay served on top of the resident base.
    pub fn overlay(&self) -> &AnyOverlay {
        &self.overlay
    }

    /// Live columns ingested since the base build.
    pub fn delta_columns(&self) -> usize {
        self.overlay.n_delta_columns()
    }

    /// Dropped tables tombstoned since the base build.
    pub fn delta_tombstones(&self) -> usize {
        self.overlay.n_tombstones()
    }

    /// Structural statistics of the whole served deployment — every
    /// resident partition walked read-only, plus the delta overlay's
    /// depth — for the `INSPECT` verb (see [`pexeso_core::inspect`]).
    pub fn inspect(&self) -> pexeso_core::inspect::IndexInspection {
        fn partitions<M: Metric>(
            r: &ResidentPartitions<M>,
        ) -> Vec<pexeso_core::inspect::PartitionInspection> {
            (0..r.num_partitions())
                .map(|i| r.partition(i).inspect())
                .collect()
        }
        let parts = match &*self.resident {
            ResidentLake::Euclidean(r) => partitions(r),
            ResidentLake::Manhattan(r) => partitions(r),
            ResidentLake::Chebyshev(r) => partitions(r),
            ResidentLake::Angular(r) => partitions(r),
        };
        pexeso_core::inspect::IndexInspection {
            partitions: parts,
            delta_columns: self.overlay.n_delta_columns() as u64,
            delta_vectors: self.overlay.n_delta_vectors() as u64,
            delta_tombstones: self.overlay.n_tombstones() as u64,
            delta_records: self.overlay.n_records() as u64,
        }
    }

    /// Reject a query whose metric does not match the one the indexes
    /// were built with — the pivot mappings would be invalid and results
    /// silently wrong, violating the exactness contract.
    fn check_metric(&self, requested: &str) -> Result<()> {
        if requested == self.manifest.metric {
            Ok(())
        } else {
            Err(PexesoError::InvalidParameter(format!(
                "index was built with metric '{}'; cannot serve '{requested}'",
                self.manifest.metric
            )))
        }
    }

    fn execute_overlaid<M: Metric>(
        &self,
        resident: &ResidentPartitions<M>,
        overlay: &DeltaOverlay<M>,
        query: &Query,
        vectors: &VectorStore,
    ) -> Result<QueryResponse> {
        overlay.execute_with_base(
            resident.num_partitions(),
            query,
            vectors,
            |i, inner, guard| execute_on_index(resident.partition(i), inner, vectors, guard),
        )
    }
}

/// Read and replay `dir`'s delta log against `manifest`. Stale logs
/// (compacted already) read as empty; the metric mismatch and damage
/// cases are typed errors — as is the debris of a compaction that
/// crashed mid-rebuild (partitions possibly mixing old and new builds):
/// replaying a still-current log over them would double-apply records.
fn load_overlay(dir: &Path, manifest: &LakeManifest) -> Result<AnyOverlay> {
    pexeso_delta::verify_no_crashed_compaction(dir, manifest)?;
    let state = match read_log(dir)? {
        Some(contents) => match check_header(&contents.header, manifest)? {
            LogStatus::Current => DeltaState::replay(&contents.records),
            LogStatus::Stale => DeltaState::default(),
        },
        None => DeltaState::default(),
    };
    AnyOverlay::from_state(&state, &manifest.metric, manifest.dim)
}

/// A snapshot answers the unified [`Query`] by checking the metric
/// expectation against its manifest and delegating to the matching
/// monomorphised resident backend, overlaid with the delta — the serve
/// dispatch runs the exact same engine every local backend uses, so a
/// served reply is byte-identical to querying the deployment (base +
/// delta log) directly.
impl Queryable for Snapshot {
    fn execute(&self, query: &Query, vectors: &VectorStore) -> Result<QueryResponse> {
        if let Some(expected) = query.metric.as_deref() {
            self.check_metric(expected)?;
        }
        match (&*self.resident, &self.overlay) {
            (ResidentLake::Euclidean(r), AnyOverlay::Euclidean(o)) => {
                self.execute_overlaid(r, o, query, vectors)
            }
            (ResidentLake::Manhattan(r), AnyOverlay::Manhattan(o)) => {
                self.execute_overlaid(r, o, query, vectors)
            }
            (ResidentLake::Chebyshev(r), AnyOverlay::Chebyshev(o)) => {
                self.execute_overlaid(r, o, query, vectors)
            }
            (ResidentLake::Angular(r), AnyOverlay::Angular(o)) => {
                self.execute_overlaid(r, o, query, vectors)
            }
            // Both halves are built from the same manifest metric; a
            // mismatch would mean the snapshot was assembled wrong.
            _ => Err(PexesoError::InvalidParameter(
                "snapshot base and delta overlay disagree on the metric".into(),
            )),
        }
    }
}

/// The swap point: a shared cell holding the current snapshot.
pub struct SnapshotCell {
    current: RwLock<Arc<Snapshot>>,
    /// Serializes whole publishes (load + publish). Without it two
    /// concurrent reloads could both read generation G and both publish
    /// G+1 — duplicate generations would alias result-cache keys across
    /// deployments.
    swap_lock: Mutex<()>,
}

impl SnapshotCell {
    /// Open `dir` as the first served snapshot (generation 1).
    pub fn open(dir: &Path) -> Result<Self> {
        let snapshot = Snapshot::load(dir, 1)?;
        Ok(Self {
            current: RwLock::new(Arc::new(snapshot)),
            swap_lock: Mutex::new(()),
        })
    }

    /// The snapshot new requests should use. Cheap (`Arc` clone under a
    /// read lock); call once per request and reuse the `Arc`.
    pub fn current(&self) -> Arc<Snapshot> {
        self.current.read().expect("snapshot cell poisoned").clone()
    }

    /// Hot swap: load `dir` (or re-load the currently served directory),
    /// then atomically publish it with the next generation. On any load
    /// error the served snapshot is left untouched — a bad re-index never
    /// takes down live traffic. Publishes serialize; generations are
    /// strictly increasing.
    pub fn swap(&self, dir: Option<&Path>) -> Result<Arc<Snapshot>> {
        let _swapping = self.swap_lock.lock().expect("swap lock poisoned");
        let old = self.current();
        let target = dir.unwrap_or_else(|| old.dir());
        // Expensive directory scan + full resident load happens outside
        // the write lock, so readers never block behind a slow disk.
        let fresh = Arc::new(Snapshot::load(target, old.generation() + 1)?);
        self.publish(fresh.clone());
        Ok(fresh)
    }

    /// The live-ingest publish: re-read the served directory's delta log
    /// and publish a new generation that *shares the resident base* with
    /// the current snapshot — no partition is reloaded. Falls back to a
    /// full load when the on-disk manifest's `index_version` no longer
    /// matches the resident one (a compaction or re-index finished: the
    /// log now describes a different base). On any error the served
    /// snapshot is untouched.
    pub fn apply_delta(&self) -> Result<Arc<Snapshot>> {
        let _swapping = self.swap_lock.lock().expect("swap lock poisoned");
        let old = self.current();
        let disk_manifest = LakeManifest::read(old.dir())?;
        let fresh = if disk_manifest.index_version == old.manifest().index_version {
            Arc::new(Snapshot::with_fresh_overlay(&old, old.generation() + 1)?)
        } else {
            Arc::new(Snapshot::load(old.dir(), old.generation() + 1)?)
        };
        self.publish(fresh.clone());
        Ok(fresh)
    }

    fn publish(&self, fresh: Arc<Snapshot>) {
        *self.current.write().expect("snapshot cell poisoned") = fresh;
    }
}
