//! Sharded LRU result cache.
//!
//! PEXESO queries are expensive to answer and cheap to replay: the result
//! of `(query fingerprint, τ, T/k, metric, snapshot generation)` never
//! changes while the snapshot is live, so the daemon memoises replies.
//! Keys are 64-bit fingerprints (see
//! [`crate::protocol::query_fingerprint`]); the snapshot generation is
//! folded into the key *and* the cache is cleared wholesale on hot swap —
//! the key keeps a stale entry from ever being served during the swap
//! window, the clear releases the memory.
//!
//! The cache is sharded by key so concurrent workers rarely contend on the
//! same mutex. Each shard is an independent true-LRU list (slab-backed
//! doubly linked list + hash map, O(1) get/insert/evict). A total capacity
//! of 0 disables caching entirely.

use std::collections::HashMap;
use std::sync::Mutex;

const NIL: usize = usize::MAX;

/// Aggregated counters across all shards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub len: usize,
    pub capacity: usize,
    pub shards: usize,
}

struct Entry<V> {
    key: u64,
    value: V,
    prev: usize,
    next: usize,
}

/// A single-shard LRU cache over `u64` keys. Public so the property tests
/// can drive one shard directly against a model.
pub struct LruCache<V> {
    capacity: usize,
    map: HashMap<u64, usize>,
    slab: Vec<Entry<V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl<V: Clone> LruCache<V> {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slab: Vec::with_capacity(capacity.min(1 << 16)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Unlink `slot` from the recency list (must currently be linked).
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    /// Link `slot` at the head (most recently used).
    fn link_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Look a key up, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<V> {
        match self.map.get(&key).copied() {
            Some(slot) => {
                self.hits += 1;
                if self.head != slot {
                    self.unlink(slot);
                    self.link_front(slot);
                }
                Some(self.slab[slot].value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a key, evicting the least-recently-used entry
    /// when at capacity. A capacity of 0 makes this a no-op.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slab[slot].value = value;
            if self.head != slot {
                self.unlink(slot);
                self.link_front(slot);
            }
            return;
        }
        if self.map.len() == self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
            self.evictions += 1;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s] = Entry {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                };
                s
            }
            None => {
                self.slab.push(Entry {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.link_front(slot);
        self.insertions += 1;
    }

    /// Drop every entry; counters survive (they describe lifetime traffic).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keys from most- to least-recently used (test/diagnostic hook).
    pub fn keys_by_recency(&self) -> Vec<u64> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut slot = self.head;
        while slot != NIL {
            keys.push(self.slab[slot].key);
            slot = self.slab[slot].next;
        }
        keys
    }

    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (self.hits, self.misses, self.insertions, self.evictions)
    }
}

/// The concurrent cache the server uses: `shards` independent LRU shards,
/// each behind its own mutex, selected by key.
pub struct ShardedCache<V> {
    shards: Vec<Mutex<LruCache<V>>>,
}

impl<V: Clone> ShardedCache<V> {
    /// `capacity` is the *total* entry budget, split evenly across
    /// `shards` (each shard gets at least one slot unless capacity is 0).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<LruCache<V>> {
        // Fibonacci-mix before picking the shard: keys are usually good
        // fingerprints already, but the cache must not degenerate to one
        // shard when a caller feeds it structured keys.
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 48) as usize % self.shards.len()]
    }

    pub fn get(&self, key: u64) -> Option<V> {
        self.shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key)
    }

    pub fn insert(&self, key: u64, value: V) {
        self.shard(key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value)
    }

    /// Wholesale invalidation (hot swap).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }

    pub fn stats(&self) -> CacheStats {
        let mut out = CacheStats {
            shards: self.shards.len(),
            ..Default::default()
        };
        for shard in &self.shards {
            let s = shard.lock().expect("cache shard poisoned");
            let (h, m, i, e) = s.counters();
            out.hits += h;
            out.misses += m;
            out.insertions += i;
            out.evictions += e;
            out.len += s.len();
            out.capacity += s.capacity();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(1), Some("a")); // 1 now most recent
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some("a"));
        assert_eq!(c.get(3), Some("c"));
        assert_eq!(c.keys_by_recency(), vec![3, 1]);
        let (hits, misses, insertions, evictions) = c.counters();
        assert_eq!((hits, misses, insertions, evictions), (3, 1, 3, 1));
    }

    #[test]
    fn refresh_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh, 1 becomes most recent
        c.insert(3, 30); // evicts 2, not 1
        assert_eq!(c.get(1), Some(11));
        assert_eq!(c.get(2), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert(1, 1);
        assert_eq!(c.get(1), None);
        assert!(c.is_empty());
        let sharded: ShardedCache<u32> = ShardedCache::new(0, 4);
        sharded.insert(9, 9);
        assert_eq!(sharded.get(9), None);
        assert_eq!(sharded.stats().capacity, 0);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let mut c = LruCache::new(4);
        c.insert(1, 1);
        c.get(1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
        let (hits, misses, ..) = c.counters();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn sharded_cache_round_trips_across_shards() {
        // Per-shard capacity 64: even a pathological shard imbalance
        // cannot evict any of the 64 keys.
        let cache = ShardedCache::new(512, 8);
        for key in 0..64u64 {
            cache.insert(key << 48 | key, key);
        }
        for key in 0..64u64 {
            assert_eq!(cache.get(key << 48 | key), Some(key));
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 64);
        assert_eq!(stats.insertions, 64);
        assert_eq!(stats.len, 64);
        assert_eq!(stats.shards, 8);
        cache.clear();
        assert_eq!(cache.stats().len, 0);
    }
}
