//! The wire protocol between `pexeso serve` and its clients.
//!
//! Every message is one length-prefixed frame: a `u32` little-endian
//! payload length followed by the payload. Request payloads start with the
//! magic `PXSV`, a protocol version byte, and a verb byte; reply payloads
//! start with a single kind byte. All integers are little-endian, strings
//! are `u32` length + UTF-8 bytes, and query vectors travel as raw `f32`
//! bits — the embedding happens client-side so the daemon stays agnostic
//! to embedder implementations.
//!
//! The protocol is deliberately synchronous per connection: a client sends
//! one request frame and reads one reply frame, any number of times, then
//! closes. Backpressure is explicit — an overloaded server answers a
//! connection with a [`Reply::Busy`] frame instead of queueing unboundedly.

use std::io::{Read, Write};

use pexeso_core::config::{ExecPolicy, JoinThreshold, LemmaFlags, Tau};
use pexeso_core::explain::{ExplainReport, FunnelStage, TopkExplain, TopkRound};
use pexeso_core::outofcore::GlobalHit;
use pexeso_core::query::{Exceeded, QueryOutcome};
use pexeso_core::trace::{QueryTrace, TraceLevel, TraceSpan};

/// First bytes of every request payload.
pub const MAGIC: &[u8; 4] = b"PXSV";
/// Current protocol version. Version 2 adds the optional per-query
/// options/budget extension to `SEARCH`/`TOPK` requests and the extended
/// `HITS` reply; version 3 adds the `APPLY` verb (publish a new serve
/// generation from the deployment's delta log without reloading the base
/// snapshot); version 4 adds the `BATCH` verb (many query columns in one
/// frame, answered by one `HITS_BATCH` reply) and the `fixed` execution
/// policy tag; version 5 adds the observability plane — the per-query
/// trace request (a trace-level tail on `SEARCH`/`TOPK`/`BATCH` frames,
/// answered with a span tree in the `HITS_V3`/`HITS_BATCH_V2` reply
/// kinds) and the `METRICS` (Prometheus text exposition) and `SLOW`
/// (slow-query log dump) verbs; version 6 adds the introspection plane —
/// a request-id/explain tail on query frames (fleet-wide correlation ids
/// and the EXPLAIN funnel in the `HITS_V4` reply kind) and the `INSPECT`
/// (index statistics), `HEALTH` (readiness/drain state), and `DRAIN`
/// (router replica drain toggle) verbs. Frames are stamped with the
/// lowest version that can carry them — extension-less queries stay V1
/// and extended queries V2, so every pre-delta server and client keeps
/// interoperating; only `APPLY` frames are V3, only batch/`fixed`-policy
/// frames are V4, only traced queries and the V5 verbs are V5, and only
/// correlated/explained queries and the new verbs are V6.
pub const PROTOCOL_VERSION: u8 = 6;
/// Version that introduced the query options/budget extension.
pub const QUERY_EXT_VERSION: u8 = 2;
/// Version that introduced the batch verb and the `fixed` policy tag.
pub const BATCH_VERSION: u8 = 4;
/// Version that introduced query tracing and the METRICS/SLOW verbs.
///
/// A V5 query frame swaps the tail-presence rule for an explicit layout:
/// after the threshold/k field come an ext-presence byte, the extension
/// if present, and a trace-level byte. Encoders only stamp V5 when the
/// trace level is not `Off`, so untraced requests keep their old (V1–V4)
/// shapes bit-for-bit and old servers keep answering them.
pub const TRACE_VERSION: u8 = 5;
/// Version that introduced the request-id/explain query tail and the
/// INSPECT/HEALTH/DRAIN verbs.
///
/// A V6 query frame extends the V5 explicit tail with a request-id
/// presence byte (plus the id), then an explain byte. Encoders only
/// stamp V6 when a request id or the explain flag is actually carried,
/// so uncorrelated requests keep their old (V1–V5) shapes bit-for-bit
/// and old servers keep answering them.
pub const REQUEST_ID_VERSION: u8 = 6;
/// Oldest request version the server still parses.
pub const MIN_PROTOCOL_VERSION: u8 = 1;
/// Hard cap on a single frame; anything larger is treated as garbage
/// framing rather than a legitimate request.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

const VERB_INFO: u8 = 0;
const VERB_SEARCH: u8 = 1;
const VERB_TOPK: u8 = 2;
const VERB_STATS: u8 = 3;
const VERB_RELOAD: u8 = 4;
const VERB_SHUTDOWN: u8 = 5;
const VERB_APPLY: u8 = 6;
const VERB_BATCH: u8 = 7;
/// V5: Prometheus text exposition of the server metrics.
const VERB_METRICS: u8 = 8;
/// V5: dump the slow-query log (slowest traced requests + phase trees).
const VERB_SLOW: u8 = 9;
/// V6: index-statistics inspection (per-partition shape, postings and
/// cell-occupancy histograms, delta overlay depth) as text.
const VERB_INSPECT: u8 = 10;
/// V6: readiness/health probe (ready/degraded/draining, generation,
/// queue facts; the router rolls shard replica health into one answer).
const VERB_HEALTH: u8 = 11;
/// V6: toggle the drain flag of one replica address (router only; a
/// shard daemon answers `ERR` — drain a shard by draining its address
/// on the router).
const VERB_DRAIN: u8 = 12;

const REPLY_INFO: u8 = 0;
const REPLY_HITS: u8 = 1;
const REPLY_STATS: u8 = 2;
const REPLY_RELOADED: u8 = 3;
const REPLY_SHUTTING_DOWN: u8 = 4;
/// V2 `HITS` reply carrying the outcome/stats extension. Only ever sent
/// in answer to a V2 request, so V1 clients never see this kind byte.
const REPLY_HITS_V2: u8 = 5;
/// Reply to the V3 `APPLY` verb; never sent to older clients (they
/// cannot encode the request).
const REPLY_APPLIED: u8 = 6;
/// Reply to the V4 `BATCH` verb: one `HITS`-shaped entry per query
/// column, in request order. Never sent to older clients.
const REPLY_HITS_BATCH: u8 = 7;
/// V5 `HITS` reply carrying a query trace (explicit-ext body + span
/// tree). Only ever sent in answer to a traced (V5) request.
const REPLY_HITS_V3: u8 = 8;
/// V5 `HITS_BATCH` reply whose entries carry per-entry trace trees. Only
/// ever sent in answer to a traced (V5) batch request.
const REPLY_HITS_BATCH_V2: u8 = 9;
/// V6 `HITS` reply carrying an EXPLAIN funnel (explicit-ext body, a
/// trace-presence byte + tree, then the report). Only ever sent in
/// answer to an explain-requesting (V6) request.
const REPLY_HITS_V4: u8 = 10;
/// A request popped off the queue after its own deadline already
/// elapsed: answered typed instead of computing a dead result.
const REPLY_DEADLINE_EXPIRED: u8 = 248;
/// Early load shedding: the queue crossed its soft watermark.
const REPLY_SHED: u8 = 249;
const REPLY_BUSY: u8 = 250;
const REPLY_ERR: u8 = 251;

/// Wire-level failure: transport I/O or a malformed frame.
#[derive(Debug)]
pub enum WireError {
    Io(std::io::Error),
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

type WireResult<T> = std::result::Result<T, WireError>;

/// The version-2 per-query options/budget extension of `SEARCH`/`TOPK`
/// frames. Its presence is what makes a request a V2 frame; V1 frames
/// decode with `ext: None` and the server applies the defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryExt {
    /// Lemma toggles (results never change; ablation/throughput knob).
    pub flags: LemmaFlags,
    /// Quick-browsing shortcut toggle.
    pub quick_browse: bool,
    /// Cap on exact distance computations; `None` = unlimited.
    pub max_distance_computations: Option<u64>,
    /// Wall-clock allowance in milliseconds; `None` = unlimited.
    pub deadline_ms: Option<u64>,
}

impl Default for QueryExt {
    fn default() -> Self {
        Self {
            flags: LemmaFlags::all(),
            quick_browse: true,
            max_distance_computations: None,
            deadline_ms: None,
        }
    }
}

/// The query half shared by `SEARCH` and `TOPK`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPayload {
    /// Distance metric name (`euclidean`, `manhattan`, `chebyshev`,
    /// `angular`); must match the metric the index was built with.
    pub metric: String,
    pub tau: Tau,
    /// Requested execution policy for this query; the server clamps the
    /// thread count to its own ceiling.
    pub policy: ExecPolicy,
    pub dim: u32,
    /// Row-major query vectors, `len = n * dim`.
    pub vectors: Vec<f32>,
    /// V2 options/budget extension; `None` encodes a V1 frame so old
    /// servers and clients interoperate.
    pub ext: Option<QueryExt>,
    /// V5 trace request. Anything but `Off` makes the frame V5 and asks
    /// the server to return its phase tree in the reply.
    pub trace: TraceLevel,
    /// V6 fleet-wide correlation id, minted at the outermost hop and
    /// propagated unchanged; `Some` makes the frame V6. Never part of
    /// the cache fingerprint — correlation must not split cache lines.
    pub request_id: Option<u64>,
    /// V6 explain request: `true` makes the frame V6 and asks the
    /// server to return the candidate funnel in a `HITS_V4` reply.
    pub explain: bool,
}

impl QueryPayload {
    /// Number of query vectors carried.
    pub fn n_vectors(&self) -> usize {
        if self.dim == 0 {
            0
        } else {
            self.vectors.len() / self.dim as usize
        }
    }
}

/// The ranking half of a V4 batch frame: one threshold or one k shared
/// by every column in the batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchMode {
    Search(JoinThreshold),
    Topk(u64),
}

/// A V4 batch request: the query criteria once, then many query columns.
/// The server answers with one [`Reply::HitsBatch`] whose `i`-th entry is
/// exactly what a solo `SEARCH`/`TOPK` over `columns[i]` would return —
/// batching changes one round-trip and one snapshot pin, never results.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBatch {
    /// Distance metric name; must match the index's metric.
    pub metric: String,
    pub tau: Tau,
    /// Requested execution policy; the server clamps the thread count.
    pub policy: ExecPolicy,
    pub mode: BatchMode,
    pub dim: u32,
    /// Row-major vectors per query column; `columns[i].len()` is a
    /// multiple of `dim`.
    pub columns: Vec<Vec<f32>>,
    /// Options/budget extension shared by every column in the batch.
    pub ext: Option<QueryExt>,
    /// V5 trace request, applied to every column in the batch.
    pub trace: TraceLevel,
    /// V6 correlation id for the whole batch (per-entry explain is not
    /// carried — explain solo queries instead).
    pub request_id: Option<u64>,
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Deployment facts a client needs before it can query (dimension,
    /// snapshot generation, partition count).
    Info,
    /// Threshold search: every column with ≥ T matching query records.
    Search {
        query: QueryPayload,
        t: JoinThreshold,
    },
    /// Top-k search: the k columns with the most matching query records.
    Topk { query: QueryPayload, k: u64 },
    /// Per-endpoint counters and latency quantiles as `key=value` text.
    Stats,
    /// V5: the server metrics in Prometheus text exposition format.
    Metrics,
    /// V5: the slow-query log — the slowest sampled/traced requests with
    /// their phase trees, slowest first.
    SlowLog,
    /// Atomically hot-swap the served snapshot: re-open the given
    /// directory (`None` = the currently served one) and bump the
    /// generation. In-flight queries finish on the old snapshot.
    Reload { dir: Option<String> },
    /// V3: replay the served directory's delta log over the *already
    /// resident* base snapshot and publish the result as a new
    /// generation — live ingest without reloading a single partition.
    /// Falls back to a full reload only if the base build itself changed
    /// underneath the daemon.
    ///
    /// `shard` is the V5 routed-ingest tail: a router receiving
    /// `Some(i)` forwards the APPLY to every replica of shard `i` only
    /// (the owning shard), leaving every other shard's generation
    /// untouched. A shard daemon ignores the field (it owns exactly one
    /// deployment); `None` encodes byte-identically to the historical
    /// bare V3 frame, so un-upgraded peers interoperate unchanged.
    ApplyDelta { shard: Option<u32> },
    /// V4: many query columns under one set of criteria, answered in one
    /// reply frame — `Queryable::execute_many` on the wire.
    Batch(QueryBatch),
    /// V6: index-statistics inspection as `key=value` text (per-partition
    /// shape, postings/cell-occupancy histograms, delta overlay depth).
    Inspect,
    /// V6: readiness probe — `status=ready|degraded|draining` plus
    /// generation and queue facts; the router answers with the fleet
    /// roll-up.
    Health,
    /// V6, router only: set/clear the drain flag of the replica at
    /// `addr` across every shard that has it. A drained replica stops
    /// receiving routed queries but stays connected for un-drain.
    Drain { addr: String, drained: bool },
    /// Stop accepting connections and exit once in-flight work drains.
    Shutdown,
}

/// One joinable column on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireHit {
    pub external_id: u64,
    pub table_name: String,
    pub column_name: String,
    pub match_count: u32,
}

impl From<&GlobalHit> for WireHit {
    fn from(h: &GlobalHit) -> Self {
        WireHit {
            external_id: h.external_id,
            table_name: h.table_name.clone(),
            column_name: h.column_name.clone(),
            match_count: h.match_count,
        }
    }
}

/// Reply to [`Request::Info`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfoReply {
    pub dim: u32,
    /// Serve-side snapshot generation; bumps on every hot swap.
    pub generation: u64,
    /// `index_version` from the deployment manifest.
    pub index_version: u64,
    pub partitions: u32,
    pub disk_bytes: u64,
}

/// The V2 `HITS` reply extension: the unified query outcome plus the
/// verification cost, so remote callers get the same exactness contract
/// local backends report. Cached replies carry `QueryOutcome::Exact` and
/// zero distance computations (only exact results are ever cached).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitsExt {
    pub outcome: QueryOutcome,
    pub distance_computations: u64,
}

/// Reply to [`Request::Search`] / [`Request::Topk`].
#[derive(Debug, Clone, PartialEq)]
pub struct HitsReply {
    /// Generation of the snapshot that answered (or populated the cached
    /// entry for) this query.
    pub generation: u64,
    /// True when the reply was served from the result cache.
    pub cached: bool,
    pub hits: Vec<WireHit>,
    /// Outcome/stats extension, present iff the request was a V2 frame.
    pub ext: Option<HitsExt>,
    /// Server-side phase tree, present iff the request asked for a trace
    /// (V5). Cached replies carry no trace — traced requests bypass the
    /// result cache so the tree always describes *this* execution.
    pub trace: Option<QueryTrace>,
    /// Server-side EXPLAIN funnel, present iff the request asked for one
    /// (V6). Like traces, explain-requesting queries bypass the result
    /// cache so the funnel always describes *this* execution. Boxed so
    /// the common explain-free reply doesn't pay the report's footprint.
    pub explain: Option<Box<ExplainReport>>,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    Info(InfoReply),
    Hits(HitsReply),
    /// Reply to [`Request::Batch`]: one [`HitsReply`] per query column,
    /// in request order.
    HitsBatch(Vec<HitsReply>),
    Stats {
        text: String,
    },
    Reloaded {
        generation: u64,
        partitions: u32,
    },
    /// Reply to [`Request::ApplyDelta`]: the new generation plus the
    /// overlay shape it serves.
    Applied {
        generation: u64,
        delta_columns: u64,
        tombstones: u64,
    },
    ShuttingDown,
    /// Explicit backpressure: worker pool and request queue are full.
    Busy,
    /// Early load shedding: the connection queue crossed its *soft*
    /// watermark, so the server rejected this connection before the hard
    /// BUSY limit — semantically identical to `Busy` for the caller
    /// (retry elsewhere / back off), but counted separately so operators
    /// can see degradation begin before saturation.
    Shed,
    /// The request's deadline budget had already elapsed while it waited
    /// in the queue; the server refused to compute a dead answer.
    /// Carries how long the request waited before being popped.
    DeadlineExpired {
        waited_ms: u64,
    },
    Err {
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame. `Ok(None)` means the peer closed the
/// connection cleanly before starting a new frame.
pub fn read_frame(r: &mut impl Read) -> WireResult<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_bytes[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Malformed("eof inside frame length".into())),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Malformed(format!(
            "frame of {len} bytes exceeds cap {MAX_FRAME_BYTES}"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| WireError::Malformed(format!("eof inside frame body: {e}")))?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Payload encoding primitives
// ---------------------------------------------------------------------------

struct ByteWriter(Vec<u8>);

impl ByteWriter {
    fn new() -> Self {
        ByteWriter(Vec::new())
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn f32_slice(&mut self, data: &[f32]) {
        self.0.reserve(data.len() * 4);
        for v in data {
            self.0.extend_from_slice(&v.to_le_bytes());
        }
    }
}

struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }
    fn bytes(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError::Malformed("truncated payload".into()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> WireResult<u8> {
        Ok(self.bytes(1)?[0])
    }
    /// Whether any payload bytes remain unread. The options/budget
    /// extension sits at the tail of SEARCH/TOPK frames, so its presence
    /// is "bytes remain" — the same prefix-layout rule that lets a V2
    /// decoder accept a V1 frame.
    fn has_remaining(&self) -> bool {
        self.pos < self.buf.len()
    }
    fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> WireResult<f32> {
        Ok(f32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn str(&mut self, limit: u32) -> WireResult<String> {
        let len = self.u32()?;
        if len > limit {
            return Err(WireError::Malformed(format!(
                "string of {len} bytes exceeds limit {limit}"
            )));
        }
        let bytes = self.bytes(len as usize)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::Malformed(format!("invalid utf-8: {e}")))
    }
    fn f32_vec(&mut self, n: usize) -> WireResult<Vec<f32>> {
        let raw = self
            .bytes(n.checked_mul(4).ok_or_else(|| {
                WireError::Malformed(format!("f32 vector length {n} overflows"))
            })?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
    fn finish(&self) -> WireResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing bytes in payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn put_tau(w: &mut ByteWriter, tau: Tau) {
    match tau {
        Tau::Absolute(v) => {
            w.u8(0);
            w.f32(v);
        }
        Tau::Ratio(v) => {
            w.u8(1);
            w.f32(v);
        }
    }
}

fn take_tau(r: &mut ByteReader) -> WireResult<Tau> {
    match r.u8()? {
        0 => Ok(Tau::Absolute(r.f32()?)),
        1 => Ok(Tau::Ratio(r.f32()?)),
        t => Err(WireError::Malformed(format!("unknown tau tag {t}"))),
    }
}

fn put_threshold(w: &mut ByteWriter, t: JoinThreshold) {
    match t {
        JoinThreshold::Count(c) => {
            w.u8(0);
            w.u64(c as u64);
        }
        JoinThreshold::Ratio(rat) => {
            w.u8(1);
            w.f64(rat);
        }
    }
}

fn take_threshold(r: &mut ByteReader) -> WireResult<JoinThreshold> {
    match r.u8()? {
        0 => Ok(JoinThreshold::Count(r.u64()? as usize)),
        1 => Ok(JoinThreshold::Ratio(r.f64()?)),
        t => Err(WireError::Malformed(format!("unknown threshold tag {t}"))),
    }
}

fn put_policy(w: &mut ByteWriter, p: ExecPolicy) {
    match p {
        ExecPolicy::Sequential => {
            w.u8(0);
            w.u32(0);
        }
        ExecPolicy::Parallel { threads } => {
            w.u8(1);
            w.u32(threads as u32);
        }
        // V4 tag: pre-V4 decoders reject it as an unknown tag, and the
        // encoder stamps any frame carrying it with BATCH_VERSION so
        // old servers refuse cleanly at the version check instead.
        ExecPolicy::Fixed { threads } => {
            w.u8(2);
            w.u32(threads as u32);
        }
    }
}

fn take_policy(r: &mut ByteReader) -> WireResult<ExecPolicy> {
    let tag = r.u8()?;
    let threads = r.u32()? as usize;
    match tag {
        0 => Ok(ExecPolicy::Sequential),
        1 => Ok(ExecPolicy::Parallel { threads }),
        2 => Ok(ExecPolicy::Fixed {
            threads: threads.max(1),
        }),
        t => Err(WireError::Malformed(format!("unknown policy tag {t}"))),
    }
}

fn put_query(w: &mut ByteWriter, q: &QueryPayload) {
    w.str(&q.metric);
    put_tau(w, q.tau);
    put_policy(w, q.policy);
    w.u32(q.dim);
    w.u32(q.n_vectors() as u32);
    w.f32_slice(&q.vectors);
}

fn take_query(r: &mut ByteReader) -> WireResult<QueryPayload> {
    let metric = r.str(64)?;
    let tau = take_tau(r)?;
    let policy = take_policy(r)?;
    let dim = r.u32()?;
    let n = r.u32()?;
    if dim == 0 {
        return Err(WireError::Malformed("query dimension is zero".into()));
    }
    let vectors = r.f32_vec(n as usize * dim as usize)?;
    Ok(QueryPayload {
        metric,
        tau,
        policy,
        dim,
        vectors,
        ext: None,
        trace: TraceLevel::Off,
        request_id: None,
        explain: false,
    })
}

fn put_opt_u64(w: &mut ByteWriter, v: Option<u64>) {
    match v {
        None => w.u8(0),
        Some(x) => {
            w.u8(1);
            w.u64(x);
        }
    }
}

fn take_opt_u64(r: &mut ByteReader) -> WireResult<Option<u64>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        t => Err(WireError::Malformed(format!("unknown option tag {t}"))),
    }
}

/// The V2 options/budget extension, appended after the request's
/// threshold/k field. Lemma flags travel as a 4-bit mask.
fn put_query_ext(w: &mut ByteWriter, ext: &QueryExt) {
    let mut mask = 0u8;
    if ext.flags.lemma1_vector_filter {
        mask |= 1;
    }
    if ext.flags.lemma2_vector_match {
        mask |= 2;
    }
    if ext.flags.lemma34_cell_filter {
        mask |= 4;
    }
    if ext.flags.lemma56_cell_match {
        mask |= 8;
    }
    w.u8(mask);
    w.u8(ext.quick_browse as u8);
    put_opt_u64(w, ext.max_distance_computations);
    put_opt_u64(w, ext.deadline_ms);
}

fn take_query_ext(r: &mut ByteReader) -> WireResult<QueryExt> {
    let mask = r.u8()?;
    if mask & !0xf != 0 {
        return Err(WireError::Malformed(format!(
            "unknown lemma bits {mask:#x}"
        )));
    }
    let flags = LemmaFlags {
        lemma1_vector_filter: mask & 1 != 0,
        lemma2_vector_match: mask & 2 != 0,
        lemma34_cell_filter: mask & 4 != 0,
        lemma56_cell_match: mask & 8 != 0,
    };
    let quick_browse = r.u8()? != 0;
    let max_distance_computations = take_opt_u64(r)?;
    let deadline_ms = take_opt_u64(r)?;
    Ok(QueryExt {
        flags,
        quick_browse,
        max_distance_computations,
        deadline_ms,
    })
}

/// The tail of a `SEARCH`/`TOPK` frame after the threshold/k field.
/// Untraced frames keep the historical tail-presence layout (the
/// extension simply is or isn't there, and its presence makes the frame
/// V2+); traced frames are V5 and use the explicit layout: an
/// ext-presence byte, the extension if present, then the trace level.
/// Decode the tail written by [`put_query_tail`]. V5 frames carry the
/// explicit ext-presence + trace-level layout; older frames keep the
/// tail-presence rule (not version-implied: a V4 stamp can come from the
/// `Fixed` policy tag alone, with no extension encoded).
fn take_query_tail(r: &mut ByteReader, version: u8, query: &mut QueryPayload) -> WireResult<()> {
    if version >= TRACE_VERSION {
        match r.u8()? {
            0 => {}
            1 => query.ext = Some(take_query_ext(r)?),
            t => return Err(WireError::Malformed(format!("unknown ext tag {t}"))),
        }
        query.trace = TraceLevel::from_u8(r.u8()?);
        // The V6 request-id/explain tail. Presence-tolerant (mirroring
        // the APPLY shard tail): a V6 stamp without the tail decodes as
        // an uncorrelated, unexplained query.
        if version >= REQUEST_ID_VERSION && r.has_remaining() {
            query.request_id = take_opt_u64(r)?;
            query.explain = r.u8()? != 0;
        }
    } else if version >= QUERY_EXT_VERSION && r.has_remaining() {
        query.ext = Some(take_query_ext(r)?);
    }
    Ok(())
}

fn put_query_tail(w: &mut ByteWriter, q: &QueryPayload) {
    let v6 = q.request_id.is_some() || q.explain;
    if q.trace.enabled() || v6 {
        match &q.ext {
            None => w.u8(0),
            Some(ext) => {
                w.u8(1);
                put_query_ext(w, ext);
            }
        }
        w.u8(q.trace.as_u8());
        if v6 {
            put_opt_u64(w, q.request_id);
            w.u8(q.explain as u8);
        }
    } else if let Some(ext) = &q.ext {
        put_query_ext(w, ext);
    }
}

/// Recursion/size limits for decoding a span tree from the wire: deeper
/// or wider trees are treated as garbage, not a reason to recurse to a
/// stack overflow.
const MAX_TRACE_DEPTH: usize = 16;
const MAX_TRACE_SPANS: u32 = 4096;

fn put_span(w: &mut ByteWriter, s: &TraceSpan) {
    w.str(&s.name);
    w.u64(s.start_us);
    w.u64(s.duration_us);
    w.u32(s.counters.len() as u32);
    for (k, v) in &s.counters {
        w.str(k);
        w.u64(*v);
    }
    w.u32(s.children.len() as u32);
    for c in &s.children {
        put_span(w, c);
    }
}

fn take_span(r: &mut ByteReader, depth: usize, budget: &mut u32) -> WireResult<TraceSpan> {
    if depth > MAX_TRACE_DEPTH {
        return Err(WireError::Malformed("trace tree too deep".into()));
    }
    *budget = budget
        .checked_sub(1)
        .ok_or_else(|| WireError::Malformed("trace tree too large".into()))?;
    let name = r.str(256)?;
    let start_us = r.u64()?;
    let duration_us = r.u64()?;
    let n_counters = r.u32()?;
    if n_counters > 256 {
        return Err(WireError::Malformed("too many span counters".into()));
    }
    let mut counters = Vec::with_capacity(n_counters as usize);
    for _ in 0..n_counters {
        let k = r.str(256)?;
        let v = r.u64()?;
        counters.push((k, v));
    }
    let n_children = r.u32()?;
    if n_children > MAX_TRACE_SPANS {
        return Err(WireError::Malformed("too many child spans".into()));
    }
    let mut children = Vec::with_capacity(n_children.min(256) as usize);
    for _ in 0..n_children {
        children.push(take_span(r, depth + 1, budget)?);
    }
    Ok(TraceSpan {
        name,
        start_us,
        duration_us,
        counters,
        children,
    })
}

fn put_trace(w: &mut ByteWriter, t: &QueryTrace) {
    put_span(w, &t.root);
}

fn take_trace(r: &mut ByteReader) -> WireResult<QueryTrace> {
    let mut budget = MAX_TRACE_SPANS;
    Ok(QueryTrace {
        root: take_span(r, 0, &mut budget)?,
    })
}

/// Size limits for decoding an EXPLAIN report: anything larger is
/// treated as garbage, like an oversized trace tree.
const MAX_EXPLAIN_STAGES: u32 = 64;
const MAX_EXPLAIN_REASONS: u32 = 64;
const MAX_EXPLAIN_DECISIONS: u32 = 256;
const MAX_EXPLAIN_ROUNDS: u32 = 1 << 16;
const MAX_EXPLAIN_COLUMNS: u32 = 4096;

fn put_opt_u32(w: &mut ByteWriter, v: Option<u32>) {
    match v {
        None => w.u8(0),
        Some(x) => {
            w.u8(1);
            w.u32(x);
        }
    }
}

fn take_opt_u32(r: &mut ByteReader) -> WireResult<Option<u32>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u32()?)),
        t => Err(WireError::Malformed(format!("unknown option tag {t}"))),
    }
}

fn put_explain(w: &mut ByteWriter, e: &ExplainReport) {
    w.str(&e.mode);
    w.u32(e.stages.len() as u32);
    for s in &e.stages {
        w.str(&s.name);
        w.str(&s.unit);
        w.u64(s.input);
        w.u32(s.pruned.len() as u32);
        for (reason, n) in &s.pruned {
            w.str(reason);
            w.u64(*n);
        }
        w.u64(s.output);
    }
    w.u32(e.decisions.len() as u32);
    for d in &e.decisions {
        w.str(d);
    }
    match &e.topk {
        None => w.u8(0),
        Some(t) => {
            w.u8(1);
            put_opt_u32(w, t.seed);
            w.u64(t.survivors);
            w.u32(t.rounds.len() as u32);
            for round in &t.rounds {
                put_opt_u32(w, round.bar);
                w.u32(round.batch);
                w.u32(round.pruned);
            }
            w.u32(t.pruned_columns.len() as u32);
            for (c, ub) in &t.pruned_columns {
                w.u32(*c);
                w.u32(*ub);
            }
            w.u8(t.suffix_stop as u8);
        }
    }
}

fn take_explain(r: &mut ByteReader) -> WireResult<ExplainReport> {
    let mode = r.str(64)?;
    let n_stages = r.u32()?;
    if n_stages > MAX_EXPLAIN_STAGES {
        return Err(WireError::Malformed("too many explain stages".into()));
    }
    let mut stages = Vec::with_capacity(n_stages as usize);
    for _ in 0..n_stages {
        let name = r.str(256)?;
        let unit = r.str(256)?;
        let input = r.u64()?;
        let n_pruned = r.u32()?;
        if n_pruned > MAX_EXPLAIN_REASONS {
            return Err(WireError::Malformed(
                "too many explain prune reasons".into(),
            ));
        }
        let mut pruned = Vec::with_capacity(n_pruned as usize);
        for _ in 0..n_pruned {
            let reason = r.str(256)?;
            let n = r.u64()?;
            pruned.push((reason, n));
        }
        let output = r.u64()?;
        stages.push(FunnelStage {
            name,
            unit,
            input,
            pruned,
            output,
        });
    }
    let n_decisions = r.u32()?;
    if n_decisions > MAX_EXPLAIN_DECISIONS {
        return Err(WireError::Malformed("too many explain decisions".into()));
    }
    let mut decisions = Vec::with_capacity(n_decisions as usize);
    for _ in 0..n_decisions {
        decisions.push(r.str(4096)?);
    }
    let topk = match r.u8()? {
        0 => None,
        1 => {
            let seed = take_opt_u32(r)?;
            let survivors = r.u64()?;
            let n_rounds = r.u32()?;
            if n_rounds > MAX_EXPLAIN_ROUNDS {
                return Err(WireError::Malformed("too many explain rounds".into()));
            }
            let mut rounds = Vec::with_capacity(n_rounds.min(1 << 10) as usize);
            for _ in 0..n_rounds {
                rounds.push(TopkRound {
                    bar: take_opt_u32(r)?,
                    batch: r.u32()?,
                    pruned: r.u32()?,
                });
            }
            let n_cols = r.u32()?;
            if n_cols > MAX_EXPLAIN_COLUMNS {
                return Err(WireError::Malformed("too many explain columns".into()));
            }
            let mut pruned_columns = Vec::with_capacity(n_cols as usize);
            for _ in 0..n_cols {
                let c = r.u32()?;
                let ub = r.u32()?;
                pruned_columns.push((c, ub));
            }
            let suffix_stop = r.u8()? != 0;
            Some(TopkExplain {
                seed,
                survivors,
                rounds,
                pruned_columns,
                suffix_stop,
            })
        }
        t => return Err(WireError::Malformed(format!("unknown explain tag {t}"))),
    };
    Ok(ExplainReport {
        mode,
        stages,
        decisions,
        topk,
    })
}

fn put_outcome(w: &mut ByteWriter, outcome: QueryOutcome) {
    w.u8(match outcome {
        QueryOutcome::Exact => 0,
        QueryOutcome::Exceeded(Exceeded::DistanceComputations) => 1,
        QueryOutcome::Exceeded(Exceeded::Deadline) => 2,
    })
}

fn take_outcome(r: &mut ByteReader) -> WireResult<QueryOutcome> {
    match r.u8()? {
        0 => Ok(QueryOutcome::Exact),
        1 => Ok(QueryOutcome::Exceeded(Exceeded::DistanceComputations)),
        2 => Ok(QueryOutcome::Exceeded(Exceeded::Deadline)),
        t => Err(WireError::Malformed(format!("unknown outcome tag {t}"))),
    }
}

/// The shared body of a `HITS`-shaped reply. Solo replies signal the
/// extension through the kind byte (`HITS` vs `HITS_V2`), so
/// `explicit_ext` is false; batch entries have no per-entry kind byte and
/// carry an explicit presence byte instead.
fn put_hits_body(w: &mut ByteWriter, h: &HitsReply, explicit_ext: bool) {
    w.u64(h.generation);
    w.u8(h.cached as u8);
    if explicit_ext {
        w.u8(h.ext.is_some() as u8);
    }
    if let Some(ext) = &h.ext {
        put_outcome(w, ext.outcome);
        w.u64(ext.distance_computations);
    }
    w.u32(h.hits.len() as u32);
    for hit in &h.hits {
        w.u64(hit.external_id);
        w.str(&hit.table_name);
        w.str(&hit.column_name);
        w.u32(hit.match_count);
    }
}

/// Decode the body written by [`put_hits_body`]. `known_ext` is
/// `Some(has_ext)` when the kind byte already decided it (solo replies)
/// and `None` when an explicit presence byte follows (batch entries).
fn take_hits_body(r: &mut ByteReader, known_ext: Option<bool>) -> WireResult<HitsReply> {
    let generation = r.u64()?;
    let cached = r.u8()? != 0;
    let has_ext = match known_ext {
        Some(b) => b,
        None => r.u8()? != 0,
    };
    let ext = if has_ext {
        Some(HitsExt {
            outcome: take_outcome(r)?,
            distance_computations: r.u64()?,
        })
    } else {
        None
    };
    let n = r.u32()? as usize;
    let mut hits = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        hits.push(WireHit {
            external_id: r.u64()?,
            table_name: r.str(1 << 16)?,
            column_name: r.str(1 << 16)?,
            match_count: r.u32()?,
        });
    }
    Ok(HitsReply {
        generation,
        cached,
        hits,
        ext,
        trace: None,
        explain: None,
    })
}

// ---------------------------------------------------------------------------
// Request / reply codecs
// ---------------------------------------------------------------------------

/// Encode a request into a frame payload. Every frame is stamped with
/// the lowest protocol version able to carry it: query verbs with the
/// options/budget extension are version 2 (the V1 byte layout is a
/// strict prefix of the V2 one), `APPLY` is version 3, `BATCH` and any
/// frame carrying a `fixed` execution policy is version 4, and
/// everything else — including extension-less query frames — stays
/// version 1, so an un-upgraded server keeps answering everything it
/// can.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.0.extend_from_slice(MAGIC);
    let version = match req {
        Request::Search { query, .. } | Request::Topk { query, .. }
            if query.request_id.is_some() || query.explain =>
        {
            REQUEST_ID_VERSION
        }
        Request::Search { query, .. } | Request::Topk { query, .. } if query.trace.enabled() => {
            TRACE_VERSION
        }
        Request::Search { query, .. } | Request::Topk { query, .. }
            if matches!(query.policy, ExecPolicy::Fixed { .. }) =>
        {
            BATCH_VERSION
        }
        Request::Search { query, .. } | Request::Topk { query, .. } if query.ext.is_some() => {
            QUERY_EXT_VERSION
        }
        // A routed APPLY names its target shard in a V5 tail; the bare
        // form stays the historical V3 frame, byte for byte.
        Request::ApplyDelta { shard: Some(_) } => TRACE_VERSION,
        Request::ApplyDelta { shard: None } => 3,
        Request::Batch(b) if b.request_id.is_some() => REQUEST_ID_VERSION,
        Request::Batch(b) if b.trace.enabled() => TRACE_VERSION,
        Request::Batch(_) => BATCH_VERSION,
        Request::Metrics | Request::SlowLog => TRACE_VERSION,
        Request::Inspect | Request::Health | Request::Drain { .. } => REQUEST_ID_VERSION,
        _ => MIN_PROTOCOL_VERSION,
    };
    w.u8(version);
    match req {
        Request::Info => w.u8(VERB_INFO),
        Request::Search { query, t } => {
            w.u8(VERB_SEARCH);
            put_query(&mut w, query);
            put_threshold(&mut w, *t);
            put_query_tail(&mut w, query);
        }
        Request::Topk { query, k } => {
            w.u8(VERB_TOPK);
            put_query(&mut w, query);
            w.u64(*k);
            put_query_tail(&mut w, query);
        }
        Request::Stats => w.u8(VERB_STATS),
        Request::Metrics => w.u8(VERB_METRICS),
        Request::SlowLog => w.u8(VERB_SLOW),
        Request::Inspect => w.u8(VERB_INSPECT),
        Request::Health => w.u8(VERB_HEALTH),
        Request::Drain { addr, drained } => {
            w.u8(VERB_DRAIN);
            w.str(addr);
            w.u8(*drained as u8);
        }
        Request::Reload { dir } => {
            w.u8(VERB_RELOAD);
            w.str(dir.as_deref().unwrap_or(""));
        }
        Request::ApplyDelta { shard } => {
            w.u8(VERB_APPLY);
            if let Some(shard) = shard {
                w.u32(*shard);
            }
        }
        Request::Batch(batch) => {
            w.u8(VERB_BATCH);
            w.str(&batch.metric);
            put_tau(&mut w, batch.tau);
            put_policy(&mut w, batch.policy);
            match batch.mode {
                BatchMode::Search(t) => {
                    w.u8(0);
                    put_threshold(&mut w, t);
                }
                BatchMode::Topk(k) => {
                    w.u8(1);
                    w.u64(k);
                }
            }
            w.u32(batch.dim);
            w.u32(batch.columns.len() as u32);
            for col in &batch.columns {
                w.u32((col.len() / batch.dim.max(1) as usize) as u32);
                w.f32_slice(col);
            }
            // Batch frames are always V4+, so ext presence is an explicit
            // byte rather than version-implied as in SEARCH/TOPK.
            match &batch.ext {
                None => w.u8(0),
                Some(ext) => {
                    w.u8(1);
                    put_query_ext(&mut w, ext);
                }
            }
            // The V5 trace level rides at the tail; its presence is what
            // made the frame V5 in the first place. A V6 (correlated)
            // batch always writes the trace byte — even `Off` — so the
            // request-id tail that follows is unambiguous.
            if batch.trace.enabled() || batch.request_id.is_some() {
                w.u8(batch.trace.as_u8());
            }
            if batch.request_id.is_some() {
                put_opt_u64(&mut w, batch.request_id);
            }
        }
        Request::Shutdown => w.u8(VERB_SHUTDOWN),
    }
    w.0
}

/// Decode a frame payload into a request. Accepts every version from
/// [`MIN_PROTOCOL_VERSION`] to [`PROTOCOL_VERSION`]: V1 query frames
/// decode with `ext: None`, V2 frames carry the trailing extension.
pub fn decode_request(payload: &[u8]) -> WireResult<Request> {
    let mut r = ByteReader::new(payload);
    if r.bytes(4)? != MAGIC {
        return Err(WireError::Malformed("bad request magic".into()));
    }
    let version = r.u8()?;
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(WireError::Malformed(format!(
            "protocol version {version} unsupported \
             (want {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
        )));
    }
    let req = match r.u8()? {
        VERB_INFO => Request::Info,
        VERB_SEARCH => {
            let mut query = take_query(&mut r)?;
            let t = take_threshold(&mut r)?;
            take_query_tail(&mut r, version, &mut query)?;
            Request::Search { query, t }
        }
        VERB_TOPK => {
            let mut query = take_query(&mut r)?;
            let k = r.u64()?;
            take_query_tail(&mut r, version, &mut query)?;
            Request::Topk { query, k }
        }
        VERB_STATS => Request::Stats,
        VERB_METRICS => {
            if version < TRACE_VERSION {
                return Err(WireError::Malformed(format!(
                    "METRICS verb requires protocol version {TRACE_VERSION}, \
                     frame is version {version}"
                )));
            }
            Request::Metrics
        }
        VERB_SLOW => {
            if version < TRACE_VERSION {
                return Err(WireError::Malformed(format!(
                    "SLOW verb requires protocol version {TRACE_VERSION}, \
                     frame is version {version}"
                )));
            }
            Request::SlowLog
        }
        VERB_INSPECT => {
            if version < REQUEST_ID_VERSION {
                return Err(WireError::Malformed(format!(
                    "INSPECT verb requires protocol version {REQUEST_ID_VERSION}, \
                     frame is version {version}"
                )));
            }
            Request::Inspect
        }
        VERB_HEALTH => {
            if version < REQUEST_ID_VERSION {
                return Err(WireError::Malformed(format!(
                    "HEALTH verb requires protocol version {REQUEST_ID_VERSION}, \
                     frame is version {version}"
                )));
            }
            Request::Health
        }
        VERB_DRAIN => {
            if version < REQUEST_ID_VERSION {
                return Err(WireError::Malformed(format!(
                    "DRAIN verb requires protocol version {REQUEST_ID_VERSION}, \
                     frame is version {version}"
                )));
            }
            let addr = r.str(4096)?;
            let drained = r.u8()? != 0;
            Request::Drain { addr, drained }
        }
        VERB_RELOAD => {
            let dir = r.str(4096)?;
            Request::Reload {
                dir: if dir.is_empty() { None } else { Some(dir) },
            }
        }
        VERB_APPLY => {
            // Version-gated: an APPLY can only arrive in a frame that
            // promises V3 semantics; in an older frame the byte is junk.
            if version < 3 {
                return Err(WireError::Malformed(format!(
                    "APPLY verb requires protocol version 3, frame is version {version}"
                )));
            }
            // Tail presence spells the routed form (V5 stamps it, but
            // presence is what matters — mirroring the pre-V5 ext rule).
            let shard = if r.has_remaining() {
                Some(r.u32()?)
            } else {
                None
            };
            Request::ApplyDelta { shard }
        }
        VERB_BATCH => {
            if version < BATCH_VERSION {
                return Err(WireError::Malformed(format!(
                    "BATCH verb requires protocol version {BATCH_VERSION}, \
                     frame is version {version}"
                )));
            }
            let metric = r.str(64)?;
            let tau = take_tau(&mut r)?;
            let policy = take_policy(&mut r)?;
            let mode = match r.u8()? {
                0 => BatchMode::Search(take_threshold(&mut r)?),
                1 => BatchMode::Topk(r.u64()?),
                t => return Err(WireError::Malformed(format!("unknown batch mode tag {t}"))),
            };
            let dim = r.u32()?;
            if dim == 0 {
                return Err(WireError::Malformed("query dimension is zero".into()));
            }
            let n_columns = r.u32()? as usize;
            let mut columns = Vec::with_capacity(n_columns.min(1 << 16));
            for _ in 0..n_columns {
                let n = r.u32()? as usize;
                columns.push(r.f32_vec(n * dim as usize)?);
            }
            let ext = match r.u8()? {
                0 => None,
                1 => Some(take_query_ext(&mut r)?),
                t => return Err(WireError::Malformed(format!("unknown ext tag {t}"))),
            };
            let trace = if version >= TRACE_VERSION && r.has_remaining() {
                TraceLevel::from_u8(r.u8()?)
            } else {
                TraceLevel::Off
            };
            let request_id = if version >= REQUEST_ID_VERSION && r.has_remaining() {
                take_opt_u64(&mut r)?
            } else {
                None
            };
            Request::Batch(QueryBatch {
                metric,
                tau,
                policy,
                mode,
                dim,
                columns,
                ext,
                trace,
                request_id,
            })
        }
        VERB_SHUTDOWN => Request::Shutdown,
        v => return Err(WireError::Malformed(format!("unknown verb {v}"))),
    };
    r.finish()?;
    Ok(req)
}

/// Encode a reply into a frame payload.
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match reply {
        Reply::Info(info) => {
            w.u8(REPLY_INFO);
            w.u32(info.dim);
            w.u64(info.generation);
            w.u64(info.index_version);
            w.u32(info.partitions);
            w.u64(info.disk_bytes);
        }
        Reply::Hits(h) => {
            // Kind bytes escalate with content: V4 only when an EXPLAIN
            // report is present (answering a V6 request), V3 only when a
            // trace is (answering a V5 request), V2 only when the
            // extension is (answering a V2+ request) — old clients never
            // receive a kind they cannot parse.
            if let Some(explain) = &h.explain {
                w.u8(REPLY_HITS_V4);
                put_hits_body(&mut w, h, true);
                match &h.trace {
                    None => w.u8(0),
                    Some(t) => {
                        w.u8(1);
                        put_trace(&mut w, t);
                    }
                }
                put_explain(&mut w, explain);
            } else if let Some(trace) = &h.trace {
                w.u8(REPLY_HITS_V3);
                put_hits_body(&mut w, h, true);
                put_trace(&mut w, trace);
            } else {
                w.u8(if h.ext.is_some() {
                    REPLY_HITS_V2
                } else {
                    REPLY_HITS
                });
                put_hits_body(&mut w, h, false);
            }
        }
        Reply::HitsBatch(items) => {
            // The V2 batch kind is only used when some entry carries a
            // trace — again, never sent to a client that didn't ask.
            if items.iter().any(|h| h.trace.is_some()) {
                w.u8(REPLY_HITS_BATCH_V2);
                w.u32(items.len() as u32);
                for h in items {
                    put_hits_body(&mut w, h, true);
                    match &h.trace {
                        None => w.u8(0),
                        Some(t) => {
                            w.u8(1);
                            put_trace(&mut w, t);
                        }
                    }
                }
            } else {
                w.u8(REPLY_HITS_BATCH);
                w.u32(items.len() as u32);
                for h in items {
                    put_hits_body(&mut w, h, true);
                }
            }
        }
        Reply::Stats { text } => {
            w.u8(REPLY_STATS);
            w.str(text);
        }
        Reply::Reloaded {
            generation,
            partitions,
        } => {
            w.u8(REPLY_RELOADED);
            w.u64(*generation);
            w.u32(*partitions);
        }
        Reply::Applied {
            generation,
            delta_columns,
            tombstones,
        } => {
            w.u8(REPLY_APPLIED);
            w.u64(*generation);
            w.u64(*delta_columns);
            w.u64(*tombstones);
        }
        Reply::ShuttingDown => w.u8(REPLY_SHUTTING_DOWN),
        Reply::Busy => w.u8(REPLY_BUSY),
        Reply::Shed => w.u8(REPLY_SHED),
        Reply::DeadlineExpired { waited_ms } => {
            w.u8(REPLY_DEADLINE_EXPIRED);
            w.u64(*waited_ms);
        }
        Reply::Err { message } => {
            w.u8(REPLY_ERR);
            w.str(message);
        }
    }
    w.0
}

/// Decode a frame payload into a reply.
pub fn decode_reply(payload: &[u8]) -> WireResult<Reply> {
    let mut r = ByteReader::new(payload);
    let reply = match r.u8()? {
        REPLY_INFO => Reply::Info(InfoReply {
            dim: r.u32()?,
            generation: r.u64()?,
            index_version: r.u64()?,
            partitions: r.u32()?,
            disk_bytes: r.u64()?,
        }),
        kind @ (REPLY_HITS | REPLY_HITS_V2) => {
            Reply::Hits(take_hits_body(&mut r, Some(kind == REPLY_HITS_V2))?)
        }
        REPLY_HITS_V3 => {
            let mut h = take_hits_body(&mut r, None)?;
            h.trace = Some(take_trace(&mut r)?);
            Reply::Hits(h)
        }
        REPLY_HITS_V4 => {
            let mut h = take_hits_body(&mut r, None)?;
            if r.u8()? != 0 {
                h.trace = Some(take_trace(&mut r)?);
            }
            h.explain = Some(Box::new(take_explain(&mut r)?));
            Reply::Hits(h)
        }
        REPLY_HITS_BATCH => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(take_hits_body(&mut r, None)?);
            }
            Reply::HitsBatch(items)
        }
        REPLY_HITS_BATCH_V2 => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let mut h = take_hits_body(&mut r, None)?;
                if r.u8()? != 0 {
                    h.trace = Some(take_trace(&mut r)?);
                }
                items.push(h);
            }
            Reply::HitsBatch(items)
        }
        REPLY_STATS => Reply::Stats {
            text: r.str(1 << 20)?,
        },
        REPLY_RELOADED => Reply::Reloaded {
            generation: r.u64()?,
            partitions: r.u32()?,
        },
        REPLY_APPLIED => Reply::Applied {
            generation: r.u64()?,
            delta_columns: r.u64()?,
            tombstones: r.u64()?,
        },
        REPLY_SHUTTING_DOWN => Reply::ShuttingDown,
        REPLY_BUSY => Reply::Busy,
        REPLY_SHED => Reply::Shed,
        REPLY_DEADLINE_EXPIRED => Reply::DeadlineExpired {
            waited_ms: r.u64()?,
        },
        REPLY_ERR => Reply::Err {
            message: r.str(1 << 16)?,
        },
        k => return Err(WireError::Malformed(format!("unknown reply kind {k}"))),
    };
    r.finish()?;
    Ok(reply)
}

// ---------------------------------------------------------------------------
// Cache fingerprinting
// ---------------------------------------------------------------------------

struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf29ce484222325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// Cache key for a query against one snapshot generation: FNV-1a over the
/// request kind, metric, τ, T (or k), the raw query bits, and the
/// generation. The execution policy is deliberately *excluded* — results
/// are policy-independent by the crate-wide determinism contract, so a
/// sequential and a parallel request share one cache line.
pub fn query_fingerprint(req: &Request, generation: u64) -> Option<u64> {
    let (kind, query, discriminator) = match req {
        Request::Search { query, t } => {
            let mut w = ByteWriter::new();
            put_threshold(&mut w, *t);
            (1u8, query, w.0)
        }
        Request::Topk { query, k } => (2u8, query, k.to_le_bytes().to_vec()),
        _ => return None,
    };
    let mut h = Fnv64::new();
    h.update(&[kind]);
    h.update(query.metric.as_bytes());
    let mut w = ByteWriter::new();
    put_tau(&mut w, query.tau);
    h.update(&w.0);
    h.update(&discriminator);
    h.update(&query.dim.to_le_bytes());
    for v in &query.vectors {
        h.update(&v.to_bits().to_le_bytes());
    }
    h.update(&generation.to_le_bytes());
    Some(h.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> QueryPayload {
        QueryPayload {
            metric: "euclidean".into(),
            tau: Tau::Ratio(0.06),
            policy: ExecPolicy::Parallel { threads: 4 },
            dim: 3,
            vectors: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            ext: None,
            trace: TraceLevel::Off,
            request_id: None,
            explain: false,
        }
    }

    fn sample_ext() -> QueryExt {
        QueryExt {
            flags: LemmaFlags::without_lemma34(),
            quick_browse: false,
            max_distance_computations: Some(12345),
            deadline_ms: Some(250),
        }
    }

    #[test]
    fn request_roundtrip_all_verbs() {
        let requests = [
            Request::Info,
            Request::Search {
                query: sample_query(),
                t: JoinThreshold::Ratio(0.5),
            },
            Request::Search {
                query: sample_query(),
                t: JoinThreshold::Count(7),
            },
            Request::Search {
                query: QueryPayload {
                    ext: Some(sample_ext()),
                    ..sample_query()
                },
                t: JoinThreshold::Count(7),
            },
            Request::Topk {
                query: sample_query(),
                k: 10,
            },
            Request::Topk {
                query: QueryPayload {
                    ext: Some(QueryExt::default()),
                    ..sample_query()
                },
                k: 10,
            },
            Request::Stats,
            Request::Reload { dir: None },
            Request::Reload {
                dir: Some("/tmp/idx".into()),
            },
            Request::ApplyDelta { shard: None },
            Request::ApplyDelta { shard: Some(2) },
            Request::Shutdown,
        ];
        for req in &requests {
            let bytes = encode_request(req);
            let back = decode_request(&bytes).unwrap();
            assert_eq!(&back, req);
        }
    }

    #[test]
    fn version_gating_is_backward_compatible() {
        // An extension-less query encodes a V1 frame, byte-identical to
        // what a pre-extension client produces — old servers still parse.
        let v1 = encode_request(&Request::Search {
            query: sample_query(),
            t: JoinThreshold::Count(3),
        });
        assert_eq!(v1[4], MIN_PROTOCOL_VERSION);
        // A V2 frame is the V1 layout plus the trailing extension.
        let v2 = encode_request(&Request::Search {
            query: QueryPayload {
                ext: Some(sample_ext()),
                ..sample_query()
            },
            t: JoinThreshold::Count(3),
        });
        assert_eq!(v2[4], QUERY_EXT_VERSION);
        assert_eq!(&v2[5..v1.len()], &v1[5..], "V1 layout must be a prefix");
        // The extension sits at the frame tail and its presence is "bytes
        // remain" — a V4 stamp can come from the `Fixed` policy tag alone,
        // so the version byte does not promise an extension. Truncating
        // the whole extension off therefore yields the extension-less
        // request; cutting it mid-field is still malformed.
        let mut truncated = v2.clone();
        truncated.truncate(v1.len());
        assert_eq!(
            decode_request(&truncated).unwrap(),
            Request::Search {
                query: sample_query(),
                t: JoinThreshold::Count(3),
            }
        );
        let mut partial = v2.clone();
        partial.truncate(v1.len() + 1);
        assert!(decode_request(&partial).is_err());
        assert!(decode_request(&v1).is_ok());
    }

    #[test]
    fn apply_verb_is_version_gated() {
        let bytes = encode_request(&Request::ApplyDelta { shard: None });
        assert_eq!(bytes[4], 3, "APPLY frames are V3");
        assert_eq!(
            decode_request(&bytes).unwrap(),
            Request::ApplyDelta { shard: None }
        );
        // The same verb byte inside an older frame is junk, not a silent
        // downgrade: a V2 peer never legitimately produced it.
        for old in [1u8, 2] {
            let mut downgraded = bytes.clone();
            downgraded[4] = old;
            assert!(decode_request(&downgraded).is_err(), "version {old}");
        }
    }

    #[test]
    fn routed_apply_rides_a_version_tail() {
        // The bare form stays the historical frame: magic + version 3 +
        // verb, nothing else — un-upgraded daemons keep decoding it.
        let bare = encode_request(&Request::ApplyDelta { shard: None });
        assert_eq!(bare.len(), 6, "bare APPLY must stay the 6-byte frame");
        // The routed form stamps V5 and appends the shard index; it
        // round-trips, and truncating the tail off yields the bare form
        // (tail presence is the discriminator, as with the V2 ext).
        let routed = encode_request(&Request::ApplyDelta { shard: Some(7) });
        assert_eq!(routed[4], TRACE_VERSION, "routed APPLY frames are V5");
        assert_eq!(&routed[5..6], &bare[5..6], "same verb byte");
        assert_eq!(
            decode_request(&routed).unwrap(),
            Request::ApplyDelta { shard: Some(7) }
        );
        let mut truncated = routed.clone();
        truncated.truncate(6);
        assert!(matches!(
            decode_request(&truncated).unwrap(),
            Request::ApplyDelta { shard: None }
        ));
        // A tail cut mid-field is malformed, not silently bare.
        let mut partial = routed.clone();
        partial.truncate(8);
        assert!(decode_request(&partial).is_err());
    }

    fn sample_batch(ext: Option<QueryExt>) -> QueryBatch {
        QueryBatch {
            metric: "euclidean".into(),
            tau: Tau::Ratio(0.06),
            policy: ExecPolicy::Parallel { threads: 4 },
            mode: BatchMode::Search(JoinThreshold::Count(3)),
            dim: 3,
            columns: vec![vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6], vec![0.7, 0.8, 0.9]],
            ext,
            trace: TraceLevel::Off,
            request_id: None,
        }
    }

    #[test]
    fn batch_verb_roundtrips_and_is_version_gated() {
        for batch in [
            sample_batch(None),
            sample_batch(Some(sample_ext())),
            QueryBatch {
                mode: BatchMode::Topk(5),
                columns: Vec::new(),
                ..sample_batch(None)
            },
        ] {
            let req = Request::Batch(batch);
            let bytes = encode_request(&req);
            assert_eq!(bytes[4], BATCH_VERSION, "BATCH frames are V4");
            assert_eq!(decode_request(&bytes).unwrap(), req);
            // The verb byte inside an older frame is junk, not a silent
            // downgrade.
            for old in [1u8, 2, 3] {
                let mut downgraded = bytes.clone();
                downgraded[4] = old;
                assert!(decode_request(&downgraded).is_err(), "version {old}");
            }
        }
    }

    #[test]
    fn fixed_policy_roundtrips_as_v4() {
        let query = QueryPayload {
            policy: ExecPolicy::Fixed { threads: 6 },
            ..sample_query()
        };
        let req = Request::Search {
            query,
            t: JoinThreshold::Count(3),
        };
        let bytes = encode_request(&req);
        assert_eq!(bytes[4], BATCH_VERSION, "fixed-policy frames are V4");
        assert_eq!(decode_request(&bytes).unwrap(), req);
        let batch = Request::Batch(QueryBatch {
            policy: ExecPolicy::Fixed { threads: 2 },
            ..sample_batch(None)
        });
        let bytes = encode_request(&batch);
        assert_eq!(decode_request(&bytes).unwrap(), batch);
    }

    #[test]
    fn traced_requests_roundtrip_as_v5() {
        for trace in [TraceLevel::Phases, TraceLevel::Detail] {
            for ext in [None, Some(sample_ext())] {
                let req = Request::Search {
                    query: QueryPayload {
                        ext,
                        trace,
                        ..sample_query()
                    },
                    t: JoinThreshold::Count(3),
                };
                let bytes = encode_request(&req);
                assert_eq!(bytes[4], TRACE_VERSION, "traced frames are V5");
                assert_eq!(decode_request(&bytes).unwrap(), req);
                let req = Request::Topk {
                    query: QueryPayload {
                        ext,
                        trace,
                        ..sample_query()
                    },
                    k: 9,
                };
                let bytes = encode_request(&req);
                assert_eq!(bytes[4], TRACE_VERSION);
                assert_eq!(decode_request(&bytes).unwrap(), req);
            }
        }
        // An untraced request never pays the V5 stamp: the frame stays
        // bit-identical to what a pre-trace client emits.
        let off = encode_request(&Request::Search {
            query: sample_query(),
            t: JoinThreshold::Count(3),
        });
        assert_eq!(off[4], MIN_PROTOCOL_VERSION);
    }

    #[test]
    fn traced_batch_roundtrips_as_v5() {
        let batch = QueryBatch {
            trace: TraceLevel::Detail,
            ..sample_batch(Some(sample_ext()))
        };
        let req = Request::Batch(batch);
        let bytes = encode_request(&req);
        assert_eq!(bytes[4], TRACE_VERSION, "traced BATCH frames are V5");
        assert_eq!(decode_request(&bytes).unwrap(), req);
        // Untraced batches keep the V4 stamp (checked in the V4 test);
        // a V5 batch with no trailing trace byte decodes as Off.
        let untraced = Request::Batch(sample_batch(None));
        let mut bytes = encode_request(&untraced);
        bytes[4] = TRACE_VERSION;
        assert_eq!(decode_request(&bytes).unwrap(), untraced);
    }

    #[test]
    fn metrics_and_slow_verbs_are_version_gated() {
        for req in [Request::Metrics, Request::SlowLog] {
            let bytes = encode_request(&req);
            assert_eq!(bytes[4], TRACE_VERSION, "METRICS/SLOW frames are V5");
            assert_eq!(decode_request(&bytes).unwrap(), req);
            // The same verb byte inside an older frame is junk, not a
            // silent downgrade.
            for old in [1u8, 2, 3, 4] {
                let mut downgraded = bytes.clone();
                downgraded[4] = old;
                assert!(decode_request(&downgraded).is_err(), "version {old}");
            }
        }
    }

    fn sample_trace() -> QueryTrace {
        QueryTrace::new(
            TraceSpan::new("query", 0, 120)
                .counter("distance_computations", 41)
                .child(TraceSpan::new("map", 0, 30))
                .child(TraceSpan::new("verify", 30, 80).counter("verify_batches", 2)),
        )
    }

    #[test]
    fn traced_replies_roundtrip() {
        let solo = Reply::Hits(HitsReply {
            generation: 3,
            cached: false,
            hits: Vec::new(),
            ext: Some(HitsExt {
                outcome: QueryOutcome::Exact,
                distance_computations: 41,
            }),
            trace: Some(sample_trace()),
            explain: None,
        });
        let bytes = encode_reply(&solo);
        assert_eq!(decode_reply(&bytes).unwrap(), solo);
        // A batch where only some entries carry a trace still roundtrips
        // exactly (the V2 batch kind flags presence per entry).
        let batch = Reply::HitsBatch(vec![
            HitsReply {
                generation: 3,
                cached: false,
                hits: Vec::new(),
                ext: None,
                trace: Some(sample_trace()),
                explain: None,
            },
            HitsReply {
                generation: 3,
                cached: true,
                hits: Vec::new(),
                ext: None,
                trace: None,
                explain: None,
            },
        ]);
        let bytes = encode_reply(&batch);
        assert_eq!(decode_reply(&bytes).unwrap(), batch);
    }

    #[test]
    fn trace_codec_rejects_absurd_depth() {
        // A span tree nested past MAX_TRACE_DEPTH encodes (the writer is
        // trusting) but must be rejected on decode — depth is attacker
        // controlled.
        let mut span = TraceSpan::new("leaf", 0, 1);
        for i in 0..=MAX_TRACE_DEPTH {
            span = TraceSpan::new(format!("level/{i}"), 0, 1).child(span);
        }
        let reply = Reply::Hits(HitsReply {
            generation: 1,
            cached: false,
            hits: Vec::new(),
            ext: None,
            trace: Some(QueryTrace::new(span)),
            explain: None,
        });
        let bytes = encode_reply(&reply);
        assert!(matches!(decode_reply(&bytes), Err(WireError::Malformed(_))));
    }

    #[test]
    fn fingerprint_ignores_trace_level() {
        // A traced query must share its cache line with the untraced
        // twin: tracing never changes the answer, only the envelope.
        let fp = |trace| {
            query_fingerprint(
                &Request::Topk {
                    query: QueryPayload {
                        trace,
                        ..sample_query()
                    },
                    k: 10,
                },
                1,
            )
            .unwrap()
        };
        assert_eq!(fp(TraceLevel::Off), fp(TraceLevel::Detail));
    }

    #[test]
    fn reply_roundtrip_all_kinds() {
        let replies = [
            Reply::Info(InfoReply {
                dim: 64,
                generation: 3,
                index_version: 2,
                partitions: 4,
                disk_bytes: 123456,
            }),
            Reply::Hits(HitsReply {
                generation: 1,
                cached: true,
                hits: vec![WireHit {
                    external_id: 42,
                    table_name: "tab".into(),
                    column_name: "col".into(),
                    match_count: 9,
                }],
                ext: None,
                trace: None,
                explain: None,
            }),
            Reply::Hits(HitsReply {
                generation: 4,
                cached: false,
                hits: Vec::new(),
                ext: Some(HitsExt {
                    outcome: QueryOutcome::Exceeded(Exceeded::DistanceComputations),
                    distance_computations: 777,
                }),
                trace: None,
                explain: None,
            }),
            Reply::HitsBatch(vec![
                HitsReply {
                    generation: 2,
                    cached: false,
                    hits: vec![WireHit {
                        external_id: 7,
                        table_name: "t".into(),
                        column_name: "c".into(),
                        match_count: 3,
                    }],
                    ext: None,
                    trace: None,
                    explain: None,
                },
                HitsReply {
                    generation: 2,
                    cached: true,
                    hits: Vec::new(),
                    ext: Some(HitsExt {
                        outcome: QueryOutcome::Exact,
                        distance_computations: 12,
                    }),
                    trace: None,
                    explain: None,
                },
            ]),
            Reply::Stats {
                text: "a=1\nb=2\n".into(),
            },
            Reply::Reloaded {
                generation: 2,
                partitions: 3,
            },
            Reply::Applied {
                generation: 5,
                delta_columns: 7,
                tombstones: 2,
            },
            Reply::ShuttingDown,
            Reply::Busy,
            Reply::Shed,
            Reply::DeadlineExpired { waited_ms: 1500 },
            Reply::Err {
                message: "nope".into(),
            },
        ];
        for reply in &replies {
            let bytes = encode_reply(reply);
            let back = decode_reply(&bytes).unwrap();
            assert_eq!(&back, reply);
        }
    }

    #[test]
    fn frame_roundtrip_over_a_pipe() {
        let payload = encode_request(&Request::Info);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let back = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(back, payload);
        // A clean EOF after the frame reads as None, not an error.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_and_truncated_frames_rejected() {
        let mut giant = Vec::new();
        giant.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(giant)),
            Err(WireError::Malformed(_))
        ));
        let mut short = Vec::new();
        short.extend_from_slice(&100u32.to_le_bytes());
        short.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(short)),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert!(decode_request(b"JUNKxxxx").is_err());
        // Right magic, wrong version.
        let mut bytes = encode_request(&Request::Info);
        bytes[4] = 99;
        assert!(decode_request(&bytes).is_err());
        // Trailing bytes after a valid request.
        let mut bytes = encode_request(&Request::Info);
        bytes.push(0);
        assert!(decode_request(&bytes).is_err());
        assert!(decode_reply(&[77]).is_err());
    }

    #[test]
    fn fingerprint_sensitivity() {
        let req = |tau, k| Request::Topk {
            query: QueryPayload {
                tau,
                ..sample_query()
            },
            k,
        };
        let base = query_fingerprint(&req(Tau::Ratio(0.06), 10), 1).unwrap();
        // Same request, same generation: stable.
        assert_eq!(
            base,
            query_fingerprint(&req(Tau::Ratio(0.06), 10), 1).unwrap()
        );
        // Any keyed field changing changes the fingerprint.
        assert_ne!(
            base,
            query_fingerprint(&req(Tau::Ratio(0.07), 10), 1).unwrap()
        );
        assert_ne!(
            base,
            query_fingerprint(&req(Tau::Ratio(0.06), 11), 1).unwrap()
        );
        assert_ne!(
            base,
            query_fingerprint(&req(Tau::Ratio(0.06), 10), 2).unwrap()
        );
        // The policy is *not* keyed: results are policy-independent.
        let mut q = sample_query();
        q.policy = ExecPolicy::Sequential;
        let seq = query_fingerprint(&Request::Topk { query: q, k: 10 }, 1).unwrap();
        assert_eq!(base, seq);
        // Non-query verbs have no fingerprint.
        assert!(query_fingerprint(&Request::Stats, 1).is_none());
    }

    #[test]
    fn correlated_requests_roundtrip_as_v6() {
        // Any combination of request id and explain rides the V6 tail,
        // with or without the V2 ext and V5 trace sitting before it.
        for (request_id, explain) in [(Some(0xDEAD_BEEF), false), (None, true), (Some(7), true)] {
            for ext in [None, Some(sample_ext())] {
                for trace in [TraceLevel::Off, TraceLevel::Detail] {
                    let query = QueryPayload {
                        ext,
                        trace,
                        request_id,
                        explain,
                        ..sample_query()
                    };
                    let req = Request::Search {
                        query: query.clone(),
                        t: JoinThreshold::Count(3),
                    };
                    let bytes = encode_request(&req);
                    assert_eq!(bytes[4], REQUEST_ID_VERSION, "correlated frames are V6");
                    assert_eq!(decode_request(&bytes).unwrap(), req);
                    let req = Request::Topk { query, k: 4 };
                    let bytes = encode_request(&req);
                    assert_eq!(bytes[4], REQUEST_ID_VERSION);
                    assert_eq!(decode_request(&bytes).unwrap(), req);
                }
            }
        }
        // An uncorrelated, unexplained query never pays the V6 stamp —
        // the frame stays bit-identical to what an older client emits.
        let plain = encode_request(&Request::Search {
            query: sample_query(),
            t: JoinThreshold::Count(3),
        });
        assert_eq!(plain[4], MIN_PROTOCOL_VERSION);
    }

    #[test]
    fn correlated_batch_roundtrips_as_v6() {
        let batch = QueryBatch {
            request_id: Some(0xABCD),
            ..sample_batch(Some(sample_ext()))
        };
        let req = Request::Batch(batch);
        let bytes = encode_request(&req);
        assert_eq!(
            bytes[4], REQUEST_ID_VERSION,
            "correlated BATCH frames are V6"
        );
        assert_eq!(decode_request(&bytes).unwrap(), req);
        // Uncorrelated batches keep their old stamp; a V6 batch with no
        // trailing id decodes as None.
        let plain = Request::Batch(sample_batch(None));
        let mut bytes = encode_request(&plain);
        assert_eq!(bytes[4], BATCH_VERSION);
        bytes[4] = REQUEST_ID_VERSION;
        assert_eq!(decode_request(&bytes).unwrap(), plain);
    }

    #[test]
    fn inspect_health_drain_verbs_are_version_gated() {
        let requests = [
            Request::Inspect,
            Request::Health,
            Request::Drain {
                addr: "127.0.0.1:7878".into(),
                drained: true,
            },
            Request::Drain {
                addr: "127.0.0.1:7878".into(),
                drained: false,
            },
        ];
        for req in &requests {
            let bytes = encode_request(req);
            assert_eq!(
                bytes[4], REQUEST_ID_VERSION,
                "INSPECT/HEALTH/DRAIN frames are V6"
            );
            assert_eq!(&decode_request(&bytes).unwrap(), req);
            // The same verb byte inside an older frame is junk, not a
            // silent downgrade.
            for old in [1u8, 2, 3, 4, 5] {
                let mut downgraded = bytes.clone();
                downgraded[4] = old;
                assert!(decode_request(&downgraded).is_err(), "version {old}");
            }
        }
    }

    #[test]
    fn fingerprint_ignores_request_id_and_explain() {
        // A correlated or explained query must share its cache line with
        // the plain twin: the id and the report never change the answer.
        let fp = |request_id, explain| {
            query_fingerprint(
                &Request::Topk {
                    query: QueryPayload {
                        request_id,
                        explain,
                        ..sample_query()
                    },
                    k: 10,
                },
                1,
            )
            .unwrap()
        };
        assert_eq!(fp(None, false), fp(Some(42), false));
        assert_eq!(fp(None, false), fp(None, true));
        assert_eq!(fp(None, false), fp(Some(42), true));
    }

    fn sample_explain() -> ExplainReport {
        ExplainReport {
            mode: "topk".into(),
            stages: vec![FunnelStage {
                name: "block".into(),
                unit: "pairs".into(),
                input: 100,
                output: 60,
                pruned: vec![("lemma3/4".into(), 40)],
            }],
            decisions: vec!["quick_browse=off seeded_pairs=0".into()],
            topk: Some(TopkExplain {
                seed: Some(5),
                survivors: 12,
                rounds: vec![TopkRound {
                    bar: Some(5),
                    batch: 4,
                    pruned: 2,
                }],
                pruned_columns: vec![(3, 4)],
                suffix_stop: true,
            }),
        }
    }

    #[test]
    fn explained_replies_roundtrip() {
        // Explain alone, and explain + trace (the V4 reply kind carries
        // both behind a presence byte).
        for trace in [None, Some(sample_trace())] {
            let reply = Reply::Hits(HitsReply {
                generation: 9,
                cached: false,
                hits: vec![WireHit {
                    external_id: 1,
                    table_name: "t".into(),
                    column_name: "c".into(),
                    match_count: 2,
                }],
                ext: Some(HitsExt {
                    outcome: QueryOutcome::Exact,
                    distance_computations: 10,
                }),
                trace,
                explain: Some(Box::new(sample_explain())),
            });
            let bytes = encode_reply(&reply);
            assert_eq!(decode_reply(&bytes).unwrap(), reply);
        }
    }

    #[test]
    fn explain_codec_rejects_absurd_cardinality() {
        // The writer is trusting, the reader is not: a report with more
        // stages than MAX_EXPLAIN_STAGES encodes but must not decode.
        let mut report = sample_explain();
        report.topk = None;
        report.stages = (0..=MAX_EXPLAIN_STAGES)
            .map(|i| FunnelStage {
                name: format!("stage/{i}"),
                unit: "rows".into(),
                input: 1,
                output: 1,
                pruned: Vec::new(),
            })
            .collect();
        let reply = Reply::Hits(HitsReply {
            generation: 1,
            cached: false,
            hits: Vec::new(),
            ext: None,
            trace: None,
            explain: Some(Box::new(report)),
        });
        let bytes = encode_reply(&reply);
        assert!(matches!(decode_reply(&bytes), Err(WireError::Malformed(_))));
    }
}
