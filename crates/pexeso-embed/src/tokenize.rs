//! Tokenisation of cell values.
//!
//! The paper splits string values into English words before embedding
//! (GloVe path) and lowercases them. We mirror that: Unicode-aware
//! lowercasing, splitting on any non-alphanumeric rune, dropping empties.

/// Split a raw cell value into lowercase tokens.
///
/// `"Mario Party"` → `["mario", "party"]`;
/// `"American Indian/Alaska Native"` → `["american", "indian", "alaska", "native"]`.
pub fn tokenize(s: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Normalised single-string form of a value: tokens joined by one space.
/// Used as the canonical key for lexicon lookups.
pub fn normalize(s: &str) -> String {
    tokenize(s).join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation() {
        assert_eq!(
            tokenize("American Indian/Alaska Native"),
            vec!["american", "indian", "alaska", "native"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("HELLO World"), vec!["hello", "world"]);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  \t , ; ").is_empty());
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(tokenize("Route 66"), vec!["route", "66"]);
    }

    #[test]
    fn unicode_tokens() {
        assert_eq!(tokenize("Łódź Café"), vec!["łódź", "café"]);
    }

    #[test]
    fn normalize_joins() {
        assert_eq!(normalize("  Hello,   World!"), "hello world");
    }

    #[test]
    fn hyphenated_splits() {
        assert_eq!(tokenize("co-op"), vec!["co", "op"]);
    }
}
