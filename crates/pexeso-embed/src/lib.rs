//! # pexeso-embed — embedding substrate for PEXESO
//!
//! The PEXESO paper embeds the string values of table columns with a
//! pre-trained model (fastText for OPEN, GloVe for WDC) and treats the model
//! as a plug-in: *any* representation that lands in a metric space works.
//! Pre-trained models are not available offline, so this crate provides a
//! deterministic, dependency-free substitute that reproduces the two
//! properties the paper's evaluation relies on:
//!
//! 1. **Misspelling tolerance** (fastText subwords): strings are embedded by
//!    pooling hashed character n-grams, so a one-edit misspelling shares most
//!    n-grams with the original and lands nearby ([`HashEmbedder`]).
//! 2. **Semantic proximity** (distributional similarity): a
//!    [`lexicon::Lexicon`] maps surface forms to concepts; the
//!    [`SemanticEmbedder`] mixes a concept-derived vector into the character
//!    vector so synonyms ("American Indian/Alaska Native" vs. "Mainland
//!    Indigenous") land nearby even with disjoint characters.
//!
//! Abbreviation/date handling from the paper's offline component ("Mar" →
//! "March", "St" → "Street") lives in [`abbrev`].
//!
//! All output vectors are L2-normalised (unless empty), matching the paper's
//! threshold-specification scheme where the maximum Euclidean distance
//! between any two embedded values is 2.

pub mod abbrev;
pub mod embedder;
pub mod hashing;
pub mod lexicon;
pub mod ngram;
pub mod tokenize;

pub use abbrev::AbbrevExpander;
pub use embedder::{Embedder, HashEmbedder, SemanticEmbedder};
pub use hashing::{fnv1a64, splitmix64};
pub use lexicon::{ConceptId, Lexicon};
pub use tokenize::tokenize;

/// L2-normalise a vector in place. Zero vectors are left untouched so they
/// never produce NaN; callers treat the zero vector as "no information".
pub fn l2_normalize(v: &mut [f32]) {
    let norm_sq: f32 = v.iter().map(|x| x * x).sum();
    if norm_sq > 0.0 {
        let inv = norm_sq.sqrt().recip();
        for x in v.iter_mut() {
            *x *= inv;
        }
    }
}

/// Euclidean distance between two equal-length vectors.
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f32>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_unit_length() {
        let mut v = vec![3.0, 4.0];
        l2_normalize(&mut v);
        assert!((v[0] - 0.6).abs() < 1e-6);
        assert!((v[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0; 8];
        l2_normalize(&mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn euclidean_basic() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(euclidean(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }
}
