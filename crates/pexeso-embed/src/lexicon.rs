//! Synonym/concept lexicon: the semantic layer of the embedding substitute.
//!
//! Distributional embeddings place synonymous phrases close together because
//! they occur in similar contexts. Offline we cannot train that, so we make
//! the mechanism explicit: a [`Lexicon`] maps normalised surface forms to
//! [`ConceptId`]s, and each concept deterministically owns a random unit
//! vector. The [`crate::SemanticEmbedder`] blends this concept vector with
//! the character-level vector, giving synonyms small mutual distances while
//! keeping unrelated strings far apart.
//!
//! Out-of-vocabulary handling follows the paper's own suggestion ("using
//! the embedding of the most literally similar word"): when an exact lookup
//! misses, [`Lexicon::lookup_fuzzy`] finds the most edit-similar registered
//! surface via a character-trigram index — this is what makes misspelled
//! cells land next to their clean forms.

use std::collections::HashMap;

use crate::hashing::GaussianStream;
use crate::tokenize::normalize;

/// Identifier of a semantic concept (an entity / word sense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConceptId(pub u64);

/// A mapping from normalised surface strings to concepts, with fuzzy
/// lookup for out-of-vocabulary strings.
#[derive(Debug, Default, Clone)]
pub struct Lexicon {
    surface_to_concept: HashMap<String, ConceptId>,
    /// Registered surfaces in insertion order (fuzzy-lookup candidates).
    entries: Vec<(String, ConceptId)>,
    /// Character trigram → indices into `entries`.
    trigrams: HashMap<[char; 3], Vec<u32>>,
    next_auto_id: u64,
}

/// Most trigram-sharing candidates examined per fuzzy lookup.
const FUZZY_CANDIDATES: usize = 48;

fn surface_trigrams(key: &str) -> Vec<[char; 3]> {
    // Pad so short strings still produce trigrams.
    let padded: Vec<char> = std::iter::once('^')
        .chain(key.chars())
        .chain(std::iter::once('$'))
        .collect();
    if padded.len() < 3 {
        return vec![[padded[0], *padded.last().unwrap(), '$']];
    }
    padded.windows(3).map(|w| [w[0], w[1], w[2]]).collect()
}

/// Bounded Levenshtein distance over chars; `None` when > `max`.
fn edit_distance_bounded(a: &[char], b: &[char], max: usize) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > max {
        return None;
    }
    if n == 0 {
        return Some(m);
    }
    if m == 0 {
        return Some(n);
    }
    let inf = usize::MAX / 2;
    let mut prev: Vec<usize> = (0..=m).map(|j| if j <= max { j } else { inf }).collect();
    let mut cur = vec![inf; m + 1];
    for i in 1..=n {
        let lo = i.saturating_sub(max).max(1);
        let hi = (i + max).min(m);
        cur[lo - 1] = if lo == 1 { i } else { inf };
        let mut row_min = cur[lo - 1];
        for j in lo..=hi {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let v = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            cur[j] = v;
            row_min = row_min.min(v);
        }
        if hi < m {
            cur[hi + 1..].iter_mut().for_each(|x| *x = inf);
        }
        if row_min > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (prev[m] <= max).then_some(prev[m])
}

impl Lexicon {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered surface forms.
    pub fn len(&self) -> usize {
        self.surface_to_concept.len()
    }

    pub fn is_empty(&self) -> bool {
        self.surface_to_concept.is_empty()
    }

    /// Register `surface` as a form of `concept`. The surface form is
    /// normalised (tokenised + lowercased) before storage, so lookups are
    /// robust to case/punctuation differences.
    pub fn register(&mut self, surface: &str, concept: ConceptId) {
        let key = normalize(surface);
        if key.is_empty() || self.surface_to_concept.contains_key(&key) {
            if !key.is_empty() {
                self.surface_to_concept.insert(key, concept);
            }
            return;
        }
        let idx = self.entries.len() as u32;
        for tg in surface_trigrams(&key) {
            self.trigrams.entry(tg).or_default().push(idx);
        }
        self.entries.push((key.clone(), concept));
        self.surface_to_concept.insert(key, concept);
    }

    /// Create a fresh concept and register all given surface forms for it.
    pub fn add_synonym_set<'a>(
        &mut self,
        surfaces: impl IntoIterator<Item = &'a str>,
    ) -> ConceptId {
        // Auto ids live in a high namespace to avoid colliding with caller ids.
        self.next_auto_id += 1;
        let id = ConceptId(0x8000_0000_0000_0000 | self.next_auto_id);
        for s in surfaces {
            self.register(s, id);
        }
        id
    }

    /// Look up the concept of a (raw) surface string, if known.
    pub fn lookup(&self, surface: &str) -> Option<ConceptId> {
        self.surface_to_concept.get(&normalize(surface)).copied()
    }

    /// Look up an already-normalised key without re-normalising.
    pub fn lookup_normalized(&self, key: &str) -> Option<ConceptId> {
        self.surface_to_concept.get(key).copied()
    }

    /// Fuzzy lookup for out-of-vocabulary strings: the registered surface
    /// with the highest normalised edit similarity ≥ `min_sim`, shortlisted
    /// by shared character trigrams. `key` must be normalised.
    pub fn lookup_fuzzy(&self, key: &str, min_sim: f64) -> Option<ConceptId> {
        if key.is_empty() {
            return None;
        }
        if let Some(&c) = self.surface_to_concept.get(key) {
            return Some(c);
        }
        // Shortlist by trigram overlap.
        let mut overlap: HashMap<u32, u32> = HashMap::new();
        for tg in surface_trigrams(key) {
            if let Some(posting) = self.trigrams.get(&tg) {
                for &e in posting {
                    *overlap.entry(e).or_insert(0) += 1;
                }
            }
        }
        if overlap.is_empty() {
            return None;
        }
        let mut candidates: Vec<(u32, u32)> = overlap.into_iter().collect();
        candidates.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        candidates.truncate(FUZZY_CANDIDATES);

        let key_chars: Vec<char> = key.chars().collect();
        let mut best: Option<(f64, ConceptId)> = None;
        for (entry_idx, _) in candidates {
            let (surface, concept) = &self.entries[entry_idx as usize];
            let cand_chars: Vec<char> = surface.chars().collect();
            let longest = key_chars.len().max(cand_chars.len());
            if longest == 0 {
                continue;
            }
            let max_errors = ((1.0 - min_sim) * longest as f64).floor() as usize;
            if let Some(d) = edit_distance_bounded(&key_chars, &cand_chars, max_errors) {
                let sim = 1.0 - d as f64 / longest as f64;
                if sim >= min_sim && best.is_none_or(|(s, _)| sim > s) {
                    best = Some((sim, *concept));
                }
            }
        }
        best.map(|(_, c)| c)
    }

    /// All surface forms registered for a concept (linear scan; diagnostics
    /// and tests only).
    pub fn surfaces_of(&self, concept: ConceptId) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .surface_to_concept
            .iter()
            .filter(|(_, &c)| c == concept)
            .map(|(s, _)| s.as_str())
            .collect();
        v.sort_unstable();
        v
    }
}

/// Number of latent topics concept vectors cluster around. Real
/// distributional embeddings are strongly anisotropic — words bunch into
/// semantic neighbourhoods — and metric indexes (pivots, grids) exploit
/// exactly that structure. Uniformly random unit vectors would be the
/// adversarial worst case (all pairwise distances ≈ √2), so concepts are
/// drawn from a topic mixture instead.
const NUM_TOPICS: u64 = 24;
/// Weight of the concept-specific component relative to its topic centre.
const TOPIC_SPREAD: f32 = 0.55;

/// Deterministically derive the unit vector owned by a concept: a topic
/// centre plus a concept-specific offset, normalised. Same-topic concepts
/// sit at distance ≈ 0.7, cross-topic at ≈ √2 — comparable to the
/// neighbourhood structure of trained word embeddings.
pub fn concept_vector(concept: ConceptId, dim: usize) -> Vec<f32> {
    let topic = crate::hashing::splitmix64(concept.0 ^ 0x70_91c5_7ab3) % NUM_TOPICS;
    let mut centre = vec![0.0f32; dim];
    GaussianStream::new(topic.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0x7091c)
        .fill_unit_vector(&mut centre);
    let mut offset = vec![0.0f32; dim];
    GaussianStream::new(concept.0 ^ 0x5eed_c04c_ef70_1234).fill_unit_vector(&mut offset);
    for (c, o) in centre.iter_mut().zip(offset.iter()) {
        *c += TOPIC_SPREAD * o;
    }
    crate::l2_normalize(&mut centre);
    centre
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup_is_normalised() {
        let mut lex = Lexicon::new();
        lex.register("Pacific Islander", ConceptId(7));
        assert_eq!(lex.lookup("pacific islander"), Some(ConceptId(7)));
        assert_eq!(lex.lookup("  PACIFIC/ISLANDER "), Some(ConceptId(7)));
        assert_eq!(lex.lookup("atlantic islander"), None);
    }

    #[test]
    fn synonym_set_shares_concept() {
        let mut lex = Lexicon::new();
        let id = lex.add_synonym_set(["Hawaiian/Guamanian/Samoan", "Pacific Islander"]);
        assert_eq!(lex.lookup("pacific islander"), Some(id));
        assert_eq!(lex.lookup("Hawaiian Guamanian Samoan"), Some(id));
    }

    #[test]
    fn distinct_sets_get_distinct_concepts() {
        let mut lex = Lexicon::new();
        let a = lex.add_synonym_set(["a1", "a2"]);
        let b = lex.add_synonym_set(["b1"]);
        assert_ne!(a, b);
    }

    #[test]
    fn fuzzy_lookup_finds_misspellings() {
        let mut lex = Lexicon::new();
        let id = lex.add_synonym_set(["population"]);
        lex.add_synonym_set(["participation"]);
        assert_eq!(lex.lookup_fuzzy("popluation", 0.75), Some(id));
        assert_eq!(lex.lookup_fuzzy("populaton", 0.75), Some(id));
        assert_eq!(lex.lookup_fuzzy("zebra", 0.75), None);
    }

    #[test]
    fn fuzzy_lookup_prefers_closest() {
        let mut lex = Lexicon::new();
        let _far = lex.add_synonym_set(["postulation"]);
        let near = lex.add_synonym_set(["population"]);
        assert_eq!(lex.lookup_fuzzy("populatio", 0.75), Some(near));
    }

    #[test]
    fn fuzzy_lookup_exact_short_circuit() {
        let mut lex = Lexicon::new();
        let id = lex.add_synonym_set(["exact match"]);
        assert_eq!(lex.lookup_fuzzy("exact match", 0.99), Some(id));
    }

    #[test]
    fn fuzzy_respects_min_similarity() {
        let mut lex = Lexicon::new();
        lex.add_synonym_set(["population"]);
        // 3 edits over 10 chars -> sim 0.7 < 0.9.
        assert_eq!(lex.lookup_fuzzy("popxlatxon", 0.9), None);
    }

    #[test]
    fn concept_vectors_deterministic_and_distinct() {
        let v1 = concept_vector(ConceptId(1), 32);
        let v1b = concept_vector(ConceptId(1), 32);
        let v2 = concept_vector(ConceptId(2), 32);
        assert_eq!(v1, v1b);
        let d = crate::euclidean(&v1, &v2);
        assert!(d > 0.5, "concept vectors should be well separated: {d}");
    }

    #[test]
    fn empty_surface_ignored() {
        let mut lex = Lexicon::new();
        lex.register("   ", ConceptId(1));
        assert!(lex.is_empty());
        assert_eq!(lex.lookup_fuzzy("", 0.8), None);
    }

    #[test]
    fn surfaces_of_lists_all() {
        let mut lex = Lexicon::new();
        let id = lex.add_synonym_set(["White", "Caucasian"]);
        let s = lex.surfaces_of(id);
        assert_eq!(s, vec!["caucasian", "white"]);
    }

    #[test]
    fn short_strings_have_trigrams() {
        let mut lex = Lexicon::new();
        let id = lex.add_synonym_set(["ab"]);
        assert_eq!(lex.lookup_fuzzy("ab", 0.9), Some(id));
    }
}
