//! Deterministic 64-bit hashing used throughout the embedding substrate.
//!
//! We intentionally avoid `std::collections::hash_map::DefaultHasher`
//! because its output is not specified across Rust releases; embeddings must
//! be bit-stable so that persisted indexes remain valid.

/// FNV-1a 64-bit hash of a byte slice.
///
/// Small, fast, and good enough for feature hashing when finalised with
/// [`splitmix64`] to break up FNV's weak avalanche on short inputs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// SplitMix64 finaliser: a strong 64-bit mixing function.
///
/// Used both to post-process FNV hashes and as a tiny seeded PRNG step when
/// deriving concept vectors.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Hash a string (with an extra domain-separation salt) to a well-mixed u64.
pub fn hash_str(s: &str, salt: u64) -> u64 {
    splitmix64(fnv1a64(s.as_bytes()) ^ salt)
}

/// A tiny deterministic generator of standard-normal-ish values derived from
/// a 64-bit state. Uses the sum-of-uniforms approximation (Irwin–Hall with
/// 4 terms, rescaled), which is plenty for generating random unit vectors.
#[derive(Debug, Clone)]
pub struct GaussianStream {
    state: u64,
}

impl GaussianStream {
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero state producing a low-entropy first draw.
        Self {
            state: splitmix64(seed ^ 0xa076_1d64_78bd_642f),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        splitmix64(self.state)
    }

    fn next_unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Approximately N(0, 1) distributed value.
    pub fn next_gaussian(&mut self) -> f32 {
        // Irwin–Hall with n = 4: sum of 4 uniforms has mean 2, var 1/3.
        let s: f64 = (0..4).map(|_| self.next_unit_f64()).sum();
        (((s - 2.0) * (3.0f64).sqrt()) as f32).clamp(-6.0, 6.0)
    }

    /// Fill `out` with an L2-normalised pseudo-random direction.
    pub fn fill_unit_vector(&mut self, out: &mut [f32]) {
        for x in out.iter_mut() {
            *x = self.next_gaussian();
        }
        crate::l2_normalize(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_strings() {
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
        assert_ne!(fnv1a64(b""), fnv1a64(b"a"));
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned value: embeddings must be bit-stable across builds.
        assert_eq!(fnv1a64(b"pexeso"), 0x7576_fadb_a26e_0ee7);
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn splitmix_avalanche() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = splitmix64(42);
        let b = splitmix64(43);
        let flipped = (a ^ b).count_ones();
        assert!(flipped > 16 && flipped < 48, "weak avalanche: {flipped}");
    }

    #[test]
    fn hash_str_salt_separates_domains() {
        assert_ne!(hash_str("x", 1), hash_str("x", 2));
    }

    #[test]
    fn gaussian_stream_statistics() {
        let mut g = GaussianStream::new(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| g.next_gaussian()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn unit_vector_is_unit() {
        let mut g = GaussianStream::new(3);
        let mut v = vec![0.0f32; 64];
        g.fill_unit_vector(&mut v);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn gaussian_deterministic_for_seed() {
        let mut a = GaussianStream::new(99);
        let mut b = GaussianStream::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_gaussian(), b.next_gaussian());
        }
    }
}
