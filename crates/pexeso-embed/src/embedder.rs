//! The [`Embedder`] trait and its two implementations.
//!
//! * [`HashEmbedder`] — pure character-level feature hashing (fastText
//!   subwords without the trained co-occurrence component).
//! * [`SemanticEmbedder`] — blends a [`Lexicon`] concept vector into the
//!   character vector, reproducing the synonym behaviour of trained
//!   embeddings. This is the default model used by the experiments.
//!
//! Both are deterministic: the same string always embeds to the same vector,
//! across runs and machines.

use crate::abbrev::AbbrevExpander;
use crate::hashing::hash_str;
use crate::l2_normalize;
use crate::lexicon::{concept_vector, Lexicon};
use crate::ngram::for_each_ngram;
use crate::tokenize::tokenize;

/// A plug-in representation model mapping strings to vectors in a metric
/// space, mirroring the paper's "any representation learning model can be
/// used in our framework" design point.
pub trait Embedder: Send + Sync {
    /// Dimensionality of produced vectors.
    fn dim(&self) -> usize;

    /// Embed `value` into `out` (length must equal [`Embedder::dim`]).
    /// The result is L2-normalised unless the value carries no signal, in
    /// which case `out` is the zero vector.
    fn embed_into(&self, value: &str, out: &mut [f32]);

    /// Convenience allocating wrapper around [`Embedder::embed_into`].
    fn embed(&self, value: &str) -> Vec<f32> {
        let mut out = vec![0.0; self.dim()];
        self.embed_into(value, &mut out);
        out
    }
}

/// Character n-gram feature-hashing embedder.
///
/// Every n-gram hashes to a dimension and a sign; a token is the normalised
/// sum of its n-gram features; a multi-token value is the normalised mean of
/// its token vectors. Misspellings share most n-grams, hence land nearby.
#[derive(Debug, Clone)]
pub struct HashEmbedder {
    dim: usize,
    nmin: usize,
    nmax: usize,
    expander: AbbrevExpander,
    salt: u64,
}

impl HashEmbedder {
    /// Standard configuration: `dim`-dimensional, 3–4 grams, built-in
    /// abbreviation dictionary.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 4, "embedding dimension must be at least 4");
        Self {
            dim,
            nmin: 3,
            nmax: 4,
            expander: AbbrevExpander::with_builtin(),
            salt: 0x9a3c_e5f1_70b2_d84e,
        }
    }

    /// Override the n-gram range (inclusive).
    pub fn with_ngram_range(mut self, nmin: usize, nmax: usize) -> Self {
        assert!(nmin >= 1 && nmin <= nmax);
        self.nmin = nmin;
        self.nmax = nmax;
        self
    }

    /// Replace the abbreviation dictionary.
    pub fn with_expander(mut self, expander: AbbrevExpander) -> Self {
        self.expander = expander;
        self
    }

    /// Accumulate the (unnormalised) character vector of one token.
    fn add_token(&self, token: &str, out: &mut [f32]) {
        let dim = self.dim as u64;
        for_each_ngram(token, self.nmin, self.nmax, |gram| {
            let h = hash_str(gram, self.salt);
            let idx = (h % dim) as usize;
            let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
            out[idx] += sign;
        });
    }

    /// Expanded lowercase tokens of a raw value.
    fn expanded_tokens(&self, value: &str) -> Vec<String> {
        tokenize(&self.expander.expand(value))
    }

    /// Character-level embedding shared by both embedders: mean of
    /// per-token normalised n-gram vectors, then normalised.
    fn char_embed_into(&self, value: &str, out: &mut [f32]) -> bool {
        out.iter_mut().for_each(|x| *x = 0.0);
        let tokens = self.expanded_tokens(value);
        if tokens.is_empty() {
            return false;
        }
        let mut token_vec = vec![0.0f32; self.dim];
        for t in &tokens {
            token_vec.iter_mut().for_each(|x| *x = 0.0);
            self.add_token(t, &mut token_vec);
            l2_normalize(&mut token_vec);
            for (o, v) in out.iter_mut().zip(token_vec.iter()) {
                *o += v;
            }
        }
        l2_normalize(out);
        true
    }
}

impl Embedder for HashEmbedder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed_into(&self, value: &str, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "output buffer has wrong dimension");
        self.char_embed_into(value, out);
    }
}

/// Semantic embedder: `normalize(α · concept + (1 − α) · char)`.
///
/// When the (expanded, normalised) value — or failing that, an individual
/// token — is found in the lexicon, its concept vector dominates, pulling
/// synonyms together. Unknown strings degrade gracefully to the pure
/// character embedding, exactly like out-of-vocabulary words fall back to
/// subword embeddings in fastText.
#[derive(Debug, Clone)]
pub struct SemanticEmbedder {
    base: HashEmbedder,
    lexicon: Lexicon,
    /// Weight of the concept component, in [0, 1].
    alpha: f32,
    /// Minimum edit similarity for fuzzy (out-of-vocabulary) lexicon hits.
    fuzzy_min_sim: f64,
}

impl SemanticEmbedder {
    /// The default concept weight places synonym pairs within roughly 4 %
    /// of the maximum unit-vector distance — inside the paper's τ range
    /// (2–8 %), the regime its experiments operate in.
    pub fn new(dim: usize, lexicon: Lexicon) -> Self {
        Self {
            base: HashEmbedder::new(dim),
            lexicon,
            alpha: 0.95,
            fuzzy_min_sim: 0.75,
        }
    }

    /// Adjust the semantic mixing weight (0 = purely character-level).
    pub fn with_alpha(mut self, alpha: f32) -> Self {
        assert!((0.0..=1.0).contains(&alpha));
        self.alpha = alpha;
        self
    }

    /// Replace the character-level base embedder.
    pub fn with_base(mut self, base: HashEmbedder) -> Self {
        self.base = base;
        self
    }

    /// Adjust the fuzzy-lookup similarity floor (0 disables fuzziness by
    /// matching everything; 1 requires exact hits).
    pub fn with_fuzzy_min_sim(mut self, min_sim: f64) -> Self {
        assert!((0.0..=1.0).contains(&min_sim));
        self.fuzzy_min_sim = min_sim;
        self
    }

    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    pub fn lexicon_mut(&mut self) -> &mut Lexicon {
        &mut self.lexicon
    }
}

impl Embedder for SemanticEmbedder {
    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn embed_into(&self, value: &str, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim(), "output buffer has wrong dimension");
        let expanded = self.base.expander.expand(value);
        let has_char = self.base.char_embed_into(value, out);

        // Full-string lookup first (exact, then fuzzy for misspellings);
        // else average the concepts of the tokens that are individually
        // known.
        let mut concept_acc = vec![0.0f32; self.dim()];
        let mut concept_hits = 0usize;
        if let Some(c) = self.lexicon.lookup_fuzzy(&expanded, self.fuzzy_min_sim) {
            concept_acc = concept_vector(c, self.dim());
            concept_hits = 1;
        } else {
            for t in tokenize(&expanded) {
                if let Some(c) = self.lexicon.lookup_normalized(&t) {
                    let v = concept_vector(c, self.dim());
                    for (a, b) in concept_acc.iter_mut().zip(v.iter()) {
                        *a += b;
                    }
                    concept_hits += 1;
                }
            }
            if concept_hits > 0 {
                l2_normalize(&mut concept_acc);
            }
        }

        match (concept_hits > 0, has_char) {
            (true, true) => {
                for (o, c) in out.iter_mut().zip(concept_acc.iter()) {
                    *o = self.alpha * c + (1.0 - self.alpha) * *o;
                }
                l2_normalize(out);
            }
            (true, false) => {
                out.copy_from_slice(&concept_acc);
            }
            (false, _) => { /* char embedding (or zero) already in `out` */ }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean;

    fn dist(e: &impl Embedder, a: &str, b: &str) -> f32 {
        euclidean(&e.embed(a), &e.embed(b))
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let e = HashEmbedder::new(64);
        let v = e.embed("hello world");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_string_embeds_to_zero() {
        let e = HashEmbedder::new(64);
        assert!(e.embed("").iter().all(|&x| x == 0.0));
        assert!(e.embed("--- ;; ").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic() {
        let e = HashEmbedder::new(128);
        assert_eq!(e.embed("Nintendo"), e.embed("Nintendo"));
    }

    #[test]
    fn identical_strings_distance_zero() {
        let e = HashEmbedder::new(64);
        assert_eq!(dist(&e, "mario party", "Mario Party!"), 0.0);
    }

    #[test]
    fn misspelling_closer_than_unrelated() {
        let e = HashEmbedder::new(128);
        let d_typo = dist(&e, "population", "popluation");
        let d_unrel = dist(&e, "population", "xylophone");
        // Unrelated unit vectors sit near sqrt(2) ≈ 1.414; a transposition
        // keeps most n-grams shared and lands well inside that.
        assert!(
            d_typo < d_unrel * 0.8,
            "typo {d_typo} should be much closer than unrelated {d_unrel}"
        );
    }

    #[test]
    fn abbreviation_expansion_brings_forms_together() {
        let e = HashEmbedder::new(128);
        let d = dist(&e, "12 Main St", "12 Main Street");
        assert!(d < 1e-5, "St should expand to Street: {d}");
    }

    #[test]
    fn semantic_synonyms_close_unrelated_far() {
        let mut lex = Lexicon::new();
        lex.add_synonym_set(["American Indian/Alaska Native", "Mainland Indigenous"]);
        lex.add_synonym_set(["Hawaiian/Guamanian/Samoan", "Pacific Islander"]);
        let e = SemanticEmbedder::new(128, lex);
        let d_syn = dist(&e, "American Indian/Alaska Native", "Mainland Indigenous");
        let d_cross = dist(&e, "American Indian/Alaska Native", "Pacific Islander");
        // Synonyms must land inside the paper's τ regime (≤ 8 % of the max
        // distance 2 = 0.16); distinct concepts stay far outside it (at
        // least a topic-internal distance ≈ 0.6, often the full √2).
        assert!(d_syn < 0.16, "synonyms should be very close: {d_syn}");
        assert!(d_cross > 0.4, "cross-concept {d_cross} vs synonym {d_syn}");
    }

    #[test]
    fn misspelled_known_value_stays_close() {
        let mut lex = Lexicon::new();
        lex.add_synonym_set(["Pacific Islander"]);
        let e = SemanticEmbedder::new(128, lex);
        // One character-level edit: fuzzy lookup resolves to the concept.
        let d = dist(&e, "Pacific Islander", "Pacific Islandr");
        assert!(
            d < 0.16,
            "misspelling of a known value should stay joinable: {d}"
        );
        let d_far = dist(&e, "Pacific Islander", "Atlantic Salmon Run");
        assert!(d_far > 1.0);
    }

    #[test]
    fn unknown_strings_fall_back_to_char_level() {
        let lex = Lexicon::new();
        let sem = SemanticEmbedder::new(128, lex).with_alpha(0.7);
        let base = HashEmbedder::new(128);
        assert_eq!(
            sem.embed("completely unknown thing"),
            base.embed("completely unknown thing")
        );
    }

    #[test]
    fn alpha_zero_equals_char_embedding_direction() {
        let mut lex = Lexicon::new();
        lex.add_synonym_set(["alpha test"]);
        let sem = SemanticEmbedder::new(64, lex).with_alpha(0.0);
        let base = HashEmbedder::new(64);
        let a = sem.embed("alpha test");
        let b = base.embed("alpha test");
        assert!(euclidean(&a, &b) < 1e-5);
    }

    #[test]
    fn token_level_concept_fallback() {
        let mut lex = Lexicon::new();
        lex.add_synonym_set(["nintendo"]);
        let e = SemanticEmbedder::new(128, lex);
        // "Nintendo Switch" is not in the lexicon as a whole, but the token
        // "nintendo" is; it should still pull toward the concept.
        let d_related = dist(&e, "Nintendo Switch", "nintendo");
        let d_unrelated = dist(&e, "Sony PlayStation", "nintendo");
        assert!(d_related < d_unrelated);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn wrong_buffer_dim_panics() {
        let e = HashEmbedder::new(64);
        let mut out = vec![0.0; 32];
        e.embed_into("x", &mut out);
    }
}
