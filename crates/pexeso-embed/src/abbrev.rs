//! Abbreviation and date/address expansion.
//!
//! The paper's offline component converts abbreviations to full forms
//! ("Mar" → "March", "St" → "Street") before embedding, optionally using
//! domain dictionaries. This module ships the common English date/address
//! dictionary and accepts user extensions, mirroring that design.

use std::collections::HashMap;

/// Expands known abbreviations token-by-token.
#[derive(Debug, Clone)]
pub struct AbbrevExpander {
    map: HashMap<String, String>,
}

impl Default for AbbrevExpander {
    fn default() -> Self {
        Self::with_builtin()
    }
}

const BUILTIN: &[(&str, &str)] = &[
    // Months.
    ("jan", "january"),
    ("feb", "february"),
    ("mar", "march"),
    ("apr", "april"),
    ("jun", "june"),
    ("jul", "july"),
    ("aug", "august"),
    ("sep", "september"),
    ("sept", "september"),
    ("oct", "october"),
    ("nov", "november"),
    ("dec", "december"),
    // Weekdays.
    ("mon", "monday"),
    ("tue", "tuesday"),
    ("tues", "tuesday"),
    ("wed", "wednesday"),
    ("thu", "thursday"),
    ("thur", "thursday"),
    ("thurs", "thursday"),
    ("fri", "friday"),
    ("sat", "saturday"),
    ("sun", "sunday"),
    // Street addresses.
    ("st", "street"),
    ("ave", "avenue"),
    ("blvd", "boulevard"),
    ("rd", "road"),
    ("dr", "drive"),
    ("ln", "lane"),
    ("ct", "court"),
    ("hwy", "highway"),
    ("pkwy", "parkway"),
    ("sq", "square"),
    ("apt", "apartment"),
    ("ste", "suite"),
    ("fl", "floor"),
    ("n", "north"),
    ("s", "south"),
    ("e", "east"),
    ("w", "west"),
    ("ne", "northeast"),
    ("nw", "northwest"),
    ("se", "southeast"),
    ("sw", "southwest"),
    // Common business forms.
    ("inc", "incorporated"),
    ("corp", "corporation"),
    ("co", "company"),
    ("ltd", "limited"),
    ("llc", "limited liability company"),
    ("intl", "international"),
    ("dept", "department"),
    ("univ", "university"),
    ("assn", "association"),
    ("bros", "brothers"),
    ("mfg", "manufacturing"),
    ("mgmt", "management"),
    ("svcs", "services"),
];

impl AbbrevExpander {
    /// Expander with the built-in English date/address/business dictionary.
    pub fn with_builtin() -> Self {
        let map = BUILTIN
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        Self { map }
    }

    /// Empty expander (no rules).
    pub fn empty() -> Self {
        Self {
            map: HashMap::new(),
        }
    }

    /// Add or override a rule; `from` is matched case-insensitively on whole
    /// tokens only.
    pub fn add_rule(&mut self, from: &str, to: &str) {
        self.map.insert(from.to_lowercase(), to.to_lowercase());
    }

    pub fn rule_count(&self) -> usize {
        self.map.len()
    }

    /// Expand a single (lowercase) token; returns the input when unknown.
    pub fn expand_token<'a>(&'a self, token: &'a str) -> &'a str {
        self.map.get(token).map(|s| s.as_str()).unwrap_or(token)
    }

    /// Expand every token of a raw value; returns the normalised expanded
    /// string ("12 Main St" → "12 main street").
    pub fn expand(&self, value: &str) -> String {
        let tokens = crate::tokenize::tokenize(value);
        let mut out = String::with_capacity(value.len() + 8);
        for (i, t) in tokens.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.expand_token(t));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expands_months_and_streets() {
        let e = AbbrevExpander::with_builtin();
        assert_eq!(e.expand("3 Mar 2020"), "3 march 2020");
        assert_eq!(e.expand("12 Main St"), "12 main street");
    }

    #[test]
    fn whole_token_only() {
        let e = AbbrevExpander::with_builtin();
        // "start" must not become "streetart".
        assert_eq!(e.expand("start"), "start");
        assert_eq!(e.expand("Marble"), "marble");
    }

    #[test]
    fn case_insensitive() {
        let e = AbbrevExpander::with_builtin();
        assert_eq!(e.expand("MAR"), "march");
    }

    #[test]
    fn custom_rules_override() {
        let mut e = AbbrevExpander::empty();
        e.add_rule("nyc", "new york city");
        assert_eq!(e.expand("NYC marathon"), "new york city marathon");
    }

    #[test]
    fn empty_value() {
        let e = AbbrevExpander::with_builtin();
        assert_eq!(e.expand(""), "");
    }

    #[test]
    fn builtin_has_rules() {
        assert!(AbbrevExpander::with_builtin().rule_count() > 40);
        assert_eq!(AbbrevExpander::empty().rule_count(), 0);
    }
}
