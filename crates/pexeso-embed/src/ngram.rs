//! Character n-gram extraction (fastText-style subwords).
//!
//! Tokens are wrapped in boundary markers `<`/`>` before n-gram extraction,
//! exactly as fastText does, so prefixes and suffixes are distinguishable
//! from word-internal grams. The whole wrapped token is also emitted as one
//! "gram" so exact matches get a strong shared feature.

/// Iterate over the byte-span n-grams of `token` for n in `[nmin, nmax]`,
/// including the whole wrapped token, invoking `f` for each gram.
///
/// Grams are produced over the `<token>` form. Operating on char boundaries
/// keeps this Unicode-correct.
pub fn for_each_ngram(token: &str, nmin: usize, nmax: usize, mut f: impl FnMut(&str)) {
    debug_assert!(nmin >= 1 && nmin <= nmax);
    let mut wrapped = String::with_capacity(token.len() + 2);
    wrapped.push('<');
    wrapped.push_str(token);
    wrapped.push('>');

    let bounds: Vec<usize> = wrapped
        .char_indices()
        .map(|(i, _)| i)
        .chain(std::iter::once(wrapped.len()))
        .collect();
    let nchars = bounds.len() - 1;

    for n in nmin..=nmax {
        if n > nchars {
            break;
        }
        for start in 0..=(nchars - n) {
            f(&wrapped[bounds[start]..bounds[start + n]]);
        }
    }
    // The whole wrapped token, if longer than nmax (otherwise already emitted).
    if nchars > nmax {
        f(&wrapped);
    }
}

/// Collect n-grams into a vector (convenience for tests and diagnostics).
pub fn ngrams(token: &str, nmin: usize, nmax: usize) -> Vec<String> {
    let mut out = Vec::new();
    for_each_ngram(token, nmin, nmax, |g| out.push(g.to_string()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigram_of_short_word() {
        let g = ngrams("cat", 3, 3);
        // "<cat>" has 5 chars -> trigrams "<ca", "cat", "at>", plus whole word.
        assert_eq!(g, vec!["<ca", "cat", "at>", "<cat>"]);
    }

    #[test]
    fn whole_token_included_once_when_short() {
        let g = ngrams("ab", 3, 5);
        // "<ab>" has 4 chars: 3-grams "<ab","ab>", 4-gram "<ab>" (== whole).
        assert_eq!(g, vec!["<ab", "ab>", "<ab>"]);
    }

    #[test]
    fn misspelling_shares_most_grams() {
        use std::collections::HashSet;
        let a: HashSet<_> = ngrams("population", 3, 4).into_iter().collect();
        let b: HashSet<_> = ngrams("popluation", 3, 4).into_iter().collect(); // transposition
        let c: HashSet<_> = ngrams("zebra", 3, 4).into_iter().collect();
        let overlap_ab = a.intersection(&b).count() as f64 / a.len() as f64;
        let overlap_ac = a.intersection(&c).count() as f64 / a.len() as f64;
        assert!(
            overlap_ab > 0.4,
            "misspelling overlap too low: {overlap_ab}"
        );
        assert!(overlap_ac < 0.1, "unrelated overlap too high: {overlap_ac}");
    }

    #[test]
    fn unicode_boundaries_do_not_panic() {
        let g = ngrams("łódź", 2, 3);
        assert!(!g.is_empty());
        for gram in g {
            assert!(gram.chars().count() >= 2);
        }
    }

    #[test]
    fn single_char_token() {
        let g = ngrams("a", 3, 5);
        // "<a>" has 3 chars -> only the 3-gram "<a>".
        assert_eq!(g, vec!["<a>"]);
    }
}
