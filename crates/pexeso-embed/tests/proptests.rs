//! Property tests for the embedding substrate: determinism, normalisation,
//! tokenisation idempotence, fuzzy-lookup behaviour.

use proptest::prelude::*;

use pexeso_embed::{tokenize, Embedder, HashEmbedder, Lexicon, SemanticEmbedder};

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Embeddings are deterministic and unit-norm (or exactly zero).
    #[test]
    fn embedding_norm_and_determinism(s in "[ -~]{0,40}") {
        let e = HashEmbedder::new(64);
        let a = e.embed(&s);
        let b = e.embed(&s);
        prop_assert_eq!(&a, &b);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm.abs() < 1e-5 || (norm - 1.0).abs() < 1e-4, "norm {}", norm);
    }

    /// Tokenisation is idempotent under re-joining and lowercasing.
    #[test]
    fn tokenize_idempotent(s in "[ -~]{0,48}") {
        let t1 = tokenize(&s);
        let rejoined = t1.join(" ");
        let t2 = tokenize(&rejoined);
        prop_assert_eq!(t1, t2);
    }

    /// Case and punctuation never change an embedding.
    #[test]
    fn case_and_punctuation_invariance(words in proptest::collection::vec("[a-z]{1,8}", 1..4)) {
        let e = HashEmbedder::new(64);
        let plain = words.join(" ");
        let shouty = words.iter().map(|w| w.to_uppercase()).collect::<Vec<_>>().join("  ");
        let punct = words.join(", ");
        prop_assert_eq!(e.embed(&plain), e.embed(&shouty));
        prop_assert_eq!(e.embed(&plain), e.embed(&punct));
    }

    /// The semantic embedder with an empty lexicon is exactly the character
    /// embedder.
    #[test]
    fn empty_lexicon_matches_char_level(s in "[ -~]{0,32}") {
        let base = HashEmbedder::new(48);
        let sem = SemanticEmbedder::new(48, Lexicon::new());
        prop_assert_eq!(base.embed(&s), sem.embed(&s));
    }

    /// Registered synonyms always embed within the paper's τ regime while
    /// an unrelated random string stays far away.
    #[test]
    fn synonyms_close_across_random_vocab(
        a in "[a-z]{4,10}",
        b in "[a-z]{4,10}",
        other in "[a-z]{12,16}",
    ) {
        prop_assume!(a != b && a != other && b != other);
        let mut lex = Lexicon::new();
        lex.add_synonym_set([a.as_str(), b.as_str()]);
        let e = SemanticEmbedder::new(96, lex);
        let d_syn = pexeso_embed::euclidean(&e.embed(&a), &e.embed(&b));
        prop_assert!(d_syn < 0.2, "synonyms too far: {}", d_syn);
        // `other` might fuzzily resolve to a or b if it is edit-close;
        // with length ≥ 12 vs ≤ 10 that cannot happen at sim ≥ 0.75.
        let d_other = pexeso_embed::euclidean(&e.embed(&a), &e.embed(&other));
        prop_assert!(d_other > 0.4, "unrelated too close: {}", d_other);
    }

    /// Fuzzy lookup never returns a concept for a string with no
    /// sufficiently similar surface.
    #[test]
    fn fuzzy_lookup_respects_threshold(key in "[a-z]{1,12}") {
        let mut lex = Lexicon::new();
        lex.add_synonym_set(["zzzzzzzzzzzzzzzzzzzzzz"]);
        // Max shared trigrams with a short [a-z] key is tiny; similarity
        // threshold 0.9 cannot be met unless the key is itself long z-runs.
        if !key.contains("zzzz") {
            prop_assert_eq!(lex.lookup_fuzzy(&key, 0.9), None);
        }
    }
}
