//! Recursive feature elimination (RFE).
//!
//! The paper applies RFE on the joined result "to select meaningful
//! features" before training the evaluation model. Each round fits a
//! forest, ranks features by mean impurity-decrease importance, and drops
//! the weakest ones until the target count remains.

use crate::dataset::Dataset;
use crate::forest::{ForestConfig, RandomForest};

/// Run RFE and return the indices (into the original feature list) that
/// survive, in their original order.
pub fn recursive_feature_elimination(
    data: &Dataset,
    target_features: usize,
    drop_per_round: usize,
    config: &ForestConfig,
) -> Vec<usize> {
    assert!(target_features >= 1, "must keep at least one feature");
    let drop_per_round = drop_per_round.max(1);
    let rows: Vec<usize> = (0..data.n_rows()).collect();
    let mut kept: Vec<usize> = (0..data.n_features()).collect();
    while kept.len() > target_features {
        let projected = data.project(&kept);
        let forest = RandomForest::fit(&projected, &rows, config);
        let importances = forest.importances();
        // Rank current features by importance ascending.
        let mut order: Vec<usize> = (0..kept.len()).collect();
        order.sort_by(|&a, &b| importances[a].total_cmp(&importances[b]));
        let n_drop = drop_per_round.min(kept.len() - target_features);
        let dropped: std::collections::HashSet<usize> = order.into_iter().take(n_drop).collect();
        kept = kept
            .iter()
            .enumerate()
            .filter(|(local, _)| !dropped.contains(local))
            .map(|(_, &orig)| orig)
            .collect();
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Labels;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Feature 0 is the label, features 1..4 are noise.
    fn signal_plus_noise(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let y = (i % 2) as u32;
            features.push(vec![
                y as f32 + rng.gen_range(-0.1f32..0.1),
                rng.gen_range(-1.0f32..1.0),
                rng.gen_range(-1.0f32..1.0),
                rng.gen_range(-1.0f32..1.0),
            ]);
            labels.push(y);
        }
        Dataset::new(
            features,
            vec!["signal".into(), "n1".into(), "n2".into(), "n3".into()],
            Labels::Classes(labels),
        )
    }

    #[test]
    fn keeps_the_signal_feature() {
        let d = signal_plus_noise(1, 200);
        let kept = recursive_feature_elimination(&d, 1, 1, &ForestConfig::classification(2));
        assert_eq!(kept, vec![0], "the signal feature must survive RFE");
    }

    #[test]
    fn respects_target_count() {
        let d = signal_plus_noise(2, 100);
        let kept = recursive_feature_elimination(&d, 2, 1, &ForestConfig::classification(2));
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&0));
    }

    #[test]
    fn noop_when_already_small() {
        let d = signal_plus_noise(3, 50);
        let kept = recursive_feature_elimination(&d, 10, 1, &ForestConfig::classification(2));
        assert_eq!(kept, vec![0, 1, 2, 3]);
    }

    #[test]
    fn larger_drop_batches_terminate() {
        let d = signal_plus_noise(4, 100);
        let kept = recursive_feature_elimination(&d, 1, 3, &ForestConfig::classification(2));
        assert_eq!(kept.len(), 1);
    }
}
