//! Bagged random forests over the CART trees.

use crate::dataset::Dataset;
use crate::tree::{bootstrap, rng_from, DecisionTree, Task, TreeConfig};

/// Forest hyper-parameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    pub n_trees: usize,
    pub tree: TreeConfig,
    /// Features per split; `None` = √p (the usual default).
    pub max_features: Option<usize>,
    pub seed: u64,
}

impl ForestConfig {
    pub fn classification(n_classes: u32) -> Self {
        Self {
            n_trees: 30,
            tree: TreeConfig::classification(n_classes),
            max_features: None,
            seed: 42,
        }
    }

    pub fn regression() -> Self {
        Self {
            n_trees: 30,
            tree: TreeConfig::regression(),
            max_features: None,
            seed: 42,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    task: Task,
}

impl RandomForest {
    /// Fit on the given training rows of `data`.
    pub fn fit(data: &Dataset, rows: &[usize], config: &ForestConfig) -> Self {
        assert!(!rows.is_empty(), "cannot fit a forest on zero rows");
        let p = data.n_features();
        let mf = config
            .max_features
            .unwrap_or_else(|| (p as f64).sqrt().ceil() as usize)
            .clamp(1, p);
        let mut trees = Vec::with_capacity(config.n_trees);
        for t in 0..config.n_trees {
            let mut rng = rng_from(config.seed.wrapping_add(t as u64 * 0x9e3779b9));
            let sample = bootstrap(rows, &mut rng);
            let mut tree_cfg = config.tree.clone();
            tree_cfg.max_features = Some(mf);
            trees.push(DecisionTree::fit(data, &sample, tree_cfg, &mut rng));
        }
        Self {
            trees,
            task: config.tree.task,
        }
    }

    /// Predict one row: majority vote (classification) or mean
    /// (regression).
    pub fn predict(&self, row: &[f32]) -> f32 {
        match self.task {
            Task::Classification { n_classes } => {
                let mut votes = vec![0u32; n_classes as usize];
                for t in &self.trees {
                    let c = (t.predict(row) as usize).min(n_classes as usize - 1);
                    votes[c] += 1;
                }
                votes
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &v)| v)
                    .map(|(i, _)| i as f32)
                    .unwrap_or(0.0)
            }
            Task::Regression => {
                self.trees.iter().map(|t| t.predict(row)).sum::<f32>() / self.trees.len() as f32
            }
        }
    }

    /// Predictions for many rows.
    pub fn predict_all(&self, features: &[Vec<f32>]) -> Vec<f32> {
        features.iter().map(|r| self.predict(r)).collect()
    }

    /// Mean impurity-decrease importance per feature.
    pub fn importances(&self) -> Vec<f64> {
        if self.trees.is_empty() {
            return Vec::new();
        }
        let p = self.trees[0].importances.len();
        let mut acc = vec![0.0f64; p];
        for t in &self.trees {
            for (a, &i) in acc.iter_mut().zip(t.importances.iter()) {
                *a += i;
            }
        }
        let inv = 1.0 / self.trees.len() as f64;
        acc.iter_mut().for_each(|a| *a *= inv);
        acc
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    pub fn task(&self) -> Task {
        self.task
    }
}

/// Convenience: fit on `train`, evaluate accuracy-like agreement on `test`.
pub fn fit_predict(
    data: &Dataset,
    train: &[usize],
    test: &[usize],
    config: &ForestConfig,
) -> Vec<f32> {
    let forest = RandomForest::fit(data, train, config);
    test.iter()
        .map(|&i| forest.predict(&data.features[i]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Labels;
    use rand::Rng;

    fn blobs(seed: u64, n_per: usize) -> Dataset {
        // Two Gaussian-ish blobs in 3-d.
        let mut rng = rng_from(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2u32 {
            let center = if c == 0 { -1.0f32 } else { 1.0 };
            for _ in 0..n_per {
                features.push(vec![
                    center + rng.gen_range(-0.6f32..0.6),
                    center + rng.gen_range(-0.6f32..0.6),
                    rng.gen_range(-1.0f32..1.0),
                ]);
                labels.push(c);
            }
        }
        Dataset::new(
            features,
            vec!["x".into(), "y".into(), "noise".into()],
            Labels::Classes(labels),
        )
    }

    #[test]
    fn classifies_blobs_well() {
        let d = blobs(1, 100);
        let folds = d.kfold(4, 7);
        let cfg = ForestConfig::classification(2);
        let mut correct = 0usize;
        let mut total = 0usize;
        for (train, test) in folds {
            let preds = fit_predict(&d, &train, &test, &cfg);
            for (p, &i) in preds.iter().zip(test.iter()) {
                if let Labels::Classes(c) = &d.labels {
                    if c[i] == *p as u32 {
                        correct += 1;
                    }
                }
                total += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "blob accuracy {acc}");
    }

    #[test]
    fn regression_tracks_linear_signal() {
        let mut rng = rng_from(2);
        let features: Vec<Vec<f32>> = (0..200)
            .map(|_| vec![rng.gen_range(-1.0f32..1.0)])
            .collect();
        let labels: Vec<f32> = features
            .iter()
            .map(|f| 3.0 * f[0] + rng.gen_range(-0.1..0.1))
            .collect();
        let d = Dataset::new(features, vec!["x".into()], Labels::Values(labels));
        let rows: Vec<usize> = (0..d.n_rows()).collect();
        let forest = RandomForest::fit(&d, &rows, &ForestConfig::regression());
        let mse: f32 = (0..d.n_rows())
            .map(|i| {
                let p = forest.predict(&d.features[i]);
                let y = if let Labels::Values(v) = &d.labels {
                    v[i]
                } else {
                    0.0
                };
                (p - y) * (p - y)
            })
            .sum::<f32>()
            / d.n_rows() as f32;
        assert!(mse < 0.5, "regression mse {mse}");
    }

    #[test]
    fn forest_importances_identify_signal() {
        let d = blobs(3, 150);
        let rows: Vec<usize> = (0..d.n_rows()).collect();
        let forest = RandomForest::fit(&d, &rows, &ForestConfig::classification(2));
        let imp = forest.importances();
        assert!(
            imp[0] > imp[2] && imp[1] > imp[2],
            "noise should matter least: {imp:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = blobs(4, 50);
        let rows: Vec<usize> = (0..d.n_rows()).collect();
        let cfg = ForestConfig::classification(2);
        let a = RandomForest::fit(&d, &rows, &cfg);
        let b = RandomForest::fit(&d, &rows, &cfg);
        for i in 0..d.n_rows() {
            assert_eq!(a.predict(&d.features[i]), b.predict(&d.features[i]));
        }
    }

    #[test]
    fn n_trees_respected() {
        let d = blobs(5, 20);
        let rows: Vec<usize> = (0..d.n_rows()).collect();
        let mut cfg = ForestConfig::classification(2);
        cfg.n_trees = 7;
        let forest = RandomForest::fit(&d, &rows, &cfg);
        assert_eq!(forest.n_trees(), 7);
    }
}
