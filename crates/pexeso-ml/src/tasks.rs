//! The three Table-V-style ML tasks over a synthetic lake.
//!
//! The paper enriches a query table (company categories, Amazon toys,
//! video-game sales) by joining lake tables discovered with each
//! competitor, then trains a random forest and compares micro-F1 / MSE.
//! The Kaggle datasets are unavailable offline, so [`make_task`] plants an
//! equivalent structure in the generated lake: every entity carries a
//! latent class and value; lake tables expose noisy transforms of those
//! latents as attributes; the query table's label is derived from the same
//! latents; its *base* features are deliberately weak. A method that joins
//! more of the semantically-matching rows recovers more of the planted
//! signal — reproducing the no-join < equi-join < PEXESO ordering.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pexeso_lake::generator::{GenTable, SyntheticLake};

use crate::augment::{augment, AugmentConfig, JoinMapping};
use crate::dataset::{Dataset, Labels};
use crate::forest::{ForestConfig, RandomForest};
use crate::metrics::{mean_std, micro_f1, mse};

/// Classification or regression (micro-F1 vs MSE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    Classification,
    Regression,
}

/// Specification of one Table-V-style task.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    pub name: String,
    pub kind: TaskKind,
    /// Entity domain the query table draws from.
    pub domain: usize,
    pub n_rows: usize,
    pub seed: u64,
}

/// A materialised task: the query table (whose key column is what gets
/// joined) plus the base supervised dataset.
#[derive(Debug, Clone)]
pub struct MlTask {
    pub spec: TaskSpec,
    pub query: GenTable,
    pub base: Dataset,
}

/// Build a task over `lake`. The base features carry only weak signal
/// (latent + heavy noise); labels derive from the entity latents.
pub fn make_task(lake: &SyntheticLake, spec: TaskSpec) -> MlTask {
    let query = lake.make_query(spec.domain, spec.n_rows, spec.seed);
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x7a5c);
    let n_classes = lake.config.num_classes;
    let mut features = Vec::with_capacity(spec.n_rows);
    let mut cls = Vec::with_capacity(spec.n_rows);
    let mut vals = Vec::with_capacity(spec.n_rows);
    for &e in &query.entities {
        let entity = &lake.vocab.entities[e];
        // Weak base features: heavily-noised latent + pure noise.
        features.push(vec![
            entity.latent_value + rng.gen_range(-3.0f32..3.0),
            rng.gen_range(-1.0f32..1.0),
        ]);
        // Labels: latent class with 5 % label noise / latent value + noise.
        let c = if rng.gen_bool(0.05) {
            rng.gen_range(0..n_classes)
        } else {
            entity.latent_class
        };
        cls.push(c);
        vals.push(entity.latent_value * 2.0 + rng.gen_range(-0.3f32..0.3));
    }
    let labels = match spec.kind {
        TaskKind::Classification => Labels::Classes(cls),
        TaskKind::Regression => Labels::Values(vals),
    };
    let base = Dataset::new(
        features,
        vec!["base_weak".into(), "base_noise".into()],
        labels,
    );
    MlTask { spec, query, base }
}

/// Outcome of evaluating one method on one task (a Table V cell).
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// micro-F1 (classification) or MSE (regression), mean over folds.
    pub metric_mean: f64,
    pub metric_std: f64,
}

/// Train/evaluate with 4-fold cross-validation, as in the paper.
pub fn evaluate(data: &Dataset, kind: TaskKind, seed: u64) -> EvalOutcome {
    let folds = data.kfold(4, seed);
    let config = match (kind, data.n_classes()) {
        (TaskKind::Classification, Some(n)) => ForestConfig::classification(n.max(2)),
        _ => ForestConfig::regression(),
    };
    let mut scores = Vec::with_capacity(folds.len());
    for (train, test) in folds {
        let forest = RandomForest::fit(data, &train, &config);
        match (&data.labels, kind) {
            (Labels::Classes(truth), TaskKind::Classification) => {
                let y_true: Vec<u32> = test.iter().map(|&i| truth[i]).collect();
                let y_pred: Vec<u32> = test
                    .iter()
                    .map(|&i| forest.predict(&data.features[i]) as u32)
                    .collect();
                scores.push(micro_f1(&y_true, &y_pred));
            }
            (Labels::Values(truth), TaskKind::Regression) => {
                let y_true: Vec<f32> = test.iter().map(|&i| truth[i]).collect();
                let y_pred: Vec<f32> = test
                    .iter()
                    .map(|&i| forest.predict(&data.features[i]))
                    .collect();
                scores.push(mse(&y_true, &y_pred));
            }
            _ => unreachable!("task kind matches label kind by construction"),
        }
    }
    let (metric_mean, metric_std) = mean_std(&scores);
    EvalOutcome {
        metric_mean,
        metric_std,
    }
}

/// Evaluate a task after augmenting with a join mapping (pass an empty
/// mapping for the "no-join" row). Returns the outcome plus the number of
/// augmented features used.
pub fn evaluate_with_mapping(
    task: &MlTask,
    lake: &SyntheticLake,
    mapping: &JoinMapping,
    config: &AugmentConfig,
) -> (EvalOutcome, usize) {
    let mut data = task.base.clone();
    let lake_tables: Vec<&pexeso_lake::table::Table> =
        lake.tables.iter().map(|t| &t.table).collect();
    let added = augment(&mut data, &lake_tables, mapping, config);
    let outcome = evaluate(&data, task.spec.kind, task.spec.seed);
    (outcome, added.len())
}

/// Ground-truth join mapping (oracle): every query row matched to every
/// lake row sharing its entity. Upper-bounds what any discovery method can
/// contribute; used in tests to sanity-check the planted signal.
pub fn oracle_mapping(task: &MlTask, lake: &SyntheticLake) -> JoinMapping {
    let mut mapping = JoinMapping::new(task.query.entities.len());
    for (qi, &qe) in task.query.entities.iter().enumerate() {
        for (ti, table) in lake.tables.iter().enumerate() {
            for (ri, &te) in table.entities.iter().enumerate() {
                if te == qe {
                    mapping.matches[qi].push((ti, ri));
                }
            }
        }
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use pexeso_lake::generator::GeneratorConfig;

    fn small_lake(seed: u64) -> SyntheticLake {
        let mut cfg = GeneratorConfig::tiny(seed);
        cfg.num_tables = 12;
        cfg.entities_per_domain = 40;
        cfg.rows_per_table = (20, 30);
        cfg.num_classes = 3;
        SyntheticLake::generate(cfg)
    }

    #[test]
    fn task_construction_shapes() {
        let lake = small_lake(1);
        let task = make_task(
            &lake,
            TaskSpec {
                name: "clf".into(),
                kind: TaskKind::Classification,
                domain: 0,
                n_rows: 30,
                seed: 5,
            },
        );
        assert_eq!(task.base.n_rows(), 30);
        assert_eq!(task.query.entities.len(), 30);
        assert!(matches!(task.base.labels, Labels::Classes(_)));
    }

    #[test]
    fn oracle_join_beats_no_join_classification() {
        let lake = small_lake(2);
        let task = make_task(
            &lake,
            TaskSpec {
                name: "clf".into(),
                kind: TaskKind::Classification,
                domain: 0,
                n_rows: 60,
                seed: 6,
            },
        );
        let empty = JoinMapping::new(60);
        let cfg = AugmentConfig {
            min_coverage: 5,
            ..Default::default()
        };
        let (no_join, n0) = evaluate_with_mapping(&task, &lake, &empty, &cfg);
        let oracle = oracle_mapping(&task, &lake);
        let (with_join, n1) = evaluate_with_mapping(&task, &lake, &oracle, &cfg);
        assert_eq!(n0, 0);
        assert!(n1 > 0, "oracle join must add features");
        assert!(
            with_join.metric_mean > no_join.metric_mean + 0.05,
            "join should raise micro-F1: {} vs {}",
            with_join.metric_mean,
            no_join.metric_mean
        );
    }

    #[test]
    fn oracle_join_lowers_regression_mse() {
        let lake = small_lake(3);
        let task = make_task(
            &lake,
            TaskSpec {
                name: "reg".into(),
                kind: TaskKind::Regression,
                domain: 1,
                n_rows: 60,
                seed: 7,
            },
        );
        let empty = JoinMapping::new(60);
        let cfg = AugmentConfig {
            min_coverage: 5,
            ..Default::default()
        };
        let (no_join, _) = evaluate_with_mapping(&task, &lake, &empty, &cfg);
        let oracle = oracle_mapping(&task, &lake);
        let (with_join, _) = evaluate_with_mapping(&task, &lake, &oracle, &cfg);
        assert!(
            with_join.metric_mean < no_join.metric_mean * 0.9,
            "join should lower MSE: {} vs {}",
            with_join.metric_mean,
            no_join.metric_mean
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let lake = small_lake(4);
        let task = make_task(
            &lake,
            TaskSpec {
                name: "clf".into(),
                kind: TaskKind::Classification,
                domain: 0,
                n_rows: 40,
                seed: 8,
            },
        );
        let a = evaluate(&task.base, TaskKind::Classification, 9);
        let b = evaluate(&task.base, TaskKind::Classification, 9);
        assert_eq!(a.metric_mean, b.metric_mean);
        assert_eq!(a.metric_std, b.metric_std);
    }
}
