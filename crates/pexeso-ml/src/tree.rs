//! CART decision trees with missing-value routing.
//!
//! Splits minimise gini impurity (classification) or variance
//! (regression). Candidate thresholds are quantiles of the present values
//! of a feature. Rows with a missing split feature follow the branch that
//! received more training rows — the standard "majority direction" rule,
//! which is what makes sparse equi-join features nearly useless to the
//! model (they collapse into one branch) while dense semantic-join
//! features split cleanly.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::{Dataset, Labels};

/// What the tree predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    Classification { n_classes: u32 },
    Regression,
}

/// Tree hyper-parameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    pub task: Task,
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    /// Candidate thresholds evaluated per feature.
    pub n_thresholds: usize,
    /// Features considered per split; `None` = all (forests pass √p).
    pub max_features: Option<usize>,
}

impl TreeConfig {
    pub fn classification(n_classes: u32) -> Self {
        Self {
            task: Task::Classification { n_classes },
            max_depth: 12,
            min_samples_leaf: 2,
            n_thresholds: 16,
            max_features: None,
        }
    }

    pub fn regression() -> Self {
        Self {
            task: Task::Regression,
            max_depth: 12,
            min_samples_leaf: 2,
            n_thresholds: 16,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Majority class (as f32) or mean target.
        value: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        /// Rows with a missing feature go left when true.
        missing_left: bool,
        left: usize,
        right: usize,
    },
}

/// A fitted CART tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    config: TreeConfig,
    /// Impurity decrease accumulated per feature (for importance/RFE).
    pub importances: Vec<f64>,
}

struct Builder<'a> {
    data: &'a Dataset,
    config: &'a TreeConfig,
    nodes: Vec<Node>,
    importances: Vec<f64>,
}

fn label_f32(labels: &Labels, i: usize) -> f32 {
    match labels {
        Labels::Classes(c) => c[i] as f32,
        Labels::Values(v) => v[i],
    }
}

/// Impurity of a set of rows: gini or variance.
fn impurity(task: Task, labels: &Labels, rows: &[usize]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    match task {
        Task::Classification { n_classes } => {
            let mut counts = vec![0usize; n_classes as usize];
            if let Labels::Classes(c) = labels {
                for &r in rows {
                    counts[c[r] as usize] += 1;
                }
            }
            let n = rows.len() as f64;
            1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
        }
        Task::Regression => {
            let n = rows.len() as f64;
            let mean: f64 = rows
                .iter()
                .map(|&r| label_f32(labels, r) as f64)
                .sum::<f64>()
                / n;
            rows.iter()
                .map(|&r| (label_f32(labels, r) as f64 - mean).powi(2))
                .sum::<f64>()
                / n
        }
    }
}

/// Leaf prediction: majority class or mean.
fn leaf_value(task: Task, labels: &Labels, rows: &[usize]) -> f32 {
    match task {
        Task::Classification { n_classes } => {
            let mut counts = vec![0usize; n_classes as usize];
            if let Labels::Classes(c) = labels {
                for &r in rows {
                    counts[c[r] as usize] += 1;
                }
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i as f32)
                .unwrap_or(0.0)
        }
        Task::Regression => {
            if rows.is_empty() {
                0.0
            } else {
                rows.iter().map(|&r| label_f32(labels, r)).sum::<f32>() / rows.len() as f32
            }
        }
    }
}

impl Builder<'_> {
    fn build(&mut self, rows: Vec<usize>, depth: usize, rng: &mut StdRng) -> usize {
        let task = self.config.task;
        let parent_impurity = impurity(task, &self.data.labels, &rows);
        let make_leaf = rows.len() < 2 * self.config.min_samples_leaf
            || depth >= self.config.max_depth
            || parent_impurity < 1e-12;
        if !make_leaf {
            if let Some((feature, threshold, gain)) = self.best_split(&rows, parent_impurity, rng) {
                if gain > 1e-12 {
                    let (left_rows, right_rows, missing_left) =
                        partition(self.data, &rows, feature, threshold);
                    if left_rows.len() >= self.config.min_samples_leaf
                        && right_rows.len() >= self.config.min_samples_leaf
                    {
                        self.importances[feature] += gain * rows.len() as f64;
                        let idx = self.nodes.len();
                        self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
                        let left = self.build(left_rows, depth + 1, rng);
                        let right = self.build(right_rows, depth + 1, rng);
                        self.nodes[idx] = Node::Split {
                            feature,
                            threshold,
                            missing_left,
                            left,
                            right,
                        };
                        return idx;
                    }
                }
            }
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::Leaf {
            value: leaf_value(task, &self.data.labels, &rows),
        });
        idx
    }

    /// Best (feature, threshold) by impurity decrease over quantile
    /// candidate thresholds.
    fn best_split(
        &self,
        rows: &[usize],
        parent_impurity: f64,
        rng: &mut StdRng,
    ) -> Option<(usize, f32, f64)> {
        let p = self.data.n_features();
        let mut feature_pool: Vec<usize> = (0..p).collect();
        if let Some(mf) = self.config.max_features {
            feature_pool.shuffle(rng);
            feature_pool.truncate(mf.max(1).min(p));
        }
        let mut best: Option<(usize, f32, f64)> = None;
        let mut present: Vec<f32> = Vec::with_capacity(rows.len());
        for &f in &feature_pool {
            present.clear();
            present.extend(
                rows.iter()
                    .map(|&r| self.data.features[r][f])
                    .filter(|v| !v.is_nan()),
            );
            if present.len() < 2 {
                continue;
            }
            present.sort_unstable_by(f32::total_cmp);
            let k = self.config.n_thresholds.min(present.len() - 1).max(1);
            for t in 1..=k {
                let pos = t * (present.len() - 1) / (k + 1)
                    + !(t * (present.len() - 1)).is_multiple_of(k + 1) as usize;
                let pos = pos.clamp(1, present.len() - 1);
                let threshold = (present[pos - 1] + present[pos]) / 2.0;
                let (left, right, _) = partition(self.data, rows, f, threshold);
                if left.is_empty() || right.is_empty() {
                    continue;
                }
                let n = rows.len() as f64;
                let child = impurity(self.config.task, &self.data.labels, &left)
                    * left.len() as f64
                    / n
                    + impurity(self.config.task, &self.data.labels, &right) * right.len() as f64
                        / n;
                let gain = parent_impurity - child;
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, threshold, gain));
                }
            }
        }
        best
    }
}

/// Partition rows by (feature, threshold); missing values follow the
/// larger branch. Returns (left, right, missing_left).
fn partition(
    data: &Dataset,
    rows: &[usize],
    feature: usize,
    threshold: f32,
) -> (Vec<usize>, Vec<usize>, bool) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut missing = Vec::new();
    for &r in rows {
        let v = data.features[r][feature];
        if v.is_nan() {
            missing.push(r);
        } else if v <= threshold {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    let missing_left = left.len() >= right.len();
    if missing_left {
        left.extend(missing);
    } else {
        right.extend(missing);
    }
    (left, right, missing_left)
}

impl DecisionTree {
    /// Fit on the given training rows.
    pub fn fit(data: &Dataset, rows: &[usize], config: TreeConfig, rng: &mut StdRng) -> Self {
        assert!(!rows.is_empty(), "cannot fit a tree on zero rows");
        let mut b = Builder {
            data,
            config: &config,
            nodes: Vec::new(),
            importances: vec![0.0; data.n_features()],
        };
        b.build(rows.to_vec(), 0, rng);
        let (nodes, importances) = (b.nodes, b.importances);
        DecisionTree {
            nodes,
            config,
            importances,
        }
    }

    /// Predict a single row of features.
    pub fn predict(&self, row: &[f32]) -> f32 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    missing_left,
                    left,
                    right,
                } => {
                    let v = row[*feature];
                    cur = if v.is_nan() {
                        if *missing_left {
                            *left
                        } else {
                            *right
                        }
                    } else if v <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    pub fn task(&self) -> Task {
        self.config.task
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Re-export for forest internals.
pub(crate) fn rng_from(seed: u64) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed)
}

/// Bootstrap sample of `n` row indices drawn from `rows`.
pub(crate) fn bootstrap(rows: &[usize], rng: &mut StdRng) -> Vec<usize> {
    (0..rows.len())
        .map(|_| rows[rng.gen_range(0..rows.len())])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        // XOR of two binary features — requires depth ≥ 2.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            let a = (i / 2) % 2;
            let b = i % 2;
            features.push(vec![a as f32 + 0.001 * (i as f32), b as f32]);
            labels.push((a ^ b) as u32);
        }
        Dataset::new(
            features,
            vec!["a".into(), "b".into()],
            Labels::Classes(labels),
        )
    }

    #[test]
    fn learns_xor() {
        let d = xor_dataset();
        let rows: Vec<usize> = (0..d.n_rows()).collect();
        let mut rng = rng_from(1);
        let tree = DecisionTree::fit(&d, &rows, TreeConfig::classification(2), &mut rng);
        let correct = (0..d.n_rows())
            .filter(|&i| {
                let pred = tree.predict(&d.features[i]) as u32;
                matches!(&d.labels, Labels::Classes(c) if c[i] == pred)
            })
            .count();
        assert!(correct >= 95, "XOR accuracy {correct}/100");
    }

    #[test]
    fn regression_fits_step_function() {
        let features: Vec<Vec<f32>> = (0..60).map(|i| vec![i as f32]).collect();
        let labels: Vec<f32> = (0..60).map(|i| if i < 30 { 1.0 } else { 5.0 }).collect();
        let d = Dataset::new(features, vec!["x".into()], Labels::Values(labels));
        let rows: Vec<usize> = (0..60).collect();
        let mut rng = rng_from(2);
        let tree = DecisionTree::fit(&d, &rows, TreeConfig::regression(), &mut rng);
        assert!((tree.predict(&[5.0]) - 1.0).abs() < 0.2);
        assert!((tree.predict(&[50.0]) - 5.0).abs() < 0.2);
    }

    #[test]
    fn missing_values_follow_majority_branch() {
        // Feature 0 present for 80% of rows and perfectly predictive;
        // missing rows should still get a sensible prediction.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            let x = if i % 5 == 0 {
                f32::NAN
            } else if i < 50 {
                0.0
            } else {
                1.0
            };
            features.push(vec![x]);
            labels.push(u32::from(i >= 50));
        }
        let d = Dataset::new(features, vec!["x".into()], Labels::Classes(labels));
        let rows: Vec<usize> = (0..100).collect();
        let mut rng = rng_from(3);
        let tree = DecisionTree::fit(&d, &rows, TreeConfig::classification(2), &mut rng);
        // Present values classify perfectly.
        assert_eq!(tree.predict(&[0.0]), 0.0);
        assert_eq!(tree.predict(&[1.0]), 1.0);
        // Missing routes deterministically without panicking.
        let m = tree.predict(&[f32::NAN]);
        assert!(m == 0.0 || m == 1.0);
    }

    #[test]
    fn importances_favor_predictive_features() {
        // Feature 1 is the label; feature 0 is noise.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        let mut rng = rng_from(4);
        for i in 0..200 {
            let y = (i % 2) as u32;
            features.push(vec![rng.gen_range(-1.0f32..1.0), y as f32]);
            labels.push(y);
        }
        let d = Dataset::new(
            features,
            vec!["noise".into(), "signal".into()],
            Labels::Classes(labels),
        );
        let rows: Vec<usize> = (0..d.n_rows()).collect();
        let tree = DecisionTree::fit(&d, &rows, TreeConfig::classification(2), &mut rng);
        assert!(
            tree.importances[1] > tree.importances[0] * 5.0,
            "importances {:?}",
            tree.importances
        );
    }

    #[test]
    fn pure_node_stops_early() {
        let d = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec!["x".into()],
            Labels::Classes(vec![1, 1, 1]),
        );
        let rows: Vec<usize> = (0..3).collect();
        let mut rng = rng_from(5);
        let tree = DecisionTree::fit(&d, &rows, TreeConfig::classification(2), &mut rng);
        assert_eq!(tree.n_nodes(), 1, "pure labels need a single leaf");
    }

    #[test]
    fn max_depth_limits_tree() {
        let d = xor_dataset();
        let rows: Vec<usize> = (0..d.n_rows()).collect();
        let mut rng = rng_from(6);
        let mut cfg = TreeConfig::classification(2);
        cfg.max_depth = 0;
        let tree = DecisionTree::fit(&d, &rows, cfg, &mut rng);
        assert_eq!(tree.n_nodes(), 1);
    }
}
