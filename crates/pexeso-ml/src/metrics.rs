//! Evaluation metrics: micro-F1 (classification) and MSE (regression),
//! plus mean ± std aggregation across cross-validation folds (the form
//! Table V reports).

/// Micro-averaged F1 over multi-class predictions. Computed from pooled
/// TP/FP/FN; for single-label problems this equals accuracy, but we keep
/// the full computation for clarity and to support future multi-label use.
pub fn micro_f1(y_true: &[u32], y_pred: &[u32]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let classes: u32 = y_true
        .iter()
        .chain(y_pred.iter())
        .copied()
        .max()
        .unwrap_or(0)
        + 1;
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut fnn = 0u64;
    for c in 0..classes {
        for (&t, &p) in y_true.iter().zip(y_pred.iter()) {
            match (t == c, p == c) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fnn += 1,
                (false, false) => {}
            }
        }
    }
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fnn) as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Mean squared error.
pub fn mse(y_true: &[f32], y_pred: &[f32]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred.iter())
        .map(|(&t, &p)| ((t - p) as f64).powi(2))
        .sum::<f64>()
        / y_true.len() as f64
}

/// Mean and (population) standard deviation of fold scores.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_f1_perfect_and_zero() {
        assert_eq!(micro_f1(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(micro_f1(&[0, 0, 0], &[1, 1, 1]), 0.0);
    }

    #[test]
    fn micro_f1_equals_accuracy_single_label() {
        let t = [0u32, 1, 2, 1, 0, 2, 2];
        let p = [0u32, 1, 1, 1, 2, 2, 2];
        let acc = t.iter().zip(p.iter()).filter(|(a, b)| a == b).count() as f64 / t.len() as f64;
        assert!((micro_f1(&t, &p) - acc).abs() < 1e-12);
    }

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((mse(&[0.0, 0.0], &[1.0, 3.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mean_std_values() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        micro_f1(&[0], &[0, 1]);
    }
}
