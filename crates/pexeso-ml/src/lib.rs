//! # pexeso-ml — the ML-task substrate behind the paper's Table V
//!
//! The paper measures how much joining semantically-matched lake tables
//! improves downstream models: a random forest is trained on a query table
//! before and after left-joining the discovered tables, and micro-F1 / MSE
//! are compared across competitors. scikit-learn is not available here, so
//! this crate implements the full pipeline from scratch:
//!
//! * [`dataset`] — feature matrices with missing values, splits, k-fold CV;
//! * [`tree`] / [`forest`] — CART decision trees and bagged random forests
//!   (gini for classification, variance for regression, missing-value
//!   routing);
//! * [`metrics`] — micro-F1 and MSE with cross-fold mean ± std;
//! * [`augment`] — left-join feature augmentation with the paper's conflict
//!   handling (same-name columns aggregated) and sparsity semantics
//!   (unmatched rows get missing values — the mechanism by which equi-join
//!   hurts);
//! * [`select`] — recursive feature elimination by forest importance;
//! * [`tasks`] — the three Table-V-style synthetic tasks over a generated
//!   lake.

pub mod augment;
pub mod dataset;
pub mod forest;
pub mod metrics;
pub mod select;
pub mod tasks;
pub mod tree;

pub use dataset::{Dataset, Labels};
pub use forest::{ForestConfig, RandomForest};
pub use tree::{DecisionTree, Task, TreeConfig};
