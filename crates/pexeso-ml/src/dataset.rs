//! Feature matrices, labels, and resampling.
//!
//! Features are `f32` with `NAN` denoting *missing* — the natural encoding
//! for left-join augmentation where most lake columns only cover matched
//! rows. Trees route missing values explicitly, so no imputation happens.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Labels of a supervised task.
#[derive(Debug, Clone, PartialEq)]
pub enum Labels {
    /// Class ids in `0..n_classes`.
    Classes(Vec<u32>),
    /// Regression targets.
    Values(Vec<f32>),
}

impl Labels {
    pub fn len(&self) -> usize {
        match self {
            Labels::Classes(v) => v.len(),
            Labels::Values(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A supervised dataset: row-major features plus labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    pub features: Vec<Vec<f32>>,
    pub feature_names: Vec<String>,
    pub labels: Labels,
}

impl Dataset {
    pub fn new(features: Vec<Vec<f32>>, feature_names: Vec<String>, labels: Labels) -> Self {
        assert_eq!(features.len(), labels.len(), "rows must match labels");
        for row in &features {
            assert_eq!(row.len(), feature_names.len(), "row width must match names");
        }
        Self {
            features,
            feature_names,
            labels,
        }
    }

    pub fn n_rows(&self) -> usize {
        self.features.len()
    }

    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Append extra feature columns (e.g. from join augmentation). Rows
    /// must align.
    pub fn extend_features(&mut self, names: Vec<String>, columns: Vec<Vec<f32>>) {
        assert_eq!(names.len(), columns.len());
        for col in &columns {
            assert_eq!(
                col.len(),
                self.n_rows(),
                "augmented column must cover all rows"
            );
        }
        for (name, col) in names.into_iter().zip(columns) {
            self.feature_names.push(name);
            for (row, v) in self.features.iter_mut().zip(col) {
                row.push(v);
            }
        }
    }

    /// Keep only the given feature indices (used by RFE).
    pub fn project(&self, keep: &[usize]) -> Dataset {
        let names = keep
            .iter()
            .map(|&i| self.feature_names[i].clone())
            .collect();
        let features = self
            .features
            .iter()
            .map(|row| keep.iter().map(|&i| row[i]).collect())
            .collect();
        Dataset {
            features,
            feature_names: names,
            labels: self.labels.clone(),
        }
    }

    /// Deterministic shuffled k-fold indices: `(train, test)` per fold.
    pub fn kfold(&self, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(k >= 2, "k-fold needs k >= 2");
        let mut idx: Vec<usize> = (0..self.n_rows()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let fold_size = self.n_rows().div_ceil(k);
        let mut folds = Vec::with_capacity(k);
        for f in 0..k {
            let lo = f * fold_size;
            let hi = ((f + 1) * fold_size).min(self.n_rows());
            if lo >= hi {
                continue;
            }
            let test: Vec<usize> = idx[lo..hi].to_vec();
            let train: Vec<usize> = idx[..lo].iter().chain(idx[hi..].iter()).copied().collect();
            folds.push((train, test));
        }
        folds
    }

    /// Number of classes (classification only).
    pub fn n_classes(&self) -> Option<u32> {
        match &self.labels {
            Labels::Classes(c) => Some(c.iter().copied().max().map_or(0, |m| m + 1)),
            Labels::Values(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            (0..10).map(|i| vec![i as f32, (10 - i) as f32]).collect(),
            vec!["a".into(), "b".into()],
            Labels::Classes((0..10).map(|i| i % 2).collect()),
        )
    }

    #[test]
    fn construction_and_shape() {
        let d = toy();
        assert_eq!(d.n_rows(), 10);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), Some(2));
    }

    #[test]
    #[should_panic(expected = "rows must match labels")]
    fn mismatched_labels_panic() {
        Dataset::new(
            vec![vec![1.0]],
            vec!["a".into()],
            Labels::Classes(vec![0, 1]),
        );
    }

    #[test]
    fn extend_features_aligns() {
        let mut d = toy();
        d.extend_features(vec!["c".into()], vec![vec![7.0; 10]]);
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.features[3][2], 7.0);
    }

    #[test]
    fn project_selects_columns() {
        let d = toy();
        let p = d.project(&[1]);
        assert_eq!(p.n_features(), 1);
        assert_eq!(p.feature_names, vec!["b"]);
        assert_eq!(p.features[0], vec![10.0]);
    }

    #[test]
    fn kfold_partitions_everything() {
        let d = toy();
        let folds = d.kfold(4, 7);
        let mut seen = vec![0usize; d.n_rows()];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), d.n_rows());
            for &t in test {
                seen[t] += 1;
            }
        }
        assert!(
            seen.iter().all(|&s| s == 1),
            "each row in exactly one test fold: {seen:?}"
        );
    }

    #[test]
    fn kfold_deterministic() {
        let d = toy();
        assert_eq!(d.kfold(3, 9), d.kfold(3, 9));
        assert_ne!(d.kfold(3, 9), d.kfold(3, 10));
    }

    #[test]
    fn regression_labels() {
        let d = Dataset::new(
            vec![vec![1.0], vec![2.0]],
            vec!["x".into()],
            Labels::Values(vec![0.5, 1.5]),
        );
        assert_eq!(d.n_classes(), None);
        assert_eq!(d.labels.len(), 2);
    }
}
