//! Left-join feature augmentation (the data-enrichment step of Table V).
//!
//! Given a per-query-row join mapping into lake tables, every non-key lake
//! column becomes a candidate feature. Following the paper:
//!
//! * columns sharing a header across joined tables are **aggregated** into
//!   one feature (numeric values summed);
//! * a query row that matched several target rows takes the mean
//!   (the paper did not observe this conflict; we handle it anyway);
//! * rows without a match get **missing** (`NAN`) — the sparsity that makes
//!   low-recall equi-joins hurt downstream models;
//! * a column is discarded when it covers too few query rows (the paper
//!   drops columns with fewer than 200 non-missing values).

use std::collections::HashMap;

use pexeso_lake::table::Table;

use crate::dataset::Dataset;

/// Per-query-row matches into lake tables: `(table index, row index)`.
#[derive(Debug, Clone, Default)]
pub struct JoinMapping {
    pub matches: Vec<Vec<(usize, usize)>>,
}

impl JoinMapping {
    pub fn new(n_query_rows: usize) -> Self {
        Self {
            matches: vec![Vec::new(); n_query_rows],
        }
    }

    /// Fraction of query rows with at least one match.
    pub fn row_match_rate(&self) -> f64 {
        if self.matches.is_empty() {
            return 0.0;
        }
        self.matches.iter().filter(|m| !m.is_empty()).count() as f64 / self.matches.len() as f64
    }

    /// Total matched (query row, lake row) pairs — the paper's "# Match"
    /// when normalised by the lake size.
    pub fn total_pairs(&self) -> usize {
        self.matches.iter().map(|m| m.len()).sum()
    }
}

/// Parse a cell into a numeric feature value: numbers parse directly;
/// categorical strings hash into a stable small range.
fn cell_to_f32(s: &str) -> Option<f32> {
    let t = s.trim();
    if t.is_empty() {
        return None;
    }
    if let Ok(v) = t.replace(',', "").parse::<f32>() {
        return Some(v);
    }
    // Stable categorical encoding.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in t.to_lowercase().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    Some((h % 1024) as f32)
}

/// Options for augmentation.
#[derive(Debug, Clone)]
pub struct AugmentConfig {
    /// Minimum non-missing query rows for a feature to be kept.
    pub min_coverage: usize,
    /// Skip these lake headers entirely (key columns).
    pub skip_headers: Vec<String>,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        Self {
            min_coverage: 5,
            skip_headers: vec!["name".to_string()],
        }
    }
}

/// Build augmented feature columns for the query rows and append them to
/// `base`. Returns the names of the features that were added.
pub fn augment(
    base: &mut Dataset,
    lake_tables: &[&Table],
    mapping: &JoinMapping,
    config: &AugmentConfig,
) -> Vec<String> {
    assert_eq!(
        base.n_rows(),
        mapping.matches.len(),
        "mapping must cover all query rows"
    );

    // Aggregated per header: per query row, (sum over matched rows of the
    // per-row value, count).
    let mut agg: HashMap<String, Vec<(f32, u32)>> = HashMap::new();
    for (qi, row_matches) in mapping.matches.iter().enumerate() {
        for &(ti, ri) in row_matches {
            let table = lake_tables[ti];
            for (ci, header) in table.headers().iter().enumerate() {
                if config.skip_headers.iter().any(|s| s == header) {
                    continue;
                }
                if let Some(v) = cell_to_f32(table.cell(ri, ci)) {
                    let col = agg
                        .entry(header.clone())
                        .or_insert_with(|| vec![(0.0, 0); mapping.matches.len()]);
                    col[qi].0 += v;
                    col[qi].1 += 1;
                }
            }
        }
    }

    // Finalise: mean per query row (conflict rule), NAN when unmatched;
    // drop low-coverage columns; deterministic name order.
    let mut names: Vec<String> = agg.keys().cloned().collect();
    names.sort_unstable();
    let mut kept_names = Vec::new();
    let mut kept_cols = Vec::new();
    for name in names {
        let col = &agg[&name];
        let coverage = col.iter().filter(|(_, c)| *c > 0).count();
        if coverage < config.min_coverage {
            continue;
        }
        let values: Vec<f32> = col
            .iter()
            .map(|&(sum, count)| {
                if count == 0 {
                    f32::NAN
                } else {
                    sum / count as f32
                }
            })
            .collect();
        kept_names.push(format!("joined::{name}"));
        kept_cols.push(values);
    }
    base.extend_features(kept_names.clone(), kept_cols);
    kept_names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Labels;

    fn lake_table(name: &str, rows: Vec<(&str, f32, &str)>) -> Table {
        Table::from_rows(
            name,
            vec!["name", "attr_0", "category"],
            rows.into_iter()
                .map(|(k, a, c)| vec![k.to_string(), a.to_string(), c.to_string()])
                .collect(),
        )
    }

    fn base(n: usize) -> Dataset {
        Dataset::new(
            (0..n).map(|i| vec![i as f32]).collect(),
            vec!["base".into()],
            Labels::Classes((0..n as u32).map(|i| i % 2).collect()),
        )
    }

    #[test]
    fn matched_rows_get_values_unmatched_get_nan() {
        let t = lake_table("t0", vec![("a", 1.5, "class_1"), ("b", 2.5, "class_2")]);
        let mut mapping = JoinMapping::new(3);
        mapping.matches[0].push((0, 0));
        mapping.matches[2].push((0, 1));
        let mut d = base(3);
        let added = augment(
            &mut d,
            &[&t],
            &mapping,
            &AugmentConfig {
                min_coverage: 1,
                ..Default::default()
            },
        );
        assert!(added.contains(&"joined::attr_0".to_string()));
        let attr_idx = d
            .feature_names
            .iter()
            .position(|n| n == "joined::attr_0")
            .unwrap();
        assert_eq!(d.features[0][attr_idx], 1.5);
        assert!(d.features[1][attr_idx].is_nan());
        assert_eq!(d.features[2][attr_idx], 2.5);
    }

    #[test]
    fn multiple_matches_average() {
        let t = lake_table("t0", vec![("a", 1.0, "class_1"), ("a2", 3.0, "class_1")]);
        let mut mapping = JoinMapping::new(1);
        mapping.matches[0].push((0, 0));
        mapping.matches[0].push((0, 1));
        let mut d = base(1);
        augment(
            &mut d,
            &[&t],
            &mapping,
            &AugmentConfig {
                min_coverage: 1,
                ..Default::default()
            },
        );
        let attr_idx = d
            .feature_names
            .iter()
            .position(|n| n == "joined::attr_0")
            .unwrap();
        assert_eq!(d.features[0][attr_idx], 2.0);
    }

    #[test]
    fn same_header_across_tables_aggregates() {
        let t0 = lake_table("t0", vec![("a", 1.0, "class_1")]);
        let t1 = lake_table("t1", vec![("a", 5.0, "class_1")]);
        let mut mapping = JoinMapping::new(1);
        mapping.matches[0].push((0, 0));
        mapping.matches[0].push((1, 0));
        let mut d = base(1);
        augment(
            &mut d,
            &[&t0, &t1],
            &mapping,
            &AugmentConfig {
                min_coverage: 1,
                ..Default::default()
            },
        );
        // One aggregated feature, mean of the two matched values.
        let attr_cols: Vec<_> = d
            .feature_names
            .iter()
            .filter(|n| n.contains("attr_0"))
            .collect();
        assert_eq!(attr_cols.len(), 1);
        let attr_idx = d
            .feature_names
            .iter()
            .position(|n| n == "joined::attr_0")
            .unwrap();
        assert_eq!(d.features[0][attr_idx], 3.0);
    }

    #[test]
    fn low_coverage_columns_dropped() {
        let t = lake_table("t0", vec![("a", 1.0, "class_1")]);
        let mut mapping = JoinMapping::new(10);
        mapping.matches[0].push((0, 0));
        let mut d = base(10);
        let added = augment(
            &mut d,
            &[&t],
            &mapping,
            &AugmentConfig {
                min_coverage: 5,
                ..Default::default()
            },
        );
        assert!(added.is_empty(), "1/10 coverage is below the minimum");
        assert_eq!(d.n_features(), 1);
    }

    #[test]
    fn key_header_skipped() {
        let t = lake_table("t0", vec![("a", 1.0, "class_1")]);
        let mut mapping = JoinMapping::new(1);
        mapping.matches[0].push((0, 0));
        let mut d = base(1);
        let added = augment(
            &mut d,
            &[&t],
            &mapping,
            &AugmentConfig {
                min_coverage: 1,
                ..Default::default()
            },
        );
        assert!(added.iter().all(|n| !n.contains("name")));
    }

    #[test]
    fn categorical_cells_encode_stably() {
        assert_eq!(cell_to_f32("class_3"), cell_to_f32("CLASS_3"));
        assert_ne!(cell_to_f32("class_3"), cell_to_f32("class_4"));
        assert_eq!(cell_to_f32("12.5"), Some(12.5));
        assert_eq!(cell_to_f32("1,234"), Some(1234.0));
        assert_eq!(cell_to_f32("  "), None);
    }

    #[test]
    fn match_rate_accounting() {
        let mut m = JoinMapping::new(4);
        m.matches[0].push((0, 0));
        m.matches[0].push((0, 1));
        m.matches[2].push((0, 0));
        assert_eq!(m.row_match_rate(), 0.5);
        assert_eq!(m.total_pairs(), 3);
    }
}
