//! Property tests for the ML substrate: prediction domains, metric ranges,
//! fold hygiene, augmentation alignment.

use proptest::prelude::*;

use pexeso_ml::dataset::{Dataset, Labels};
use pexeso_ml::forest::{ForestConfig, RandomForest};
use pexeso_ml::metrics::{mean_std, micro_f1, mse};

fn random_dataset(seed: u64, n: usize, classes: u32) -> Dataset {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let features: Vec<Vec<f32>> = (0..n)
        .map(|_| {
            (0..3)
                .map(|_| {
                    if rng.gen_bool(0.1) {
                        f32::NAN
                    } else {
                        rng.gen_range(-1.0f32..1.0)
                    }
                })
                .collect()
        })
        .collect();
    let labels = Labels::Classes((0..n).map(|_| rng.gen_range(0..classes)).collect());
    Dataset::new(features, vec!["a".into(), "b".into(), "c".into()], labels)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Classification predictions always land in the class range, even
    /// with missing values in the features.
    #[test]
    fn predictions_in_class_range(seed in 0u64..1000, classes in 2u32..6) {
        let d = random_dataset(seed, 40, classes);
        let rows: Vec<usize> = (0..d.n_rows()).collect();
        let mut cfg = ForestConfig::classification(classes);
        cfg.n_trees = 5;
        let forest = RandomForest::fit(&d, &rows, &cfg);
        for row in &d.features {
            let p = forest.predict(row) as u32;
            prop_assert!(p < classes, "prediction {} outside 0..{}", p, classes);
        }
        // NaN-heavy unseen row must not panic either.
        let p = forest.predict(&[f32::NAN, f32::NAN, f32::NAN]) as u32;
        prop_assert!(p < classes);
    }

    /// micro-F1 is within [0, 1] and equals 1 iff predictions are perfect.
    #[test]
    fn micro_f1_range(truth in proptest::collection::vec(0u32..4, 1..50), seed in 0u64..100) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let pred: Vec<u32> = truth.iter().map(|&t| if rng.gen_bool(0.7) { t } else { rng.gen_range(0..4) }).collect();
        let f = micro_f1(&truth, &pred);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!((micro_f1(&truth, &truth) - 1.0).abs() < 1e-12);
        if pred == truth {
            prop_assert!((f - 1.0).abs() < 1e-12);
        }
    }

    /// MSE is non-negative and zero iff equal.
    #[test]
    fn mse_nonneg(y in proptest::collection::vec(-10.0f32..10.0, 1..40)) {
        prop_assert!(mse(&y, &y).abs() < 1e-12);
        let shifted: Vec<f32> = y.iter().map(|v| v + 1.0).collect();
        let m = mse(&y, &shifted);
        prop_assert!((m - 1.0).abs() < 1e-5);
    }

    /// mean_std: std is zero iff all values equal; mean bounded by extremes.
    #[test]
    fn mean_std_properties(v in proptest::collection::vec(-100.0f64..100.0, 1..30)) {
        let (mean, std) = mean_std(&v);
        let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        prop_assert!(std >= 0.0);
        let constant = vec![7.5f64; v.len()];
        let (_, s0) = mean_std(&constant);
        prop_assert!(s0.abs() < 1e-12);
    }

    /// k-fold test sets partition the rows exactly once.
    #[test]
    fn kfold_partition(seed in 0u64..500, k in 2usize..6, n in 6usize..60) {
        let d = random_dataset(seed, n, 2);
        let folds = d.kfold(k, seed);
        let mut seen = vec![0u32; n];
        for (train, test) in &folds {
            for &i in test {
                seen[i] += 1;
            }
            // No train/test overlap.
            let tset: std::collections::HashSet<_> = test.iter().collect();
            prop_assert!(train.iter().all(|i| !tset.contains(i)));
        }
        prop_assert!(seen.iter().all(|&s| s == 1));
    }
}
