//! Out-of-core search over a partitioned lake (Section IV).
//!
//! When the repository exceeds main memory, columns are partitioned
//! (see [`crate::partition`]), one PEXESO index is built and persisted per
//! partition, and a search loads partitions one at a time, merging results.
//! [`PartitionedLake::search_with_policy`] runs the same loop under the
//! crate-wide [`ExecPolicy`]: partitions are coarse work units handed to a
//! [`crate::exec::map_units`] work-stealing pool, overlapping partition
//! loading with searching (an extension over the paper's sequential loop;
//! the sequential mode is the default and is what the experiments time).
//! Results are identical for every policy.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::column::ColumnSet;
use crate::config::{ExecPolicy, IndexOptions, JoinThreshold, Tau};
use crate::error::{PexesoError, Result};
use crate::exec;
use crate::metric::{Angular, Chebyshev, Euclidean, Manhattan, Metric};
use crate::partition::{partition_columns, split_column_set, PartitionConfig};
use crate::persist::{load_index, save_index};
use crate::query::{
    fold_outcome, rank_topk_hits, sort_threshold_hits, BudgetGuard, Exceeded, Query, QueryMode,
    QueryOutcome, QueryResponse, Queryable,
};
use crate::search::{PexesoIndex, SearchOptions};
use crate::stats::SearchStats;
use crate::vector::VectorStore;

/// A joinable column found in a partitioned lake, identified by the
/// caller-stable external id (partitioning reorders internal ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalHit {
    pub external_id: u64,
    pub table_name: String,
    pub column_name: String,
    /// Matched query vectors (lower bound under early termination).
    pub match_count: u32,
}

/// The small text manifest persisted next to the partition files of a
/// deployed lake. It records what cannot be recovered from the partition
/// files alone: the embedding dimensionality the query side must use, and
/// a monotonically increasing `index_version` bumped on every re-index so
/// long-running servers can tell one build of the same directory from the
/// next (the hot-swap path in `pexeso-serve` keys its result cache on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LakeManifest {
    /// Manifest format version (currently 1).
    pub format_version: u32,
    /// Name of the embedder family used at index time (e.g. `hash`).
    pub embedder: String,
    /// Embedding dimensionality of every vector in the deployment.
    pub dim: usize,
    /// Name of the [`Metric`] the partition indexes were built with. The
    /// persisted pivot mappings are only valid under this metric, so the
    /// query side must match it exactly (a server rejects mismatches).
    pub metric: String,
    /// Build generation of this directory; starts at 1, +1 per re-index.
    pub index_version: u64,
    /// The next free caller-stable external id: every column persisted in
    /// this build (base partitions *and* any compacted-in deltas) has an
    /// external id strictly below it. Incremental ingest assigns new ids
    /// from here so delta columns can never collide with base columns.
    /// Legacy manifests (written before incremental maintenance existed)
    /// default to 0, which spells "unknown — scan the partitions".
    pub next_external_id: u64,
}

impl LakeManifest {
    /// Manifest location inside a deployment directory.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join("manifest.txt")
    }

    /// A first-generation manifest for a fresh Euclidean deployment (the
    /// only metric the offline pipeline builds today).
    pub fn new(embedder: &str, dim: usize) -> Self {
        Self {
            format_version: 1,
            embedder: embedder.to_string(),
            dim,
            metric: "euclidean".to_string(),
            index_version: 1,
            next_external_id: 0,
        }
    }

    /// Read and parse `dir`'s manifest. Manifests written before
    /// `index_version`/`metric` existed default them to 1 / `euclidean`.
    pub fn read(dir: &Path) -> Result<Self> {
        let text = fs::read_to_string(Self::path(dir))?;
        let mut format_version = 1u32;
        let mut embedder = String::from("hash");
        let mut dim = None;
        let mut metric = String::from("euclidean");
        let mut index_version = 1u64;
        let mut next_external_id = 0u64;
        for line in text.lines() {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            match key.trim() {
                "version" => {
                    format_version = value.trim().parse().map_err(|_| {
                        PexesoError::Corrupt(format!("bad manifest version '{value}'"))
                    })?
                }
                "embedder" => embedder = value.trim().to_string(),
                "metric" => metric = value.trim().to_string(),
                "dim" => {
                    dim =
                        Some(value.trim().parse().map_err(|_| {
                            PexesoError::Corrupt(format!("bad manifest dim '{value}'"))
                        })?)
                }
                "index_version" => {
                    index_version = value.trim().parse().map_err(|_| {
                        PexesoError::Corrupt(format!("bad manifest index_version '{value}'"))
                    })?
                }
                "next_external_id" => {
                    next_external_id = value.trim().parse().map_err(|_| {
                        PexesoError::Corrupt(format!("bad manifest next_external_id '{value}'"))
                    })?
                }
                _ => {} // forward-compatible: ignore unknown keys
            }
        }
        let dim = dim.ok_or_else(|| PexesoError::Corrupt("manifest missing dim".into()))?;
        if dim == 0 {
            return Err(PexesoError::Corrupt("manifest dim must be positive".into()));
        }
        Ok(Self {
            format_version,
            embedder,
            dim,
            metric,
            index_version,
            next_external_id,
        })
    }

    /// Write the manifest into `dir` crash-safely: the bytes go to a
    /// temporary file first and are published with an atomic rename, so a
    /// torn write (crash, full disk, SIGKILL mid-`write`) can never leave
    /// a half-written manifest over a working deployment — readers see
    /// either the old manifest or the new one, nothing in between.
    pub fn write(&self, dir: &Path) -> Result<()> {
        let target = Self::path(dir);
        let tmp = dir.join("manifest.txt.tmp");
        let body = format!(
            "version={}\nembedder={}\ndim={}\nmetric={}\nindex_version={}\nnext_external_id={}\n",
            self.format_version,
            self.embedder,
            self.dim,
            self.metric,
            self.index_version,
            self.next_external_id,
        );
        {
            let mut file = fs::File::create(&tmp)?;
            crate::fault::write_all(&mut file, body.as_bytes(), "manifest.write.tmp")?;
        }
        crate::fault::check("manifest.rename")?;
        fs::rename(&tmp, &target)?;
        Ok(())
    }

    /// The manifest a re-index of `dir` should write: same identity, next
    /// `index_version` — continuing from the existing manifest when one is
    /// present, or starting a fresh line at 1 when none exists. A manifest
    /// that exists but cannot be read is an error: silently restarting the
    /// version line would erase the build lineage operators rely on.
    pub fn next_build(dir: &Path, embedder: &str, dim: usize) -> Result<Self> {
        match Self::read(dir) {
            Ok(prev) => Ok(Self {
                index_version: prev.index_version + 1,
                ..Self::new(embedder, dim)
            }),
            Err(PexesoError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                Ok(Self::new(embedder, dim))
            }
            Err(e) => Err(e),
        }
    }
}

/// A disk-resident, partitioned PEXESO deployment.
#[derive(Debug)]
pub struct PartitionedLake {
    dir: PathBuf,
    partition_files: Vec<PathBuf>,
}

impl PartitionedLake {
    /// Partition `columns`, build one index per partition, and persist
    /// everything under `dir` (created if missing; existing `part_*.pex`
    /// files are replaced).
    pub fn build<M: Metric>(
        columns: &ColumnSet,
        metric: M,
        partition_config: &PartitionConfig,
        index_options: &IndexOptions,
        dir: &Path,
    ) -> Result<Self> {
        fs::create_dir_all(dir)?;
        // Clear stale partition files so `open` never mixes deployments
        // (including `.tmp` fragments a crashed atomic save left behind).
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "pex" || e == "tmp") {
                fs::remove_file(&path)?;
            }
        }
        let partitioning = partition_columns(columns, partition_config)?;
        let parts = split_column_set(columns, &partitioning);
        let mut files = Vec::with_capacity(parts.len());
        for (i, (sub, _)) in parts.into_iter().enumerate() {
            let index = PexesoIndex::build(sub, metric.clone(), index_options.clone())?;
            let path = dir.join(format!("part_{i:04}.pex"));
            save_index(&index, &path)?;
            files.push(path);
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            partition_files: files,
        })
    }

    /// Open an existing deployment directory.
    pub fn open(dir: &Path) -> Result<Self> {
        let mut files: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "pex"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(PexesoError::EmptyInput("no partition files in directory"));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            partition_files: files,
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn num_partitions(&self) -> usize {
        self.partition_files.len()
    }

    /// The partition files backing this deployment, in search order — the
    /// immutable handle set a resident server snapshots.
    pub fn partition_files(&self) -> &[PathBuf] {
        &self.partition_files
    }

    /// Load one partition's index into memory (e.g. for top-k merging or
    /// inspection).
    pub fn load_partition<M: Metric>(&self, i: usize, metric: M) -> Result<PexesoIndex<M>> {
        let path = self
            .partition_files
            .get(i)
            .ok_or_else(|| PexesoError::InvalidParameter(format!("no partition {i}")))?;
        load_index(path, metric)
    }

    /// Total bytes on disk across partition files.
    pub fn disk_bytes(&self) -> Result<u64> {
        let mut total = 0;
        for f in &self.partition_files {
            total += fs::metadata(f)?.len();
        }
        Ok(total)
    }

    /// Typed execution under an explicit metric instance: the engine
    /// behind both [`Queryable::execute`] (which resolves the metric from
    /// the query/manifest) and the legacy typed shims.
    pub(crate) fn execute_typed<M: Metric>(
        &self,
        metric: M,
        query: &Query,
        vectors: &VectorStore,
    ) -> Result<QueryResponse> {
        execute_partitioned(self.partition_files.len(), query, |i, inner, guard| {
            let index = load_index(&self.partition_files[i], metric.clone())?;
            execute_on_index(&index, inner, vectors, guard)
        })
    }

    /// Typed batch execution: the engine behind
    /// [`Queryable::execute_many`], sweeping partition-major so every
    /// partition file is loaded once for the whole batch.
    pub(crate) fn execute_many_typed<M: Metric>(
        &self,
        metric: M,
        query: &Query,
        columns: &[&VectorStore],
    ) -> Result<Vec<QueryResponse>> {
        execute_partitioned_many(self.partition_files.len(), query, columns, |i| {
            load_index(&self.partition_files[i], metric.clone())
        })
    }

    /// The metric this deployment must be queried with: an explicit
    /// [`Query::metric`] expectation, cross-checked against the directory
    /// manifest when one exists (a mismatch is a typed error — the
    /// persisted pivot mappings are only valid under the build metric);
    /// with neither, Euclidean, the only metric the offline pipeline
    /// deploys.
    fn resolve_metric_name(&self, query: &Query) -> Result<String> {
        let manifest_metric = match LakeManifest::read(&self.dir) {
            Ok(m) => Some(m.metric),
            Err(PexesoError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        match (query.metric.clone(), manifest_metric) {
            (Some(q), Some(m)) if q != m => Err(PexesoError::InvalidParameter(format!(
                "deployment manifest names metric '{m}'; query expects '{q}'"
            ))),
            (Some(q), _) => Ok(q),
            (None, Some(m)) => Ok(m),
            (None, None) => Ok("euclidean".to_string()),
        }
    }

    /// Sequential out-of-core search: load each partition, search it, merge.
    /// Load time is included in the stats' total time, mirroring the
    /// paper's Table VII accounting ("includes the overhead of loading the
    /// data from disks").
    #[deprecated(note = "use `Queryable::execute` with `Query::threshold(tau, t)`")]
    pub fn search<M: Metric>(
        &self,
        metric: M,
        query: &VectorStore,
        tau: Tau,
        t: JoinThreshold,
        opts: SearchOptions,
    ) -> Result<(Vec<GlobalHit>, SearchStats)> {
        let q = Query::threshold(tau, t).with_options(opts);
        let resp = self.execute_typed(metric, &q, query)?;
        Ok((resp.hits, resp.stats))
    }

    /// Out-of-core search under an explicit [`ExecPolicy`]: each partition
    /// (load + search + hit resolution) is one coarse work unit on the
    /// policy's thread pool, so I/O and CPU overlap across partitions.
    /// Results are identical to the sequential loop: per-partition results
    /// are kept in partition order and merged deterministically.
    #[deprecated(
        note = "use `Queryable::execute` with `Query::threshold(tau, t).with_policy(policy)`"
    )]
    pub fn search_with_policy<M: Metric>(
        &self,
        metric: M,
        query: &VectorStore,
        tau: Tau,
        t: JoinThreshold,
        opts: SearchOptions,
        policy: ExecPolicy,
    ) -> Result<(Vec<GlobalHit>, SearchStats)> {
        let q = Query::threshold(tau, t)
            .with_options(opts)
            .with_policy(policy);
        let resp = self.execute_typed(metric, &q, query)?;
        Ok((resp.hits, resp.stats))
    }

    /// Out-of-core top-k: the (up to) `k` columns of the whole lake with
    /// the most matching query records, ranked by count descending and
    /// ties broken by ascending external id (internal column ids are not
    /// stable across partitioning). Sequential partition loop; see
    /// [`PartitionedLake::search_topk_with_policy`].
    #[deprecated(note = "use `Queryable::execute` with `Query::topk(tau, k)`")]
    pub fn search_topk<M: Metric>(
        &self,
        metric: M,
        query: &VectorStore,
        tau: Tau,
        k: usize,
        opts: SearchOptions,
    ) -> Result<(Vec<GlobalHit>, SearchStats)> {
        let q = Query::topk(tau, k).with_options(opts);
        let resp = self.execute_typed(metric, &q, query)?;
        Ok((resp.hits, resp.stats))
    }

    /// Out-of-core top-k under an explicit [`ExecPolicy`]. Each partition
    /// answers its *local* top-k exactly and **tie-inclusively** (see
    /// `execute_on_index`); the per-partition lists are merged in
    /// partition order and re-ranked deterministically (count descending,
    /// external id ascending), making the result identical for every
    /// policy.
    #[deprecated(note = "use `Queryable::execute` with `Query::topk(tau, k).with_policy(policy)`")]
    pub fn search_topk_with_policy<M: Metric>(
        &self,
        metric: M,
        query: &VectorStore,
        tau: Tau,
        k: usize,
        opts: SearchOptions,
        policy: ExecPolicy,
    ) -> Result<(Vec<GlobalHit>, SearchStats)> {
        let q = Query::topk(tau, k).with_options(opts).with_policy(policy);
        let resp = self.execute_typed(metric, &q, query)?;
        Ok((resp.hits, resp.stats))
    }

    /// Parallel variant with an explicit thread count; kept as a
    /// convenience wrapper over the policy form.
    #[deprecated(
        note = "use `Queryable::execute` with `Query::threshold(tau, t).with_policy(ExecPolicy::Parallel { threads })`"
    )]
    pub fn search_parallel<M: Metric>(
        &self,
        metric: M,
        query: &VectorStore,
        tau: Tau,
        t: JoinThreshold,
        opts: SearchOptions,
        threads: usize,
    ) -> Result<(Vec<GlobalHit>, SearchStats)> {
        let threads = threads.max(1).min(self.partition_files.len().max(1));
        let q = Query::threshold(tau, t)
            .with_options(opts)
            .with_policy(ExecPolicy::Parallel { threads });
        let resp = self.execute_typed(metric, &q, query)?;
        Ok((resp.hits, resp.stats))
    }
}

/// Out-of-core deployments answer the unified [`Query`] like every other
/// backend. The metric is resolved from the query's expectation and the
/// deployment manifest (see `resolve_metric_name`) and dispatched to the
/// matching monomorphised engine.
impl Queryable for PartitionedLake {
    fn execute(&self, query: &Query, vectors: &VectorStore) -> Result<QueryResponse> {
        match self.resolve_metric_name(query)?.as_str() {
            "euclidean" => self.execute_typed(Euclidean, query, vectors),
            "manhattan" => self.execute_typed(Manhattan, query, vectors),
            "chebyshev" => self.execute_typed(Chebyshev, query, vectors),
            "angular" => self.execute_typed(Angular, query, vectors),
            other => Err(PexesoError::InvalidParameter(format!(
                "unsupported metric '{other}'"
            ))),
        }
    }

    /// Batch execution sweeps the lake partition-major, loading each
    /// partition file once for all columns instead of once per column —
    /// `partitions` disk loads instead of `columns × partitions`. Hits,
    /// outcomes, and stats counters per column are identical to solo
    /// [`Queryable::execute`] calls (see `execute_partitioned_many`).
    fn execute_many(&self, query: &Query, columns: &[&VectorStore]) -> Result<Vec<QueryResponse>> {
        match self.resolve_metric_name(query)?.as_str() {
            "euclidean" => self.execute_many_typed(Euclidean, query, columns),
            "manhattan" => self.execute_many_typed(Manhattan, query, columns),
            "chebyshev" => self.execute_many_typed(Chebyshev, query, columns),
            "angular" => self.execute_many_typed(Angular, query, columns),
            other => Err(PexesoError::InvalidParameter(format!(
                "unsupported metric '{other}'"
            ))),
        }
    }
}

/// Resolve a partition-local result into caller-stable global hits.
fn resolve_global_hits<M: Metric>(
    index: &PexesoIndex<M>,
    hits: Vec<crate::search::SearchHit>,
) -> Vec<GlobalHit> {
    hits.into_iter()
        .map(|h| {
            let meta = index.columns().column(h.column);
            GlobalHit {
                external_id: meta.external_id,
                table_name: meta.table_name.clone(),
                column_name: meta.column_name.clone(),
                match_count: h.match_count,
            }
        })
        .collect()
}

/// Execute one unified [`Query`] against one in-memory [`PexesoIndex`] —
/// the per-partition building block of every backend (the single-index
/// [`Queryable`] impl is this helper plus the final global ranking).
///
/// Threshold mode returns the joinable hits resolved to global identities
/// (caller sorts). Top-k mode answers exactly and **tie-inclusively**:
/// the in-index tie-break runs on internal column ids (insertion order),
/// which need not agree with the global external-id order, so when the
/// k-th best count extends past the local cut the index is re-queried
/// with a doubled k until every column tied with the boundary count is
/// present — the returned list may therefore hold more than `k` entries,
/// and any member of the global top-k is necessarily in it.
///
/// `guard` carries the query's budget across sub-executions (re-queries
/// here, partitions in the callers); a tripped limit is returned so the
/// caller can stop and flag the response.
///
/// Public as a backend building block: out-of-crate backends (the
/// delta-overlay executor in `pexeso-delta`) run exactly this engine per
/// unit so their answers stay byte-identical to the built-in backends.
pub fn execute_on_index<M: Metric>(
    index: &PexesoIndex<M>,
    query: &Query,
    vectors: &VectorStore,
    guard: &mut Option<BudgetGuard>,
) -> Result<(Vec<GlobalHit>, SearchStats, Option<Exceeded>)> {
    execute_on_index_premapped(index, query, vectors, guard, None)
}

/// [`execute_on_index`] with an optional pre-computed pivot mapping of the
/// query column — the seam `PexesoIndex::execute_many` uses to share one
/// batched mapping pass across many query columns. The mapping arena is
/// policy-invariant, so passing `Some` is byte-identical to mapping inside
/// (stats counters included); `None` is exactly [`execute_on_index`].
pub fn execute_on_index_premapped<M: Metric>(
    index: &PexesoIndex<M>,
    query: &Query,
    vectors: &VectorStore,
    guard: &mut Option<BudgetGuard>,
    premapped: Option<&crate::mapping::MappedVectors>,
) -> Result<(Vec<GlobalHit>, SearchStats, Option<Exceeded>)> {
    let (hits, stats, exceeded, _) =
        execute_on_index_explained(index, query, vectors, guard, premapped)?;
    Ok((hits, stats, exceeded))
}

/// What one explained single-index execution yields: hits, stats, the
/// tripped budget (if any), and the best-first top-k trajectory when
/// the query asked for an explain report.
pub type ExplainedExecution = (
    Vec<GlobalHit>,
    SearchStats,
    Option<Exceeded>,
    Option<crate::explain::TopkExplain>,
);

/// [`execute_on_index_premapped`], additionally returning the best-first
/// top-k trajectory ([`crate::explain::TopkExplain`]) when the query
/// asked for an explain report and ran the best-first engine. Recording
/// is read-only over values the loop already computes, so hits, stats,
/// and outcome are byte-identical whether or not `query.explain` is set
/// (`tests/explain.rs` pins this). For a tie-driven re-query the
/// trajectory reflects the final (answering) pass.
pub fn execute_on_index_explained<M: Metric>(
    index: &PexesoIndex<M>,
    query: &Query,
    vectors: &VectorStore,
    guard: &mut Option<BudgetGuard>,
    premapped: Option<&crate::mapping::MappedVectors>,
) -> Result<ExplainedExecution> {
    match query.mode {
        QueryMode::Threshold(t) => {
            let (hits, stats, exceeded) = index.threshold_inner(
                vectors,
                query.tau,
                t,
                query.options,
                guard.as_ref(),
                premapped,
            )?;
            if let Some(g) = guard.as_mut() {
                g.advance(stats.distance_computations);
            }
            Ok((resolve_global_hits(index, hits), stats, exceeded, None))
        }
        QueryMode::Topk(k) => {
            if k == 0 {
                return Ok((Vec::new(), SearchStats::new(), None, None));
            }
            let mut total = SearchStats::new();
            let mut trajectory = query
                .explain
                .then(crate::explain::TopkExplain::default)
                .filter(|_| query.options.topk_strategy == crate::search::TopkStrategy::BestFirst);
            // Ask for one extra slot up front: when the (k+1)-th entry's
            // count falls strictly below the k-th's, every column tied
            // with the boundary is provably already in the list (any
            // excluded column counts at most the last entry's count), so
            // the common tie-free case answers in a single pass instead
            // of a doubling re-query.
            let mut kk = k.saturating_add(1);
            loop {
                // A re-query's trajectory replaces the previous pass's:
                // the report describes the pass that produced the answer.
                if let Some(t) = trajectory.as_mut() {
                    *t = crate::explain::TopkExplain::default();
                }
                let (ranked, stats, exceeded) = index.topk_inner(
                    vectors,
                    query.tau,
                    kk,
                    query.options,
                    guard.as_ref(),
                    premapped,
                    trajectory.as_mut(),
                )?;
                total.merge(&stats);
                if let Some(g) = guard.as_mut() {
                    g.advance(stats.distance_computations);
                }
                let boundary_tied = exceeded.is_none()
                    && ranked.len() == kk
                    && kk < index.live_columns()
                    && ranked.last().map(|r| r.0) == ranked.get(k - 1).map(|r| r.0);
                if !boundary_tied {
                    let hits = ranked
                        .into_iter()
                        .map(|(count, col)| {
                            let meta = index.columns().column(col);
                            GlobalHit {
                                external_id: meta.external_id,
                                table_name: meta.table_name.clone(),
                                column_name: meta.column_name.clone(),
                                match_count: count,
                            }
                        })
                        .collect();
                    return Ok((hits, total, exceeded, trajectory));
                }
                kk = kk.saturating_mul(2);
            }
        }
    }
}

/// The shared partition loop behind the out-of-core and resident
/// backends: fan `run(i, …)` over the partitions under `query.policy`
/// (each partition's inner search demoted to sequential — the crate-wide
/// no-nested-fan-out rule), merge per-partition results in partition
/// order, and apply the unified final ranking.
///
/// A budgeted query runs the partition loop sequentially instead: the
/// guard carries the spent budget from one partition into the next, and
/// the loop stops at the first partition that trips a limit, so the
/// distance-cap cutoff is deterministic. `Topk(0)` answers empty without
/// touching any partition — the unified `k = 0` contract.
///
/// Public as a backend building block: a unit need not be a plain
/// partition — the delta-overlay executor in `pexeso-delta` passes
/// closures that filter tombstoned hits and fold an in-memory delta index
/// in as one extra unit, inheriting the fan-out, budget, and ranking
/// semantics unchanged.
pub fn execute_partitioned<F>(n_partitions: usize, query: &Query, run: F) -> Result<QueryResponse>
where
    F: Fn(
            usize,
            &Query,
            &mut Option<BudgetGuard>,
        ) -> Result<(Vec<GlobalHit>, SearchStats, Option<Exceeded>)>
        + Sync,
{
    let started = Instant::now();
    if let QueryMode::Topk(0) = query.mode {
        return Ok(empty_topk_response(query));
    }
    let inner = Query {
        options: query.options.demoted_under(query.policy),
        ..query.clone()
    };
    let mut guard = BudgetGuard::start(&query.budget);
    let per_partition = if guard.is_some() {
        let mut out = Vec::new();
        for i in 0..n_partitions {
            let part = run(i, &inner, &mut guard)?;
            let tripped = part.2.is_some();
            out.push(part);
            if tripped {
                break;
            }
        }
        out
    } else {
        // `try_map_units` stops handing out partitions after the first
        // failure (like the sequential `?` loop always did) and converts
        // a worker panic into a recoverable error instead of crashing a
        // long-running server.
        exec::try_map_units(
            query.policy,
            n_partitions,
            || PexesoError::InvalidParameter("partition query worker panicked".into()),
            |i| {
                let mut unbudgeted = None;
                run(i, &inner, &mut unbudgeted)
            },
        )?
    };
    // The one branch the untraced path pays; everything trace-related
    // below is behind it.
    let merge_start = query.trace.enabled().then(Instant::now);
    let mut unit_spans = Vec::new();
    let mut stats = SearchStats::new();
    let mut hits = Vec::new();
    let mut outcome = QueryOutcome::Exact;
    for (i, (h, s, e)) in per_partition.into_iter().enumerate() {
        if query.trace == crate::trace::TraceLevel::Detail {
            unit_spans.push(crate::trace::unit_span(format!("partition/{i}"), &s));
        }
        stats.merge(&s);
        hits.extend(h);
        fold_outcome(&mut outcome, e);
    }
    let hits = match query.mode {
        QueryMode::Threshold(_) => {
            sort_threshold_hits(&mut hits);
            hits
        }
        QueryMode::Topk(k) => rank_topk_hits(hits, k),
    };
    stats.total_time = started.elapsed();
    let trace = merge_start.map(|m| {
        let mut root = crate::trace::phase_tree(&stats, stats.total_time, m.elapsed());
        // Lay the per-partition spans back-to-back like the phases; under
        // a parallel policy they overlap in wall-clock, so the offsets
        // are a reading order, not a schedule.
        let mut off = 0;
        for mut s in unit_spans {
            s.start_us = off;
            off += s.duration_us;
            root.children.push(s);
        }
        crate::trace::QueryTrace::new(root)
    });
    let explain = query.explain.then(|| {
        crate::explain::ExplainReport::from_stats(query, &stats, hits.len() as u64, outcome, None)
    });
    Ok(QueryResponse {
        hits,
        stats,
        outcome,
        trace,
        explain,
    })
}

/// A [`QueryResponse`] for the `Topk(0)` fast path: no hits, zeroed
/// stats, and (when asked) an all-zero explain funnel.
fn empty_topk_response(query: &Query) -> QueryResponse {
    let stats = SearchStats::new();
    let explain = query.explain.then(|| {
        crate::explain::ExplainReport::from_stats(query, &stats, 0, QueryOutcome::Exact, None)
    });
    QueryResponse {
        hits: Vec::new(),
        stats,
        outcome: QueryOutcome::Exact,
        trace: None,
        explain,
    }
}

/// The batched counterpart of [`execute_partitioned`]: answer many query
/// columns in one partition-major sweep, materialising each partition
/// **once** for all columns instead of once per column — for the
/// disk-backed lake this turns `columns × partitions` index loads into
/// `partitions` loads. `get_index(i)` materialises partition `i` (a disk
/// load for the lake, a borrow for the resident form).
///
/// Per-column semantics mirror the solo loop exactly: `Topk(0)` answers
/// empty without touching a partition, inner searches are demoted under
/// the outer policy, per-partition results merge in partition order with
/// the unified final ranking, and a budgeted query carries each column's
/// guard across partitions in order, stopping that column at the first
/// tripped limit. `responses[c]` therefore carries the same hits, outcome,
/// and stats counters as `execute(query, columns[c])`; only wall-clock
/// timings differ (they reflect the shared sweep).
/// One column's answer from one partition: global hits, that partition's
/// stats, and any budget limit the partition sweep tripped for it.
type PartitionAnswer = (Vec<GlobalHit>, SearchStats, Option<Exceeded>);

fn execute_partitioned_many<M, I, G>(
    n_partitions: usize,
    query: &Query,
    columns: &[&VectorStore],
    get_index: G,
) -> Result<Vec<QueryResponse>>
where
    M: Metric,
    I: std::borrow::Borrow<PexesoIndex<M>>,
    G: Fn(usize) -> Result<I> + Sync,
{
    let started = Instant::now();
    if columns.is_empty() {
        return Ok(Vec::new());
    }
    if let QueryMode::Topk(0) = query.mode {
        return Ok(columns.iter().map(|_| empty_topk_response(query)).collect());
    }
    let inner = Query {
        options: query.options.demoted_under(query.policy),
        ..query.clone()
    };
    // per_column[c] accumulates column c's results in partition order.
    let mut per_column: Vec<Vec<PartitionAnswer>> = columns.iter().map(|_| Vec::new()).collect();
    let mut guards: Vec<Option<BudgetGuard>> = columns
        .iter()
        .map(|_| BudgetGuard::start(&query.budget))
        .collect();
    if guards[0].is_some() {
        // Budgeted: a deterministic sequential sweep, each column's guard
        // carried across partitions exactly as the solo loop carries it.
        let mut stopped = vec![false; columns.len()];
        for i in 0..n_partitions {
            if stopped.iter().all(|&s| s) {
                break;
            }
            let index = get_index(i)?;
            let index = index.borrow();
            for (c, col) in columns.iter().enumerate() {
                if stopped[c] {
                    continue;
                }
                let part = execute_on_index(index, &inner, col, &mut guards[c])?;
                if part.2.is_some() {
                    stopped[c] = true;
                }
                per_column[c].push(part);
            }
        }
    } else {
        let parts = exec::try_map_units(
            query.policy,
            n_partitions,
            || PexesoError::InvalidParameter("partition query worker panicked".into()),
            |i| {
                let index = get_index(i)?;
                let index = index.borrow();
                columns
                    .iter()
                    .map(|col| {
                        let mut unbudgeted = None;
                        execute_on_index(index, &inner, col, &mut unbudgeted)
                    })
                    .collect::<Result<Vec<_>>>()
            },
        )?;
        for part in parts {
            for (c, r) in part.into_iter().enumerate() {
                per_column[c].push(r);
            }
        }
    }
    Ok(per_column
        .into_iter()
        .map(|parts| {
            let merge_start = query.trace.enabled().then(Instant::now);
            let mut unit_spans = Vec::new();
            let mut stats = SearchStats::new();
            let mut hits = Vec::new();
            let mut outcome = QueryOutcome::Exact;
            for (i, (h, s, e)) in parts.into_iter().enumerate() {
                if query.trace == crate::trace::TraceLevel::Detail {
                    unit_spans.push(crate::trace::unit_span(format!("partition/{i}"), &s));
                }
                stats.merge(&s);
                hits.extend(h);
                fold_outcome(&mut outcome, e);
            }
            let hits = match query.mode {
                QueryMode::Threshold(_) => {
                    sort_threshold_hits(&mut hits);
                    hits
                }
                QueryMode::Topk(k) => rank_topk_hits(hits, k),
            };
            stats.total_time = started.elapsed();
            let trace = merge_start.map(|m| {
                let mut root = crate::trace::phase_tree(&stats, stats.total_time, m.elapsed());
                let mut off = 0;
                for mut s in unit_spans {
                    s.start_us = off;
                    off += s.duration_us;
                    root.children.push(s);
                }
                crate::trace::QueryTrace::new(root)
            });
            let explain = query.explain.then(|| {
                crate::explain::ExplainReport::from_stats(
                    query,
                    &stats,
                    hits.len() as u64,
                    outcome,
                    None,
                )
            });
            QueryResponse {
                hits,
                stats,
                outcome,
                trace,
                explain,
            }
        })
        .collect())
}

/// A partitioned deployment loaded fully into memory — the form a
/// resident server keeps hot. Search semantics (per-partition algorithms,
/// tie-inclusive top-k, merge order, [`ExecPolicy`] determinism) are
/// identical to [`PartitionedLake`]; only the per-query `load_index`
/// disappears, so queries never touch the filesystem and a concurrent
/// re-index of the backing directory cannot affect answers already being
/// computed.
#[derive(Debug)]
pub struct ResidentPartitions<M: Metric> {
    indexes: Vec<PexesoIndex<M>>,
}

impl<M: Metric> ResidentPartitions<M> {
    /// Load every partition of `lake` into memory.
    pub fn load(lake: &PartitionedLake, metric: M) -> Result<Self> {
        let indexes = lake
            .partition_files()
            .iter()
            .map(|path| load_index(path, metric.clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { indexes })
    }

    pub fn num_partitions(&self) -> usize {
        self.indexes.len()
    }

    /// Borrow one resident partition index — the handle an overlay
    /// backend (e.g. `pexeso-delta`'s serve-side delta snapshot) feeds to
    /// [`execute_on_index`] so delta queries reuse the already-loaded
    /// base without copying it.
    pub fn partition(&self, i: usize) -> &PexesoIndex<M> {
        &self.indexes[i]
    }

    /// The typed engine behind the resident [`Queryable`] impl and the
    /// legacy shims: the same partition loop as the disk-backed lake,
    /// minus the per-query `load_index`.
    pub(crate) fn execute_resident(
        &self,
        query: &Query,
        vectors: &VectorStore,
    ) -> Result<QueryResponse> {
        execute_partitioned(self.indexes.len(), query, |i, inner, guard| {
            execute_on_index(&self.indexes[i], inner, vectors, guard)
        })
    }

    /// In-memory counterpart of [`PartitionedLake::search_with_policy`];
    /// identical results for every policy.
    #[deprecated(
        note = "use `Queryable::execute` with `Query::threshold(tau, t).with_policy(policy)`"
    )]
    pub fn search_with_policy(
        &self,
        query: &VectorStore,
        tau: Tau,
        t: JoinThreshold,
        opts: SearchOptions,
        policy: ExecPolicy,
    ) -> Result<(Vec<GlobalHit>, SearchStats)> {
        let q = Query::threshold(tau, t)
            .with_options(opts)
            .with_policy(policy);
        let resp = self.execute_resident(&q, query)?;
        Ok((resp.hits, resp.stats))
    }

    /// In-memory counterpart of
    /// [`PartitionedLake::search_topk_with_policy`]; identical results for
    /// every policy.
    #[deprecated(note = "use `Queryable::execute` with `Query::topk(tau, k).with_policy(policy)`")]
    pub fn search_topk_with_policy(
        &self,
        query: &VectorStore,
        tau: Tau,
        k: usize,
        opts: SearchOptions,
        policy: ExecPolicy,
    ) -> Result<(Vec<GlobalHit>, SearchStats)> {
        let q = Query::topk(tau, k).with_options(opts).with_policy(policy);
        let resp = self.execute_resident(&q, query)?;
        Ok((resp.hits, resp.stats))
    }
}

/// Resident deployments answer the unified [`Query`] directly; the metric
/// is fixed at load time, so an explicit [`Query::metric`] expectation is
/// verified against it.
impl<M: Metric> Queryable for ResidentPartitions<M> {
    fn execute(&self, query: &Query, vectors: &VectorStore) -> Result<QueryResponse> {
        if let (Some(expected), Some(index)) = (query.metric.as_deref(), self.indexes.first()) {
            let actual = index.metric().name();
            if expected != actual {
                return Err(PexesoError::InvalidParameter(format!(
                    "resident partitions were built with metric '{actual}'; \
                     query expects '{expected}'"
                )));
            }
        }
        self.execute_resident(query, vectors)
    }

    /// Batch execution shares one partition-major sweep across all
    /// columns (partitions are already resident, so the win here is cache
    /// locality and one policy fan-out instead of one per column). Hits,
    /// outcomes, and stats counters per column are identical to solo
    /// [`Queryable::execute`] calls.
    fn execute_many(&self, query: &Query, columns: &[&VectorStore]) -> Result<Vec<QueryResponse>> {
        if let (Some(expected), Some(index)) = (query.metric.as_deref(), self.indexes.first()) {
            let actual = index.metric().name();
            if expected != actual {
                return Err(PexesoError::InvalidParameter(format!(
                    "resident partitions were built with metric '{actual}'; \
                     query expects '{expected}'"
                )));
            }
        }
        execute_partitioned_many(self.indexes.len(), query, columns, |i| {
            Ok::<_, PexesoError>(&self.indexes[i])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PivotSelection;
    use crate::metric::Euclidean;
    use crate::partition::PartitionMethod;
    use crate::search::naive_search;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit(rng: &mut StdRng, dim: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n);
        v
    }

    fn instance(seed: u64, n_cols: usize, col_len: usize, nq: usize) -> (ColumnSet, VectorStore) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 10;
        let mut columns = ColumnSet::new(dim);
        for c in 0..n_cols {
            let vecs: Vec<Vec<f32>> = (0..col_len).map(|_| unit(&mut rng, dim)).collect();
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns
                .add_column("tab", &format!("col{c}"), c as u64, refs)
                .unwrap();
        }
        let mut query = VectorStore::new(dim);
        for _ in 0..nq {
            let v = unit(&mut rng, dim);
            query.push(&v).unwrap();
        }
        (columns, query)
    }

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pexeso_ooc_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts() -> IndexOptions {
        IndexOptions {
            num_pivots: 3,
            levels: Some(3),
            pivot_selection: PivotSelection::Pca,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn partitioned_search_equals_naive() {
        let (columns, query) = instance(1, 18, 25, 8);
        let dir = tempdir("eq");
        let lake = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig {
                k: 3,
                method: PartitionMethod::JsdKmeans,
                ..Default::default()
            },
            &opts(),
            &dir,
        )
        .unwrap();
        let tau = Tau::Ratio(0.15);
        let t = JoinThreshold::Ratio(0.4);
        let resp = lake.execute(&Query::threshold(tau, t), &query).unwrap();
        assert!(resp.exact());
        let (naive, _) = naive_search(&columns, &Euclidean, &query, tau, t, false).unwrap();
        let got: Vec<u64> = resp.hits.iter().map(|h| h.external_id).collect();
        let expected: Vec<u64> = naive.iter().map(|h| h.column.0 as u64).collect();
        assert_eq!(got, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_search_matches_sequential() {
        let (columns, query) = instance(2, 16, 20, 6);
        let dir = tempdir("par");
        let lake = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig {
                k: 4,
                ..Default::default()
            },
            &opts(),
            &dir,
        )
        .unwrap();
        let tau = Tau::Ratio(0.2);
        let t = JoinThreshold::Ratio(0.3);
        let q = Query::threshold(tau, t);
        let seq = lake.execute(&q, &query).unwrap();
        let par = lake
            .execute(
                &q.clone().with_policy(ExecPolicy::Parallel { threads: 3 }),
                &query,
            )
            .unwrap();
        assert_eq!(seq.hits, par.hits);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_roundtrip() {
        let (columns, query) = instance(3, 10, 15, 5);
        let dir = tempdir("open");
        let built = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig {
                k: 2,
                ..Default::default()
            },
            &opts(),
            &dir,
        )
        .unwrap();
        let opened = PartitionedLake::open(&dir).unwrap();
        assert_eq!(built.num_partitions(), opened.num_partitions());
        let tau = Tau::Ratio(0.2);
        let t = JoinThreshold::Count(2);
        let q = Query::threshold(tau, t);
        let a = built.execute(&q, &query).unwrap();
        let b = opened.execute(&q, &query).unwrap();
        assert_eq!(a.hits, b.hits);
        assert!(opened.disk_bytes().unwrap() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_empty_dir_is_error() {
        let dir = tempdir("empty");
        assert!(PartitionedLake::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_roundtrip_and_version_bump() {
        let dir = tempdir("manifest");
        // No manifest yet: next_build starts a fresh line at version 1.
        let first = LakeManifest::next_build(&dir, "hash", 64).unwrap();
        assert_eq!(first.index_version, 1);
        assert_eq!(first.metric, "euclidean");
        first.write(&dir).unwrap();
        let read = LakeManifest::read(&dir).unwrap();
        assert_eq!(read, first);
        // Re-index: same identity, bumped version.
        let second = LakeManifest::next_build(&dir, "hash", 64).unwrap();
        assert_eq!(second.index_version, 2);
        second.write(&dir).unwrap();
        assert_eq!(LakeManifest::read(&dir).unwrap().index_version, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_writes_are_atomic_against_torn_writes() {
        let dir = tempdir("manifest_atomic");
        let mut good = LakeManifest::new("hash", 64);
        good.index_version = 3;
        good.next_external_id = 17;
        good.write(&dir).unwrap();
        // A torn write crashes after putting partial bytes in the temp
        // file but before the rename. Simulate exactly that state: the
        // deployed manifest must be untouched and still read back whole.
        let tmp = dir.join("manifest.txt.tmp");
        std::fs::write(&tmp, "version=1\nembedder=ha").unwrap();
        assert_eq!(LakeManifest::read(&dir).unwrap(), good);
        // The next successful write publishes over both the manifest and
        // the stale temp fragment.
        let mut next = good.clone();
        next.index_version = 4;
        next.write(&dir).unwrap();
        assert_eq!(LakeManifest::read(&dir).unwrap(), next);
        assert!(
            !tmp.exists(),
            "a successful write must consume the temp file"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_roundtrips_next_external_id() {
        let dir = tempdir("manifest_next_id");
        let mut m = LakeManifest::new("hash", 32);
        m.next_external_id = 41;
        m.write(&dir).unwrap();
        assert_eq!(LakeManifest::read(&dir).unwrap().next_external_id, 41);
        // Legacy manifests (no key) default to 0 = "unknown".
        std::fs::write(LakeManifest::path(&dir), "version=1\ndim=32\n").unwrap();
        assert_eq!(LakeManifest::read(&dir).unwrap().next_external_id, 0);
        // A corrupt value is a typed error.
        std::fs::write(
            LakeManifest::path(&dir),
            "version=1\ndim=32\nnext_external_id=banana\n",
        )
        .unwrap();
        assert!(matches!(
            LakeManifest::read(&dir),
            Err(PexesoError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_tolerates_legacy_and_unknown_keys() {
        let dir = tempdir("manifest_legacy");
        // A pre-index_version/metric manifest (what older deployments wrote).
        std::fs::write(
            LakeManifest::path(&dir),
            "version=1\nembedder=hash\ndim=32\nfuture_knob=7\n",
        )
        .unwrap();
        let m = LakeManifest::read(&dir).unwrap();
        assert_eq!(m.dim, 32);
        assert_eq!(m.index_version, 1);
        assert_eq!(m.metric, "euclidean");
        // Corrupt dim is a typed error...
        std::fs::write(LakeManifest::path(&dir), "version=1\ndim=banana\n").unwrap();
        assert!(matches!(
            LakeManifest::read(&dir),
            Err(PexesoError::Corrupt(_))
        ));
        // ...and next_build must propagate it rather than silently
        // restarting the version line at 1.
        assert!(matches!(
            LakeManifest::next_build(&dir, "hash", 32),
            Err(PexesoError::Corrupt(_))
        ));
        std::fs::write(LakeManifest::path(&dir), "version=1\nembedder=hash\n").unwrap();
        assert!(LakeManifest::read(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resident_partitions_match_disk_search() {
        let (columns, query) = instance(12, 16, 20, 6);
        let dir = tempdir("resident");
        let lake = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig {
                k: 3,
                ..Default::default()
            },
            &opts(),
            &dir,
        )
        .unwrap();
        let resident = ResidentPartitions::load(&lake, Euclidean).unwrap();
        assert_eq!(resident.num_partitions(), lake.num_partitions());
        let tau = Tau::Ratio(0.2);
        let t = JoinThreshold::Ratio(0.3);
        for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel { threads: 3 }] {
            let q = Query::threshold(tau, t).with_policy(policy);
            let disk = lake.execute(&q, &query).unwrap();
            let mem = resident.execute(&q, &query).unwrap();
            assert_eq!(disk.hits, mem.hits, "threshold, {policy:?}");
            for k in [1, 3, 20] {
                let qk = Query::topk(tau, k).with_policy(policy);
                let disk_k = lake.execute(&qk, &query).unwrap();
                let mem_k = resident.execute(&qk, &query).unwrap();
                assert_eq!(disk_k.hits, mem_k.hits, "topk k={k}, {policy:?}");
            }
        }
        // Residency: deleting the backing files must not affect answers.
        let q = Query::threshold(tau, t);
        let before = resident.execute(&q, &query).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let after = resident.execute(&q, &query).unwrap();
        assert_eq!(
            before.hits, after.hits,
            "resident search must never touch disk"
        );
    }

    #[test]
    fn partition_files_expose_search_order() {
        let (columns, _) = instance(9, 8, 10, 3);
        let dir = tempdir("handles");
        let lake = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig {
                k: 3,
                ..Default::default()
            },
            &opts(),
            &dir,
        )
        .unwrap();
        let files = lake.partition_files();
        assert_eq!(files.len(), lake.num_partitions());
        let mut sorted = files.to_vec();
        sorted.sort();
        assert_eq!(files, sorted.as_slice(), "files must stay in search order");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebuild_replaces_stale_partitions() {
        let (columns, _) = instance(4, 8, 10, 3);
        let dir = tempdir("stale");
        let a = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig {
                k: 4,
                ..Default::default()
            },
            &opts(),
            &dir,
        )
        .unwrap();
        let first = a.num_partitions();
        let b = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig {
                k: 2,
                ..Default::default()
            },
            &opts(),
            &dir,
        )
        .unwrap();
        assert!(b.num_partitions() <= first);
        let opened = PartitionedLake::open(&dir).unwrap();
        assert_eq!(opened.num_partitions(), b.num_partitions());
        std::fs::remove_dir_all(&dir).ok();
    }
}
