//! Out-of-core search over a partitioned lake (Section IV).
//!
//! When the repository exceeds main memory, columns are partitioned
//! (see [`crate::partition`]), one PEXESO index is built and persisted per
//! partition, and a search loads partitions one at a time, merging results.
//! [`PartitionedLake::search_with_policy`] runs the same loop under the
//! crate-wide [`ExecPolicy`]: partitions are coarse work units handed to a
//! [`crate::exec::map_units`] work-stealing pool, overlapping partition
//! loading with searching (an extension over the paper's sequential loop;
//! the sequential mode is the default and is what the experiments time).
//! Results are identical for every policy.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::column::ColumnSet;
use crate::config::{ExecPolicy, IndexOptions, JoinThreshold, Tau};
use crate::error::{PexesoError, Result};
use crate::exec;
use crate::metric::Metric;
use crate::partition::{partition_columns, split_column_set, PartitionConfig};
use crate::persist::{load_index, save_index};
use crate::search::{PexesoIndex, SearchOptions};
use crate::stats::SearchStats;
use crate::vector::VectorStore;

/// A joinable column found in a partitioned lake, identified by the
/// caller-stable external id (partitioning reorders internal ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalHit {
    pub external_id: u64,
    pub table_name: String,
    pub column_name: String,
    /// Matched query vectors (lower bound under early termination).
    pub match_count: u32,
}

/// A disk-resident, partitioned PEXESO deployment.
#[derive(Debug)]
pub struct PartitionedLake {
    dir: PathBuf,
    partition_files: Vec<PathBuf>,
}

impl PartitionedLake {
    /// Partition `columns`, build one index per partition, and persist
    /// everything under `dir` (created if missing; existing `part_*.pex`
    /// files are replaced).
    pub fn build<M: Metric>(
        columns: &ColumnSet,
        metric: M,
        partition_config: &PartitionConfig,
        index_options: &IndexOptions,
        dir: &Path,
    ) -> Result<Self> {
        fs::create_dir_all(dir)?;
        // Clear stale partition files so `open` never mixes deployments.
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "pex") {
                fs::remove_file(&path)?;
            }
        }
        let partitioning = partition_columns(columns, partition_config)?;
        let parts = split_column_set(columns, &partitioning);
        let mut files = Vec::with_capacity(parts.len());
        for (i, (sub, _)) in parts.into_iter().enumerate() {
            let index = PexesoIndex::build(sub, metric.clone(), index_options.clone())?;
            let path = dir.join(format!("part_{i:04}.pex"));
            save_index(&index, &path)?;
            files.push(path);
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            partition_files: files,
        })
    }

    /// Open an existing deployment directory.
    pub fn open(dir: &Path) -> Result<Self> {
        let mut files: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "pex"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(PexesoError::EmptyInput("no partition files in directory"));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            partition_files: files,
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn num_partitions(&self) -> usize {
        self.partition_files.len()
    }

    /// Load one partition's index into memory (e.g. for top-k merging or
    /// inspection).
    pub fn load_partition<M: Metric>(&self, i: usize, metric: M) -> Result<PexesoIndex<M>> {
        let path = self
            .partition_files
            .get(i)
            .ok_or_else(|| PexesoError::InvalidParameter(format!("no partition {i}")))?;
        load_index(path, metric)
    }

    /// Total bytes on disk across partition files.
    pub fn disk_bytes(&self) -> Result<u64> {
        let mut total = 0;
        for f in &self.partition_files {
            total += fs::metadata(f)?.len();
        }
        Ok(total)
    }

    /// Sequential out-of-core search: load each partition, search it, merge.
    /// Load time is included in the stats' total time, mirroring the
    /// paper's Table VII accounting ("includes the overhead of loading the
    /// data from disks").
    pub fn search<M: Metric>(
        &self,
        metric: M,
        query: &VectorStore,
        tau: Tau,
        t: JoinThreshold,
        opts: SearchOptions,
    ) -> Result<(Vec<GlobalHit>, SearchStats)> {
        self.search_with_policy(metric, query, tau, t, opts, ExecPolicy::Sequential)
    }

    /// Out-of-core search under an explicit [`ExecPolicy`]: each partition
    /// (load + search + hit resolution) is one coarse work unit on the
    /// policy's thread pool, so I/O and CPU overlap across partitions.
    /// Results are identical to the sequential loop: per-partition results
    /// are kept in partition order and merged deterministically.
    pub fn search_with_policy<M: Metric>(
        &self,
        metric: M,
        query: &VectorStore,
        tau: Tau,
        t: JoinThreshold,
        opts: SearchOptions,
        policy: ExecPolicy,
    ) -> Result<(Vec<GlobalHit>, SearchStats)> {
        let started = Instant::now();
        // When partitions already fan out across threads, keep each
        // partition's inner search sequential to avoid nested fan-out.
        let inner_opts = opts.demoted_under(policy);
        // `try_map_units` stops handing out partitions after the first
        // failure (like the sequential `?` loop always did) and converts a
        // worker panic into a recoverable error instead of crashing a
        // long-running server.
        let per_partition = exec::try_map_units(
            policy,
            self.partition_files.len(),
            || PexesoError::InvalidParameter("partition search worker panicked".into()),
            |i| {
                let index = load_index(&self.partition_files[i], metric.clone())?;
                let result = index.search_with(query, tau, t, inner_opts)?;
                let hits: Vec<GlobalHit> = result
                    .hits
                    .into_iter()
                    .map(|h| {
                        let meta = index.columns().column(h.column);
                        GlobalHit {
                            external_id: meta.external_id,
                            table_name: meta.table_name.clone(),
                            column_name: meta.column_name.clone(),
                            match_count: h.match_count,
                        }
                    })
                    .collect();
                Ok::<_, PexesoError>((hits, result.stats))
            },
        )?;
        let mut merged = SearchStats::new();
        let mut hits = Vec::new();
        for (h, s) in per_partition {
            merged.merge(&s);
            hits.extend(h);
        }
        hits.sort_by_key(|h| h.external_id);
        merged.total_time = started.elapsed();
        Ok((hits, merged))
    }

    /// Out-of-core top-k: the (up to) `k` columns of the whole lake with
    /// the most matching query records, ranked by count descending and
    /// ties broken by ascending external id (internal column ids are not
    /// stable across partitioning). Sequential partition loop; see
    /// [`PartitionedLake::search_topk_with_policy`].
    pub fn search_topk<M: Metric>(
        &self,
        metric: M,
        query: &VectorStore,
        tau: Tau,
        k: usize,
        opts: SearchOptions,
    ) -> Result<(Vec<GlobalHit>, SearchStats)> {
        self.search_topk_with_policy(metric, query, tau, k, opts, ExecPolicy::Sequential)
    }

    /// Out-of-core top-k under an explicit [`ExecPolicy`]. Each partition
    /// answers its *local* top-k exactly and **tie-inclusively**: the
    /// in-partition tie-break runs on internal column ids (insertion
    /// order), which need not agree with the global external-id order, so
    /// when the k-th best count extends past the local cut the partition
    /// is re-queried with a doubled k until every column tied with the
    /// boundary count is present. With all boundary ties in hand, any
    /// member of the global top-k is necessarily in its partition's list;
    /// the per-partition lists are then merged in partition order and
    /// re-ranked deterministically (count descending, external id
    /// ascending), making the result identical for every policy.
    pub fn search_topk_with_policy<M: Metric>(
        &self,
        metric: M,
        query: &VectorStore,
        tau: Tau,
        k: usize,
        opts: SearchOptions,
        policy: ExecPolicy,
    ) -> Result<(Vec<GlobalHit>, SearchStats)> {
        let started = Instant::now();
        let inner_opts = opts.demoted_under(policy);
        let per_partition = exec::try_map_units(
            policy,
            self.partition_files.len(),
            || PexesoError::InvalidParameter("partition top-k worker panicked".into()),
            |i| {
                let index = load_index(&self.partition_files[i], metric.clone())?;
                let mut kk = k;
                let mut result = index.search_topk_with(query, tau, kk, inner_opts)?;
                // Tie-inclusive boundary: while the last returned hit
                // still carries the k-th best count, columns tied with it
                // (but with larger internal ids) may have been cut off —
                // and one of them could win the global external-id
                // tie-break. Double k until the boundary count is fully
                // enumerated or the partition is exhausted.
                while k > 0
                    && result.hits.len() == kk
                    && kk < index.live_columns()
                    && result.hits.last().map(|h| h.match_count)
                        == result.hits.get(k - 1).map(|h| h.match_count)
                {
                    kk *= 2;
                    result = index.search_topk_with(query, tau, kk, inner_opts)?;
                }
                let hits: Vec<GlobalHit> = result
                    .hits
                    .into_iter()
                    .map(|h| {
                        let meta = index.columns().column(h.column);
                        GlobalHit {
                            external_id: meta.external_id,
                            table_name: meta.table_name.clone(),
                            column_name: meta.column_name.clone(),
                            match_count: h.match_count,
                        }
                    })
                    .collect();
                Ok::<_, PexesoError>((hits, result.stats))
            },
        )?;
        let mut merged = SearchStats::new();
        let mut hits = Vec::new();
        for (h, s) in per_partition {
            merged.merge(&s);
            hits.extend(h);
        }
        hits.sort_by(|a, b| {
            b.match_count
                .cmp(&a.match_count)
                .then(a.external_id.cmp(&b.external_id))
        });
        hits.truncate(k);
        merged.total_time = started.elapsed();
        Ok((hits, merged))
    }

    /// Parallel variant with an explicit thread count; kept as a
    /// convenience wrapper over [`PartitionedLake::search_with_policy`].
    pub fn search_parallel<M: Metric>(
        &self,
        metric: M,
        query: &VectorStore,
        tau: Tau,
        t: JoinThreshold,
        opts: SearchOptions,
        threads: usize,
    ) -> Result<(Vec<GlobalHit>, SearchStats)> {
        let threads = threads.max(1).min(self.partition_files.len().max(1));
        self.search_with_policy(
            metric,
            query,
            tau,
            t,
            opts,
            ExecPolicy::Parallel { threads },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PivotSelection;
    use crate::metric::Euclidean;
    use crate::partition::PartitionMethod;
    use crate::search::naive_search;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit(rng: &mut StdRng, dim: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n);
        v
    }

    fn instance(seed: u64, n_cols: usize, col_len: usize, nq: usize) -> (ColumnSet, VectorStore) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 10;
        let mut columns = ColumnSet::new(dim);
        for c in 0..n_cols {
            let vecs: Vec<Vec<f32>> = (0..col_len).map(|_| unit(&mut rng, dim)).collect();
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns
                .add_column("tab", &format!("col{c}"), c as u64, refs)
                .unwrap();
        }
        let mut query = VectorStore::new(dim);
        for _ in 0..nq {
            let v = unit(&mut rng, dim);
            query.push(&v).unwrap();
        }
        (columns, query)
    }

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pexeso_ooc_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts() -> IndexOptions {
        IndexOptions {
            num_pivots: 3,
            levels: Some(3),
            pivot_selection: PivotSelection::Pca,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn partitioned_search_equals_naive() {
        let (columns, query) = instance(1, 18, 25, 8);
        let dir = tempdir("eq");
        let lake = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig {
                k: 3,
                method: PartitionMethod::JsdKmeans,
                ..Default::default()
            },
            &opts(),
            &dir,
        )
        .unwrap();
        let tau = Tau::Ratio(0.15);
        let t = JoinThreshold::Ratio(0.4);
        let (hits, _) = lake
            .search(Euclidean, &query, tau, t, SearchOptions::default())
            .unwrap();
        let (naive, _) = naive_search(&columns, &Euclidean, &query, tau, t, false).unwrap();
        let got: Vec<u64> = hits.iter().map(|h| h.external_id).collect();
        let expected: Vec<u64> = naive.iter().map(|h| h.column.0 as u64).collect();
        assert_eq!(got, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_search_matches_sequential() {
        let (columns, query) = instance(2, 16, 20, 6);
        let dir = tempdir("par");
        let lake = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig {
                k: 4,
                ..Default::default()
            },
            &opts(),
            &dir,
        )
        .unwrap();
        let tau = Tau::Ratio(0.2);
        let t = JoinThreshold::Ratio(0.3);
        let (seq, _) = lake
            .search(Euclidean, &query, tau, t, SearchOptions::default())
            .unwrap();
        let (par, _) = lake
            .search_parallel(Euclidean, &query, tau, t, SearchOptions::default(), 3)
            .unwrap();
        assert_eq!(seq, par);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_roundtrip() {
        let (columns, query) = instance(3, 10, 15, 5);
        let dir = tempdir("open");
        let built = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig {
                k: 2,
                ..Default::default()
            },
            &opts(),
            &dir,
        )
        .unwrap();
        let opened = PartitionedLake::open(&dir).unwrap();
        assert_eq!(built.num_partitions(), opened.num_partitions());
        let tau = Tau::Ratio(0.2);
        let t = JoinThreshold::Count(2);
        let (a, _) = built
            .search(Euclidean, &query, tau, t, SearchOptions::default())
            .unwrap();
        let (b, _) = opened
            .search(Euclidean, &query, tau, t, SearchOptions::default())
            .unwrap();
        assert_eq!(a, b);
        assert!(opened.disk_bytes().unwrap() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_empty_dir_is_error() {
        let dir = tempdir("empty");
        assert!(PartitionedLake::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebuild_replaces_stale_partitions() {
        let (columns, _) = instance(4, 8, 10, 3);
        let dir = tempdir("stale");
        let a = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig {
                k: 4,
                ..Default::default()
            },
            &opts(),
            &dir,
        )
        .unwrap();
        let first = a.num_partitions();
        let b = PartitionedLake::build(
            &columns,
            Euclidean,
            &PartitionConfig {
                k: 2,
                ..Default::default()
            },
            &opts(),
            &dir,
        )
        .unwrap();
        assert!(b.num_partitions() <= first);
        let opened = PartitionedLake::open(&dir).unwrap();
        assert_eq!(opened.num_partitions(), b.num_partitions());
        std::fs::remove_dir_all(&dir).ok();
    }
}
