//! Error type for the core crate.
//!
//! Search and index construction are infallible on well-formed inputs;
//! errors arise at the boundaries: dimension mismatches, empty inputs where
//! pivots are required, and persistence I/O or corruption.

use std::fmt;

/// All errors produced by `pexeso-core`.
#[derive(Debug)]
pub enum PexesoError {
    /// A vector had a different dimensionality than the store.
    DimensionMismatch { expected: usize, got: usize },
    /// An operation required at least one vector/column and got none.
    EmptyInput(&'static str),
    /// A parameter was outside its legal range.
    InvalidParameter(String),
    /// Underlying I/O failure during persistence.
    Io(std::io::Error),
    /// A persisted index file failed validation.
    Corrupt(String),
    /// A remote backend (e.g. a `pexeso serve` daemon) failed to answer:
    /// server-side rejection, backpressure, or a protocol violation.
    Remote(String),
}

impl fmt::Display for PexesoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PexesoError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            PexesoError::EmptyInput(what) => write!(f, "empty input: {what}"),
            PexesoError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            PexesoError::Io(e) => write!(f, "I/O error: {e}"),
            PexesoError::Corrupt(msg) => write!(f, "corrupt index file: {msg}"),
            PexesoError::Remote(msg) => write!(f, "remote backend error: {msg}"),
        }
    }
}

impl std::error::Error for PexesoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PexesoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PexesoError {
    fn from(e: std::io::Error) -> Self {
        PexesoError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PexesoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PexesoError::DimensionMismatch {
            expected: 50,
            got: 300,
        };
        assert!(e.to_string().contains("expected 50"));
        assert!(PexesoError::EmptyInput("pivots")
            .to_string()
            .contains("pivots"));
        assert!(PexesoError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn io_error_source_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = PexesoError::from(io);
        assert!(std::error::Error::source(&e).is_some());
    }
}
