//! Structured, request-correlated logging.
//!
//! The serving tier needs one more observability plane than traces and
//! metrics give it: an event log that can be grepped by **request id**
//! across the router daemon, every shard daemon, and the SLOW log. This
//! module is that plane's core: a leveled, JSON-lines logger engineered
//! around the same discipline as [`crate::trace`] — *disabled means
//! free*:
//!
//! * When logging is off (the default), [`enabled`] is a single relaxed
//!   atomic load and [`log`] returns before touching anything else — no
//!   allocation, no lock, no formatting. Field lists are borrowed
//!   stack-only slices, so call sites build them for free too.
//! * When on, the calling thread only formats one line and pushes it
//!   onto a bounded ring; a detached writer thread drains the ring and
//!   performs the actual I/O, so a slow or blocked sink never stalls a
//!   request. When the ring is full the new line is *dropped and
//!   counted* — back-pressure never propagates into the query path —
//!   and the drop count is reported in a synthetic `log_dropped` line
//!   once the writer catches up.
//!
//! Every line is a single JSON object (JSON-lines), hand-rendered by
//! [`format_line`] so the core crate stays dependency-free:
//!
//! ```json
//! {"ts_us":1723111845123456,"level":"info","target":"server","event":"request_done","rid":"00f3a2...","latency_us":1421}
//! ```
//!
//! Request ids are minted with [`mint_request_id`] at the *outermost*
//! hop (CLI or router), rendered with [`fmt_request_id`], and carried
//! over the wire by the v6 query tail so one grep correlates a query
//! end-to-end.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Severity of a log line, ordered `Error < Warn < Info < Debug` so a
/// configured level admits itself and everything more severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LogLevel {
    /// A request or subsystem failed.
    Error = 1,
    /// Degraded but continuing (retries, failovers, shed load).
    Warn = 2,
    /// Request lifecycle and administrative events.
    Info = 3,
    /// High-volume diagnostic detail.
    Debug = 4,
}

impl LogLevel {
    /// The lowercase name used in rendered lines and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }

    /// Parse a CLI-style level name; `off`/`none` yield `None`.
    pub fn parse(s: &str) -> Option<Option<LogLevel>> {
        match s {
            "off" | "none" => Some(None),
            "error" => Some(Some(LogLevel::Error)),
            "warn" => Some(Some(LogLevel::Warn)),
            "info" => Some(Some(LogLevel::Info)),
            "debug" => Some(Some(LogLevel::Debug)),
            _ => None,
        }
    }
}

/// A borrowed field value; the variants cover everything the serving
/// tier logs without ever allocating at a disabled call site.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// Unsigned counter/size.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Floating-point quantity.
    F64(f64),
    /// Borrowed string (JSON-escaped on render).
    Str(&'a str),
    /// Boolean flag.
    Bool(bool),
    /// A request id, rendered as a 16-digit zero-padded hex string.
    Rid(u64),
}

impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value<'_> {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Append `s` to `out` JSON-escaped (quotes, backslashes, control
/// characters; no other transformation).
fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Render one JSON-lines log record (without trailing newline).
///
/// Pure so it can be unit-tested away from the global logger. The fixed
/// keys `ts_us`, `level`, `target`, and `event` come first, then the
/// caller's fields in order.
pub fn format_line(
    ts_us: u64,
    level: LogLevel,
    target: &str,
    event: &str,
    fields: &[(&str, Value<'_>)],
) -> String {
    let mut out = String::with_capacity(96 + fields.len() * 24);
    out.push_str("{\"ts_us\":");
    out.push_str(&ts_us.to_string());
    out.push_str(",\"level\":\"");
    out.push_str(level.as_str());
    out.push_str("\",\"target\":\"");
    escape_json_into(&mut out, target);
    out.push_str("\",\"event\":\"");
    escape_json_into(&mut out, event);
    out.push('"');
    for (key, value) in fields {
        out.push_str(",\"");
        escape_json_into(&mut out, key);
        out.push_str("\":");
        match value {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => {
                out.push('"');
                escape_json_into(&mut out, s);
                out.push('"');
            }
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Rid(r) => {
                out.push('"');
                out.push_str(&fmt_request_id(*r));
                out.push('"');
            }
        }
    }
    out.push('}');
    out
}

/// The bounded line ring shared between loggers and the writer thread.
#[derive(Debug, Default)]
struct Ring {
    lines: VecDeque<String>,
    /// Lines dropped since the writer last drained.
    dropped: u64,
    /// Total lines accepted into the ring.
    pushed: u64,
    /// Total lines the writer has durably written and flushed.
    written: u64,
}

/// A leveled JSON-lines logger with a bounded ring and an asynchronous
/// writer. One global instance serves the process (see [`init`]); the
/// type is public mainly so the buffering behaviour can be tested
/// directly.
#[derive(Debug)]
pub struct Logger {
    level: AtomicU8,
    ring: Mutex<Ring>,
    cond: Condvar,
    capacity: usize,
}

impl Logger {
    /// A logger holding at most `capacity` undrained lines.
    pub fn new(level: LogLevel, capacity: usize) -> Self {
        Self {
            level: AtomicU8::new(level as u8),
            ring: Mutex::new(Ring::default()),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Whether `level` is admitted. One relaxed load.
    #[inline]
    pub fn enabled(&self, level: LogLevel) -> bool {
        self.level.load(Ordering::Relaxed) >= level as u8
    }

    /// Change the admitted level at runtime (0 via [`Logger::disable`]).
    pub fn set_level(&self, level: LogLevel) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    /// Turn the logger off; [`Logger::enabled`] answers `false` for
    /// every level until [`Logger::set_level`] re-arms it.
    pub fn disable(&self) {
        self.level.store(0, Ordering::Relaxed);
    }

    /// Format and enqueue one record; drops (and counts) when the ring
    /// is full so the caller never blocks on the sink.
    pub fn log(&self, level: LogLevel, target: &str, event: &str, fields: &[(&str, Value<'_>)]) {
        if !self.enabled(level) {
            return;
        }
        let line = format_line(now_us(), level, target, event, fields);
        let mut ring = self.ring.lock().unwrap();
        if ring.lines.len() >= self.capacity {
            ring.dropped += 1;
        } else {
            ring.lines.push_back(line);
            ring.pushed += 1;
        }
        drop(ring);
        self.cond.notify_all();
    }

    /// Lines currently buffered (test/diagnostic accessor).
    pub fn pending(&self) -> usize {
        self.ring.lock().unwrap().lines.len()
    }

    /// Lines dropped because the ring was full, since the last drain.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// Start the detached writer thread draining this logger into
    /// `sink`. Called once per logger; the thread runs for the life of
    /// the process.
    pub fn spawn_writer(self: &Arc<Self>, sink: Box<dyn Write + Send>) {
        let logger = Arc::clone(self);
        let _ = std::thread::Builder::new()
            .name("pexeso-log".into())
            .spawn(move || logger.writer_loop(sink));
    }

    fn writer_loop(&self, mut sink: Box<dyn Write + Send>) {
        loop {
            let (batch, dropped) = {
                let mut ring = self.ring.lock().unwrap();
                while ring.lines.is_empty() && ring.dropped == 0 {
                    ring = self.cond.wait(ring).unwrap();
                }
                let batch: Vec<String> = ring.lines.drain(..).collect();
                let dropped = std::mem::take(&mut ring.dropped);
                (batch, dropped)
            };
            let n = batch.len() as u64;
            for line in &batch {
                let _ = sink.write_all(line.as_bytes());
                let _ = sink.write_all(b"\n");
            }
            if dropped > 0 {
                let line = format_line(
                    now_us(),
                    LogLevel::Warn,
                    "log",
                    "log_dropped",
                    &[("count", Value::U64(dropped))],
                );
                let _ = sink.write_all(line.as_bytes());
                let _ = sink.write_all(b"\n");
            }
            let _ = sink.flush();
            let mut ring = self.ring.lock().unwrap();
            ring.written += n;
            drop(ring);
            self.cond.notify_all();
        }
    }

    /// Block (bounded by `timeout`) until every line enqueued before the
    /// call has been written and flushed. Returns whether it drained.
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut ring = self.ring.lock().unwrap();
        let target = ring.pushed;
        while ring.written < target {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, _) = self.cond.wait_timeout(ring, left).unwrap();
            ring = guard;
        }
        true
    }
}

/// Global level mirror: one relaxed load answers [`enabled`] even
/// before/without [`init`] (0 = off, the process default).
static GLOBAL_LEVEL: AtomicU8 = AtomicU8::new(0);
static GLOBAL: OnceLock<Arc<Logger>> = OnceLock::new();

/// Default ring capacity for the process-global logger.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Install the process-global logger writing JSON lines to `sink` and
/// admitting `level`. The first call wins the sink and spawns the
/// writer thread; later calls only adjust the level. Returns the
/// global logger.
pub fn init(level: LogLevel, sink: Box<dyn Write + Send>) -> Arc<Logger> {
    let mut installed_sink = Some(sink);
    let logger = GLOBAL.get_or_init(|| {
        let logger = Arc::new(Logger::new(level, DEFAULT_RING_CAPACITY));
        logger.spawn_writer(installed_sink.take().unwrap());
        logger
    });
    logger.set_level(level);
    GLOBAL_LEVEL.store(level as u8, Ordering::Relaxed);
    Arc::clone(logger)
}

/// [`init`] with the conventional daemon sink: standard error.
pub fn init_stderr(level: LogLevel) -> Arc<Logger> {
    init(level, Box::new(std::io::stderr()))
}

/// Whether the global logger admits `level`. A single relaxed atomic
/// load — the entire cost of a disabled call site.
#[inline]
pub fn enabled(level: LogLevel) -> bool {
    GLOBAL_LEVEL.load(Ordering::Relaxed) >= level as u8
}

/// Log one record on the global logger; free (one atomic load) when the
/// level is not admitted or [`init`] was never called.
#[inline]
pub fn log(level: LogLevel, target: &str, event: &str, fields: &[(&str, Value<'_>)]) {
    if !enabled(level) {
        return;
    }
    if let Some(logger) = GLOBAL.get() {
        logger.log(level, target, event, fields);
    }
}

/// Block (up to one second) until the global logger has written every
/// line enqueued so far. CLI entry points call this before exiting so
/// short-lived processes don't lose their tail.
pub fn flush() {
    if let Some(logger) = GLOBAL.get() {
        logger.flush(Duration::from_secs(1));
    }
}

/// Microseconds since the Unix epoch (0 when the clock is before it).
pub fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// SplitMix64 finalizer: well-mixed 64-bit ids from a counter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mint a process-unique, nonzero request id.
///
/// Minted at the *outermost* hop of a request (the CLI or the router
/// front door) and propagated unchanged to every shard, so one id
/// correlates router log, shard logs, SLOW entries, and merged trace
/// spans. Ids mix a per-process time-derived seed with an atomic
/// counter, so concurrent processes don't collide in practice and one
/// process never repeats.
pub fn mint_request_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        let t = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        splitmix64(t ^ (std::process::id() as u64).rotate_left(32))
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let id = splitmix64(seed ^ n);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Canonical request-id rendering: 16 lowercase hex digits, zero
/// padded. Every plane (logs, SLOW, traces, CLI) uses this form so a
/// single grep matches across all of them.
pub fn fmt_request_id(rid: u64) -> String {
    format!("{rid:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// A `Write` sink capturing into shared memory.
    struct Capture(Arc<StdMutex<Vec<u8>>>);
    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn format_line_renders_each_value_kind() {
        let line = format_line(
            42,
            LogLevel::Info,
            "server",
            "request_done",
            &[
                ("n", Value::U64(7)),
                ("delta", Value::I64(-3)),
                ("ratio", Value::F64(0.5)),
                ("verb", Value::Str("query")),
                ("cached", Value::Bool(true)),
                ("rid", Value::Rid(0xab)),
            ],
        );
        assert_eq!(
            line,
            "{\"ts_us\":42,\"level\":\"info\",\"target\":\"server\",\
             \"event\":\"request_done\",\"n\":7,\"delta\":-3,\"ratio\":0.5,\
             \"verb\":\"query\",\"cached\":true,\"rid\":\"00000000000000ab\"}"
        );
    }

    #[test]
    fn format_line_escapes_json_metacharacters() {
        let line = format_line(
            1,
            LogLevel::Error,
            "t",
            "e",
            &[("msg", Value::Str("a\"b\\c\nd\te\u{1}"))],
        );
        assert!(line.contains("a\\\"b\\\\c\\nd\\te\\u0001"));
        // Non-finite floats must not produce invalid JSON.
        let nan = format_line(1, LogLevel::Error, "t", "e", &[("x", Value::F64(f64::NAN))]);
        assert!(nan.contains("\"x\":null"));
    }

    #[test]
    fn disabled_logger_accepts_nothing() {
        let logger = Logger::new(LogLevel::Warn, 8);
        logger.log(LogLevel::Info, "t", "ignored", &[]);
        logger.log(LogLevel::Debug, "t", "ignored", &[]);
        assert_eq!(logger.pending(), 0);
        logger.log(LogLevel::Warn, "t", "kept", &[]);
        logger.log(LogLevel::Error, "t", "kept", &[]);
        assert_eq!(logger.pending(), 2);
        logger.disable();
        logger.log(LogLevel::Error, "t", "ignored", &[]);
        assert_eq!(logger.pending(), 2);
    }

    #[test]
    fn full_ring_drops_and_counts_instead_of_blocking() {
        let logger = Logger::new(LogLevel::Info, 4);
        for i in 0..10u64 {
            logger.log(LogLevel::Info, "t", "e", &[("i", i.into())]);
        }
        assert_eq!(logger.pending(), 4);
        assert_eq!(logger.dropped(), 6);
    }

    #[test]
    fn writer_drains_ring_and_reports_drops() {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        let logger = Arc::new(Logger::new(LogLevel::Debug, 2));
        logger.log(LogLevel::Info, "t", "one", &[]);
        logger.log(LogLevel::Info, "t", "two", &[]);
        logger.log(LogLevel::Info, "t", "overflow", &[]);
        logger.spawn_writer(Box::new(Capture(Arc::clone(&buf))));
        assert!(logger.flush(Duration::from_secs(5)));
        // Give the drop-notice write (same drain pass) a moment to land.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
            if text.contains("log_dropped") {
                assert!(text.contains("\"event\":\"one\""));
                assert!(text.contains("\"event\":\"two\""));
                assert!(!text.contains("overflow"));
                assert!(text.contains("\"count\":1"));
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "drop notice never written"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // Subsequent lines flow through the now-empty ring.
        logger.log(LogLevel::Debug, "t", "three", &[]);
        assert!(logger.flush(Duration::from_secs(5)));
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"event\":\"three\""));
    }

    #[test]
    fn request_ids_are_nonzero_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let rid = mint_request_id();
            assert_ne!(rid, 0);
            assert!(seen.insert(rid), "request id repeated");
        }
        assert_eq!(fmt_request_id(0xab), "00000000000000ab");
        assert_eq!(fmt_request_id(u64::MAX), "ffffffffffffffff");
    }

    #[test]
    fn level_parse_covers_cli_forms() {
        assert_eq!(LogLevel::parse("off"), Some(None));
        assert_eq!(LogLevel::parse("warn"), Some(Some(LogLevel::Warn)));
        assert_eq!(LogLevel::parse("bogus"), None);
        assert!(LogLevel::Error < LogLevel::Debug);
        assert_eq!(LogLevel::Info.as_str(), "info");
    }
}
