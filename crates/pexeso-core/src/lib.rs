//! # pexeso-core — the PEXESO joinable-table-search framework
//!
//! Rust implementation of the core contribution of *"Efficient Joinable
//! Table Discovery in Data Lakes: A High-Dimensional Similarity-Based
//! Approach"* (ICDE 2021): exact joinable-column search over columns of
//! high-dimensional vectors under a metric-space similarity predicate.
//!
//! ## The problem
//!
//! Given a repository of columns (each a multiset of embedded records), a
//! query column `Q`, a distance threshold `τ` and a joinability threshold
//! `T`, find every repository column `S` with
//! `|{q ∈ Q : ∃x ∈ S, d(q,x) ≤ τ}| / |Q| ≥ T`.
//!
//! ## The method
//!
//! * [`pivot`] — PCA-based pivot selection (plus random / farthest-first);
//! * [`mapping`] — pivot mapping into `|P|`-dimensional pivot space;
//! * [`grid`] — sparse hierarchical grids over the pivot space;
//! * [`lemmas`] — the six filtering/matching predicates;
//! * [`block`] — Algorithm 1: dual-grid traversal + quick browsing;
//! * [`invindex`] + [`verify`] — Algorithm 2: inverted-index verification
//!   with joinable-skip and Lemma 7 early termination;
//! * [`search`] — Algorithm 3 and the [`search::PexesoIndex`] entry point,
//!   including the batched multi-query [`search::PexesoIndex::search_many`]
//!   and the best-first top-k [`search::PexesoIndex::search_topk`];
//! * [`oracle`] — the brute-force ground truth every search mode is
//!   differentially tested against;
//! * [`cost`] — the Eq. 1/2 cost model choosing the grid depth `m`, plus
//!   the per-column match-count bounds that seed the top-k threshold;
//! * [`partition`] / [`persist`] / [`outofcore`] — JSD-clustered disk
//!   partitions for lakes that exceed main memory;
//! * [`exec`] — the deterministic parallel execution layer behind
//!   [`config::ExecPolicy`].
//!
//! ## Execution policy and kernels
//!
//! Every stage of the pipeline accepts an [`config::ExecPolicy`]:
//! `Sequential` (the default; what the paper's experiments time) or
//! `Parallel { threads }` (`threads == 0` = all cores). Parallel execution
//! is **deterministic** — work is sharded so results never depend on the
//! thread count, and `tests/exactness.rs` pins `Parallel ≡ Sequential`
//! byte-for-byte. The distance layer exposes batched early-exit kernels
//! ([`metric::Metric::dist_le`], [`metric::Metric::dist_batch`]) that the
//! verification and pivot-mapping hot paths use instead of scalar
//! [`metric::Metric::dist`]; overrides are required to agree exactly with
//! the scalar path, so they are pure throughput knobs too.
//!
//! ## The unified query API
//!
//! Every backend — the in-memory [`search::PexesoIndex`], the
//! out-of-core [`outofcore::PartitionedLake`], its fully-resident twin
//! [`outofcore::ResidentPartitions`], and the remote client in
//! `pexeso-serve` — answers one request type, [`query::Query`], through
//! one object-safe trait, [`query::Queryable`], with byte-identical
//! rankings and a typed exactness outcome (budgeted queries report
//! [`query::QueryOutcome::Exceeded`] instead of silently presenting
//! partial results). See the [`query`] module docs for the contract.
//!
//! ## Quick example
//!
//! ```
//! use pexeso_core::prelude::*;
//!
//! // Two tiny repositories of 4-d unit vectors.
//! let mut repo = ColumnSet::new(4);
//! repo.add_column("t1", "c", 0, vec![&[1.0, 0.0, 0.0, 0.0][..], &[0.0, 1.0, 0.0, 0.0]]).unwrap();
//! repo.add_column("t2", "c", 1, vec![&[0.0, 0.0, 1.0, 0.0][..]]).unwrap();
//!
//! let index = PexesoIndex::build(repo, Euclidean, IndexOptions::default()).unwrap();
//!
//! let mut query = VectorStore::new(4);
//! query.push(&[1.0, 0.0, 0.0, 0.0]).unwrap();
//! let q = Query::threshold(Tau::Ratio(0.05), JoinThreshold::Ratio(0.9));
//! let result = index.execute(&q, &query).unwrap();
//! assert!(result.exact());
//! assert_eq!(result.hits.len(), 1); // only t1.c joins
//! ```

pub mod block;
pub mod column;
pub mod config;
pub mod cost;
pub mod daat;
pub mod error;
pub mod exec;
pub mod explain;
pub mod fault;
pub mod grid;
pub mod hist;
pub mod histogram;
pub mod inspect;
pub mod invindex;
pub mod kernel;
pub mod lemmas;
pub mod log;
pub mod mapping;
pub mod metric;
pub mod oracle;
pub mod outofcore;
pub mod partition;
pub mod persist;
pub mod pivot;
pub mod query;
pub mod search;
pub mod stats;
pub mod trace;
pub mod util;
pub mod vector;
pub mod verify;

/// The commonly-needed types in one import.
pub mod prelude {
    pub use crate::column::{ColumnId, ColumnMeta, ColumnSet};
    pub use crate::config::{
        ExecPolicy, IndexOptions, JoinThreshold, LemmaFlags, PivotSelection, Tau,
    };
    pub use crate::error::{PexesoError, Result};
    pub use crate::explain::{ExplainReport, FunnelStage, TopkExplain};
    pub use crate::metric::{Angular, Chebyshev, Euclidean, Manhattan, Metric};
    pub use crate::outofcore::{GlobalHit, LakeManifest, PartitionedLake, ResidentPartitions};
    pub use crate::partition::{PartitionConfig, PartitionMethod};
    pub use crate::query::{
        Exceeded, Query, QueryBudget, QueryMode, QueryOutcome, QueryResponse, Queryable,
    };
    pub use crate::search::{
        naive_search, PexesoIndex, SearchHit, SearchOptions, SearchResult, TopkStrategy,
        VerifyStrategy,
    };
    pub use crate::stats::SearchStats;
    pub use crate::trace::{QueryTrace, TraceLevel, TraceSpan};
    pub use crate::vector::{VectorId, VectorStore};
}

pub use prelude::*;
