//! EXPLAIN: the query's pruning funnel, reported.
//!
//! PEXESO's contribution is a cascade of pruning stages — grid blocking
//! (Lemmas 3–6), inverted-index verification (Lemmas 1/2), and
//! column-level early termination (Lemma 7 / best-first top-k bounds).
//! The trace plane ([`crate::trace`]) reports how *long* each phase
//! took; this module reports *why* the work was what it was: how many
//! candidates each stage admitted, which lemma killed how many, and —
//! for best-first top-k — how the adaptive threshold tightened round by
//! round and which columns were pruned by their own upper bounds.
//!
//! An [`ExplainReport`] is a pure function of the query's final
//! [`SearchStats`] (plus an optional [`TopkExplain`] recorded inside
//! the best-first loop), so the explain-off path costs nothing and
//! explain-on provably cannot change results: the differential suite in
//! `tests/explain.rs` pins hits and stats byte-identical either way.
//!
//! ## Funnel semantics
//!
//! Stages count in their own unit — `pairs` (⟨query vector, cell⟩
//! blocking decisions), `rows` (candidate target vectors examined
//! during verification), `columns` (final answer granularity). Within
//! every stage the arithmetic is exact **by construction**:
//! `input = output + Σ pruned`, where each pruned entry equals the
//! corresponding [`SearchStats`] counter verbatim — that equality is
//! the cross-check the funnel-consistency tests enforce. Counts do not
//! carry *across* units (one candidate pair expands into many candidate
//! rows), which is why each stage names its unit.

use crate::query::{Query, QueryMode, QueryOutcome};
use crate::stats::SearchStats;

/// One stage of the candidate funnel. `input = output + Σ pruned`
/// always holds (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunnelStage {
    /// Stage name (`block`, `verify`, `columns`).
    pub name: String,
    /// Counting unit (`pairs`, `rows`, `columns`).
    pub unit: String,
    /// Items entering the stage.
    pub input: u64,
    /// `(reason, count)` per pruning rule that fired; each count equals
    /// the matching [`SearchStats`] counter.
    pub pruned: Vec<(String, u64)>,
    /// Items the stage forwarded (or, for the last stage, returned).
    pub output: u64,
}

impl FunnelStage {
    fn derive(name: &str, unit: &str, output: u64, pruned: Vec<(String, u64)>) -> Self {
        let input = output + pruned.iter().map(|(_, n)| *n).sum::<u64>();
        Self {
            name: name.to_string(),
            unit: unit.to_string(),
            input,
            pruned,
            output,
        }
    }

    /// Whether this stage's arithmetic balances.
    pub fn consistent(&self) -> bool {
        self.input == self.output + self.pruned.iter().map(|(_, n)| *n).sum::<u64>()
    }
}

/// Per-column prune records kept in a [`TopkExplain`] are capped so an
/// explain report stays small no matter the repository size.
pub const MAX_PRUNED_COLUMNS: usize = 32;

/// One best-first verification round as the top-k loop saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopkRound {
    /// The frozen threshold count of this round (`None` until the heap
    /// holds `k` exact entries and no seed exists).
    pub bar: Option<u32>,
    /// Columns exactly verified this round.
    pub batch: u32,
    /// Columns pruned this round by their own upper bound.
    pub pruned: u32,
}

/// The best-first top-k loop's own story: the seeded threshold, the
/// bound trajectory round by round, and (a capped sample of) the
/// columns pruned without exact verification.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopkExplain {
    /// The sound initial threshold count seeded by the cost model.
    pub seed: Option<u32>,
    /// Columns whose upper bound survived the seed.
    pub survivors: u64,
    /// One entry per batch round, in execution order.
    pub rounds: Vec<TopkRound>,
    /// `(column, upper bound)` of bound-pruned columns, first
    /// [`MAX_PRUNED_COLUMNS`] only.
    pub pruned_columns: Vec<(u32, u32)>,
    /// Whether the loop stopped outright because the suffix maximum of
    /// the remaining upper bounds fell below the threshold.
    pub suffix_stop: bool,
}

impl TopkExplain {
    /// Record a bound-pruned column (capped; the aggregate counter in
    /// [`SearchStats::topk_pruned`] is never capped).
    pub fn record_pruned_column(&mut self, column: u32, upper_bound: u32) {
        if self.pruned_columns.len() < MAX_PRUNED_COLUMNS {
            self.pruned_columns.push((column, upper_bound));
        }
    }
}

/// The full explain answer for one query: the candidate funnel, the
/// scalar decisions, and the top-k trajectory when applicable.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    /// `threshold` or `topk`.
    pub mode: String,
    /// The candidate funnel, outermost stage first.
    pub stages: Vec<FunnelStage>,
    /// Human-readable scalar decisions (quick-browse, budget outcome,
    /// definite-match counts, …).
    pub decisions: Vec<String>,
    /// Best-first trajectory; present for locally-executed top-k
    /// queries, absent for threshold queries and router-merged reports
    /// (per-shard trajectories don't compose).
    pub topk: Option<TopkExplain>,
}

impl ExplainReport {
    /// Build the report from a query's final stats. Pure: calling this
    /// (or not) can never change hits or stats, which is exactly what
    /// the explain differential tests pin.
    pub fn from_stats(
        query: &Query,
        stats: &SearchStats,
        hits: u64,
        outcome: QueryOutcome,
        topk: Option<TopkExplain>,
    ) -> Self {
        let (mode, is_topk) = match query.mode {
            QueryMode::Threshold(_) => ("threshold", false),
            QueryMode::Topk(_) => ("topk", true),
        };
        let mut stages = Vec::with_capacity(3);
        stages.push(FunnelStage::derive(
            "block",
            "pairs",
            stats.candidate_pairs + stats.matching_pairs,
            vec![("lemma3/4".to_string(), stats.cell_pairs_filtered)],
        ));
        stages.push(FunnelStage::derive(
            "verify",
            "rows",
            stats.lemma2_matched + stats.distance_computations,
            vec![("lemma1".to_string(), stats.lemma1_filtered)],
        ));
        let column_prunes = if is_topk {
            vec![
                ("upper_bound".to_string(), stats.topk_pruned),
                ("aborted".to_string(), stats.topk_aborted),
            ]
        } else {
            vec![("lemma7".to_string(), stats.lemma7_pruned)]
        };
        stages.push(FunnelStage::derive(
            "columns",
            "columns",
            hits,
            column_prunes,
        ));

        let mut decisions = Vec::new();
        decisions.push(format!(
            "quick_browse={} seeded_pairs={}",
            if query.options.quick_browse {
                "on"
            } else {
                "off"
            },
            stats.quick_browse_pairs
        ));
        decisions.push(format!(
            "lemma5/6_cell_matches={} lemma2_definite_rows={}",
            stats.cell_pairs_matched, stats.lemma2_matched
        ));
        decisions.push(format!(
            "distance_computations={} mapping_distances={}",
            stats.distance_computations, stats.mapping_distances
        ));
        if is_topk {
            decisions.push(format!("verify_batches={}", stats.verify_batches));
        } else {
            decisions.push(format!("early_joinable_columns={}", stats.early_joinable));
        }
        decisions.push(match outcome {
            QueryOutcome::Exact => "outcome=exact".to_string(),
            QueryOutcome::Exceeded(e) => format!("outcome=exceeded({e})"),
        });

        Self {
            mode: mode.to_string(),
            stages,
            decisions,
            topk: topk.filter(|_| is_topk),
        }
    }

    /// Merge another report into this one, stage-wise by name (the
    /// router folds shard reports this way). Prune reasons merge by
    /// name too; unmatched stages/reasons are appended. Top-k
    /// trajectories don't compose across shards, so the merged report
    /// drops them when both sides carry one.
    pub fn merge(&mut self, other: &ExplainReport) {
        for stage in &other.stages {
            if let Some(mine) = self.stages.iter_mut().find(|s| s.name == stage.name) {
                mine.input += stage.input;
                mine.output += stage.output;
                for (reason, n) in &stage.pruned {
                    if let Some((_, mine_n)) = mine.pruned.iter_mut().find(|(r, _)| r == reason) {
                        *mine_n += n;
                    } else {
                        mine.pruned.push((reason.clone(), *n));
                    }
                }
            } else {
                self.stages.push(stage.clone());
            }
        }
        for d in &other.decisions {
            if !self.decisions.contains(d) {
                self.decisions.push(d.clone());
            }
        }
        if other.topk.is_some() {
            self.topk = None;
        }
    }

    /// Whether every stage's arithmetic balances.
    pub fn consistent(&self) -> bool {
        self.stages.iter().all(FunnelStage::consistent)
    }

    /// Render the report as an indented text funnel (what the
    /// `pexeso explain` CLI prints).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "EXPLAIN ({})", self.mode);
        let _ = writeln!(out, "  funnel:");
        for s in &self.stages {
            let mut line = format!("    {:<8} [{}] in={}", s.name, s.unit, s.input);
            for (reason, n) in &s.pruned {
                let _ = write!(line, "  {reason}=-{n}");
            }
            let _ = writeln!(out, "{line}  out={}", s.output);
        }
        let _ = writeln!(out, "  decisions:");
        for d in &self.decisions {
            let _ = writeln!(out, "    {d}");
        }
        if let Some(t) = &self.topk {
            let _ = writeln!(out, "  topk:");
            let _ = writeln!(
                out,
                "    seed={} survivors={} suffix_stop={}",
                t.seed.map_or("none".to_string(), |s| s.to_string()),
                t.survivors,
                t.suffix_stop
            );
            for (i, r) in t.rounds.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "    round {}: bar={} batch={} pruned={}",
                    i + 1,
                    r.bar.map_or("none".to_string(), |b| b.to_string()),
                    r.batch,
                    r.pruned
                );
            }
            if !t.pruned_columns.is_empty() {
                let cols: Vec<String> = t
                    .pruned_columns
                    .iter()
                    .map(|(c, ub)| format!("{c}(ub={ub})"))
                    .collect();
                let _ = writeln!(out, "    pruned_columns: {}", cols.join(" "));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{JoinThreshold, Tau};

    fn stats() -> SearchStats {
        SearchStats {
            distance_computations: 40,
            lemma1_filtered: 10,
            lemma2_matched: 5,
            cell_pairs_filtered: 7,
            cell_pairs_matched: 3,
            candidate_pairs: 20,
            matching_pairs: 4,
            quick_browse_pairs: 2,
            early_joinable: 1,
            lemma7_pruned: 6,
            topk_pruned: 9,
            topk_aborted: 2,
            verify_batches: 3,
            ..Default::default()
        }
    }

    #[test]
    fn threshold_funnel_balances_and_mirrors_stats() {
        let q = Query::threshold(Tau::Ratio(0.05), JoinThreshold::Ratio(0.5));
        let r = ExplainReport::from_stats(&q, &stats(), 11, QueryOutcome::Exact, None);
        assert!(r.consistent());
        assert_eq!(r.mode, "threshold");
        let block = &r.stages[0];
        assert_eq!(block.output, 24); // candidate + matching pairs
        assert_eq!(block.pruned, vec![("lemma3/4".to_string(), 7)]);
        assert_eq!(block.input, 31);
        let verify = &r.stages[1];
        assert_eq!(verify.output, 45); // lemma2 + distance rows
        assert_eq!(verify.pruned, vec![("lemma1".to_string(), 10)]);
        let cols = &r.stages[2];
        assert_eq!(cols.output, 11);
        assert_eq!(cols.pruned, vec![("lemma7".to_string(), 6)]);
        assert!(r.topk.is_none());
        assert!(r.decisions.iter().any(|d| d.contains("outcome=exact")));
    }

    #[test]
    fn topk_funnel_carries_trajectory() {
        let q = Query::topk(Tau::Ratio(0.05), 3);
        let mut t = TopkExplain {
            seed: Some(4),
            survivors: 12,
            ..Default::default()
        };
        t.rounds.push(TopkRound {
            bar: Some(4),
            batch: 8,
            pruned: 1,
        });
        t.record_pruned_column(5, 2);
        let r = ExplainReport::from_stats(&q, &stats(), 3, QueryOutcome::Exact, Some(t));
        assert!(r.consistent());
        let cols = &r.stages[2];
        assert_eq!(
            cols.pruned,
            vec![("upper_bound".to_string(), 9), ("aborted".to_string(), 2)]
        );
        let rendered = r.render();
        assert!(rendered.contains("EXPLAIN (topk)"));
        assert!(rendered.contains("upper_bound=-9"));
        assert!(rendered.contains("round 1: bar=4 batch=8 pruned=1"));
        assert!(rendered.contains("5(ub=2)"));
    }

    #[test]
    fn merge_is_stagewise_and_drops_trajectories() {
        let q = Query::topk(Tau::Ratio(0.05), 3);
        let mut a = ExplainReport::from_stats(
            &q,
            &stats(),
            3,
            QueryOutcome::Exact,
            Some(TopkExplain::default()),
        );
        let b = ExplainReport::from_stats(
            &q,
            &stats(),
            2,
            QueryOutcome::Exact,
            Some(TopkExplain::default()),
        );
        let single_input = a.stages[0].input;
        a.merge(&b);
        assert!(a.consistent());
        assert_eq!(a.stages[0].input, 2 * single_input);
        assert_eq!(a.stages[2].output, 5);
        assert_eq!(
            a.stages[2].pruned,
            vec![("upper_bound".to_string(), 18), ("aborted".to_string(), 4)]
        );
        assert!(a.topk.is_none(), "shard trajectories must not compose");
    }

    #[test]
    fn pruned_column_records_are_capped() {
        let mut t = TopkExplain::default();
        for c in 0..(MAX_PRUNED_COLUMNS as u32 + 10) {
            t.record_pruned_column(c, 1);
        }
        assert_eq!(t.pruned_columns.len(), MAX_PRUNED_COLUMNS);
    }
}
