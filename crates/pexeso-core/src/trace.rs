//! Per-query phase tracing.
//!
//! The paper's evaluation is phase-structured — Table VI splits blocking
//! from verification, Fig. 6a counts distance computations per stage —
//! and debugging a p99 regression on a served lake needs the same
//! breakdown *per request*, not as process-wide aggregates. This module
//! is the zero-dependency substrate: a [`QueryTrace`] is a tree of
//! [`TraceSpan`]s (`map → block → verify → merge`, plus per-partition
//! and per-column children) attached to a
//! [`QueryResponse`](crate::query::QueryResponse) when the query asked
//! for it via [`Query::with_trace`](crate::query::Query::with_trace).
//!
//! Tracing is **off by default** and the disabled path is a single
//! branch per execution: backends build the span tree after the fact
//! from the [`SearchStats`](crate::stats::SearchStats) phase timings they
//! already collect, so no timer or allocation is added to an untraced
//! query (pinned by the `trace_disabled` bench row). Span offsets are
//! therefore *monotonic phase offsets* — each phase starts where the
//! previous one ended — not independent wall-clock stamps; durations are
//! the measured ones.

use std::fmt::Write as _;
use std::time::Duration;

/// How much of a query's execution to trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// No trace; the response carries `trace: None`. The default.
    #[default]
    Off,
    /// The phase spans (`map`, `block`, `verify`, `merge`) with timings
    /// and the headline counters.
    Phases,
    /// Phases plus per-partition / per-column child spans.
    Detail,
}

impl TraceLevel {
    /// Whether any trace should be built at all — the one branch the
    /// disabled path pays.
    pub fn enabled(self) -> bool {
        self != TraceLevel::Off
    }

    /// Stable wire/CLI encoding.
    pub fn as_u8(self) -> u8 {
        match self {
            TraceLevel::Off => 0,
            TraceLevel::Phases => 1,
            TraceLevel::Detail => 2,
        }
    }

    /// Inverse of [`TraceLevel::as_u8`]; unknown bytes clamp to `Detail`
    /// so a newer client's request degrades to "everything" rather than
    /// to silence.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => TraceLevel::Off,
            1 => TraceLevel::Phases,
            _ => TraceLevel::Detail,
        }
    }
}

/// One named span in a query's timeline: a start offset, a duration,
/// optional counters, and child spans.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSpan {
    /// Phase or unit name (`map`, `verify`, `partition/3`, `attempt/0`…).
    pub name: String,
    /// Offset from the trace origin, microseconds (monotonic within a
    /// sibling list).
    pub start_us: u64,
    /// Measured duration, microseconds.
    pub duration_us: u64,
    /// Named counters attached to this span (distance computations,
    /// candidate pairs, …).
    pub counters: Vec<(String, u64)>,
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    pub fn new(name: impl Into<String>, start_us: u64, duration_us: u64) -> Self {
        Self {
            name: name.into(),
            start_us,
            duration_us,
            counters: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: attach a counter. Zero-valued counters are kept — an
    /// explicit zero (e.g. `lemma7_pruned=0`) is information.
    pub fn counter(mut self, name: impl Into<String>, v: u64) -> Self {
        self.counters.push((name.into(), v));
        self
    }

    /// Builder: attach a child span.
    pub fn child(mut self, c: TraceSpan) -> Self {
        self.children.push(c);
        self
    }

    /// This span's duration as a [`Duration`].
    pub fn duration(&self) -> Duration {
        Duration::from_micros(self.duration_us)
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        let _ = write!(
            out,
            "{indent}{name}  +{start}us  {dur}us",
            name = self.name,
            start = self.start_us,
            dur = self.duration_us
        );
        for (k, v) in &self.counters {
            let _ = write!(out, "  {k}={v}");
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// The trace of one query: a root span (the whole request) over the
/// phase tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryTrace {
    pub root: TraceSpan,
}

impl QueryTrace {
    pub fn new(root: TraceSpan) -> Self {
        Self { root }
    }

    /// Depth-first search for the first span with `name`.
    pub fn find(&self, name: &str) -> Option<&TraceSpan> {
        fn walk<'a>(s: &'a TraceSpan, name: &str) -> Option<&'a TraceSpan> {
            if s.name == name {
                return Some(s);
            }
            s.children.iter().find_map(|c| walk(c, name))
        }
        walk(&self.root, name)
    }

    /// Sum of the canonical phase spans (`map`, `block`, `verify`,
    /// `merge`) among the root's direct children — the phase total a
    /// caller compares against the measured request latency. Per-unit
    /// detail spans cover the *same* time as the phases, so they are
    /// deliberately excluded: counting both would double-book the clock.
    pub fn phase_sum(&self) -> Duration {
        Duration::from_micros(
            self.root
                .children
                .iter()
                .filter(|c| matches!(c.name.as_str(), "map" | "block" | "verify" | "merge"))
                .map(|c| c.duration_us)
                .sum(),
        )
    }

    /// Total spans in the tree.
    pub fn span_count(&self) -> usize {
        fn count(s: &TraceSpan) -> usize {
            1 + s.children.iter().map(count).sum::<usize>()
        }
        count(&self.root)
    }

    /// The human-readable phase tree `pexeso query --trace` prints.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(256);
        self.root.render_into(&mut out, 0);
        out
    }

    /// Re-root this trace under `parent` (used by clients merging a
    /// server-side trace into their own attempt timeline): every span
    /// offset is shifted by `parent.start_us` so the combined timeline
    /// stays monotonic.
    pub fn nested_under(mut self, shift_us: u64) -> TraceSpan {
        fn shift(s: &mut TraceSpan, by: u64) {
            s.start_us += by;
            for c in &mut s.children {
                shift(c, by);
            }
        }
        shift(&mut self.root, shift_us);
        self.root
    }
}

/// Build the canonical phase tree from the stats one execution produced.
///
/// `total` is the measured end-to-end duration of the request (the root
/// span). The phase children are laid out back-to-back — `map` at 0,
/// `block` after it, `verify` after that, then `merge` — carrying the
/// measured per-phase durations and headline counters from `stats`.
pub fn phase_tree(
    stats: &crate::stats::SearchStats,
    total: Duration,
    merge: Duration,
) -> TraceSpan {
    let map_us = stats.mapping_time.as_micros() as u64;
    let block_us = stats.block_time.as_micros() as u64;
    let verify_us = stats.verify_time.as_micros() as u64;
    let merge_us = merge.as_micros() as u64;
    TraceSpan::new("query", 0, total.as_micros() as u64)
        .child(
            TraceSpan::new("map", 0, map_us).counter("mapping_distances", stats.mapping_distances),
        )
        .child(
            TraceSpan::new("block", map_us, block_us)
                .counter("candidate_pairs", stats.candidate_pairs)
                .counter("matching_pairs", stats.matching_pairs)
                .counter("quick_browse_pairs", stats.quick_browse_pairs),
        )
        .child(
            TraceSpan::new("verify", map_us + block_us, verify_us)
                .counter("distance_computations", stats.distance_computations)
                .counter("early_joinable", stats.early_joinable)
                .counter("lemma7_pruned", stats.lemma7_pruned)
                .counter("verify_batches", stats.verify_batches),
        )
        .child(TraceSpan::new(
            "merge",
            map_us + block_us + verify_us,
            merge_us,
        ))
}

/// A per-unit (partition / delta / column) child span built from that
/// unit's stats, attached under the root at [`TraceLevel::Detail`].
pub fn unit_span(name: impl Into<String>, stats: &crate::stats::SearchStats) -> TraceSpan {
    TraceSpan::new(name, 0, stats.total_time.as_micros() as u64)
        .counter("distance_computations", stats.distance_computations)
        .counter("candidate_pairs", stats.candidate_pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SearchStats;

    #[test]
    fn level_encoding_roundtrips() {
        for l in [TraceLevel::Off, TraceLevel::Phases, TraceLevel::Detail] {
            assert_eq!(TraceLevel::from_u8(l.as_u8()), l);
        }
        assert!(!TraceLevel::Off.enabled());
        assert!(TraceLevel::Phases.enabled());
        // Unknown future levels degrade to Detail, not Off.
        assert_eq!(TraceLevel::from_u8(99), TraceLevel::Detail);
    }

    #[test]
    fn phase_tree_lays_phases_back_to_back() {
        let stats = SearchStats {
            mapping_time: Duration::from_micros(10),
            block_time: Duration::from_micros(20),
            verify_time: Duration::from_micros(30),
            distance_computations: 7,
            ..Default::default()
        };
        let root = phase_tree(&stats, Duration::from_micros(70), Duration::from_micros(5));
        let trace = QueryTrace::new(root);
        assert_eq!(trace.find("map").unwrap().duration_us, 10);
        assert_eq!(trace.find("block").unwrap().start_us, 10);
        assert_eq!(trace.find("verify").unwrap().start_us, 30);
        assert_eq!(trace.find("merge").unwrap().start_us, 60);
        assert_eq!(trace.phase_sum(), Duration::from_micros(65));
        assert!(trace.phase_sum() <= Duration::from_micros(70));
        let v = trace.find("verify").unwrap();
        assert!(v.counters.contains(&("distance_computations".into(), 7)));
        assert_eq!(trace.span_count(), 5);
    }

    #[test]
    fn render_shows_every_span_and_counter() {
        let trace = QueryTrace::new(
            TraceSpan::new("query", 0, 100)
                .child(TraceSpan::new("map", 0, 40).counter("mapping_distances", 3)),
        );
        let text = trace.render();
        assert!(text.contains("query"));
        assert!(text.contains("  map"));
        assert!(text.contains("mapping_distances=3"));
    }

    #[test]
    fn nesting_shifts_offsets() {
        let trace =
            QueryTrace::new(TraceSpan::new("query", 0, 100).child(TraceSpan::new("map", 10, 40)));
        let nested = trace.nested_under(1000);
        assert_eq!(nested.start_us, 1000);
        assert_eq!(nested.children[0].start_us, 1010);
    }
}
