//! Search instrumentation.
//!
//! Figures 6a and 9 of the paper report distance-computation counts and the
//! contribution of each lemma; Table VI splits blocking from verification
//! time. [`SearchStats`] captures all of it in one pass-through struct so
//! experiments don't need a second instrumented code path.

use std::time::Duration;

/// Counters and timings of one joinable-column search.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Exact d(·,·) computations during verification (the paper's Fig. 6a
    /// metric).
    pub distance_computations: u64,
    /// Distances computed while pivot-mapping the query column.
    pub mapping_distances: u64,
    /// Target vectors discarded by Lemma 1 during verification.
    pub lemma1_filtered: u64,
    /// Target vectors accepted by Lemma 2 during verification.
    pub lemma2_matched: u64,
    /// Cell pairs pruned by Lemma 4 / vectors-cell prunes by Lemma 3.
    pub cell_pairs_filtered: u64,
    /// Cell pairs fully matched by Lemma 6 / vector-cell by Lemma 5.
    pub cell_pairs_matched: u64,
    /// ⟨query vector, leaf cell⟩ candidate pairs produced by blocking.
    pub candidate_pairs: u64,
    /// ⟨query vector, leaf cell⟩ matching pairs produced by blocking.
    pub matching_pairs: u64,
    /// Candidate pairs emitted directly by quick browsing.
    pub quick_browse_pairs: u64,
    /// Columns skipped mid-verification because they reached T.
    pub early_joinable: u64,
    /// Columns pruned mid-verification by Lemma 7.
    pub lemma7_pruned: u64,
    /// Top-k search: columns eliminated by the cheap match-count upper
    /// bound without any exact verification.
    pub topk_pruned: u64,
    /// Top-k search: exact per-column scans aborted early because the
    /// column could no longer beat the adaptive k-th-best threshold.
    pub topk_aborted: u64,
    /// Top-k search: best-first verification rounds executed. Batch
    /// membership is policy-independent, so this counter is too;
    /// threshold searches verify in one pass and leave it at zero.
    pub verify_batches: u64,
    /// Wall-clock time spent pivot-mapping the query column (plus the
    /// span check and the query-grid build that immediately follow it) —
    /// the "mapping" row of the paper's Table VI breakdown.
    pub mapping_time: Duration,
    /// Wall-clock time spent blocking (includes quick browsing) — the
    /// Table VI "blocking" phase.
    pub block_time: Duration,
    /// Wall-clock time spent verifying.
    pub verify_time: Duration,
    /// Total search time (mapping + HG_Q build + block + verify).
    pub total_time: Duration,
}

impl SearchStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge counters from another search (used when searching partitions).
    pub fn merge(&mut self, other: &SearchStats) {
        self.distance_computations += other.distance_computations;
        self.mapping_distances += other.mapping_distances;
        self.lemma1_filtered += other.lemma1_filtered;
        self.lemma2_matched += other.lemma2_matched;
        self.cell_pairs_filtered += other.cell_pairs_filtered;
        self.cell_pairs_matched += other.cell_pairs_matched;
        self.candidate_pairs += other.candidate_pairs;
        self.matching_pairs += other.matching_pairs;
        self.quick_browse_pairs += other.quick_browse_pairs;
        self.early_joinable += other.early_joinable;
        self.lemma7_pruned += other.lemma7_pruned;
        self.topk_pruned += other.topk_pruned;
        self.topk_aborted += other.topk_aborted;
        self.verify_batches += other.verify_batches;
        self.mapping_time += other.mapping_time;
        self.block_time += other.block_time;
        self.verify_time += other.verify_time;
        self.total_time += other.total_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SearchStats {
            distance_computations: 5,
            candidate_pairs: 2,
            ..Default::default()
        };
        let b = SearchStats {
            distance_computations: 7,
            candidate_pairs: 1,
            block_time: Duration::from_millis(3),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.distance_computations, 12);
        assert_eq!(a.candidate_pairs, 3);
        assert_eq!(a.block_time, Duration::from_millis(3));
    }

    #[test]
    fn default_is_zeroed() {
        let s = SearchStats::new();
        assert_eq!(s.distance_computations, 0);
        assert_eq!(s.total_time, Duration::ZERO);
    }
}
