//! Hierarchical grids over the pivot space (Section III-B).
//!
//! The pivot space `[0, span]^|P|` is cut into `2^(|P|·i)` cells at level
//! `i ∈ [1..m]`. Only non-empty cells are materialised. Cell identity is a
//! [`CellKey`]: one 8-bit slot per pivot dimension holding the cell's index
//! along that dimension at the key's level, packed into a `u128` (hence the
//! representation limits `|P| ≤ 16`, `m ≤ 8`). A parent key is obtained by
//! halving every slot, which is a two-instruction lane-wise shift.

use crate::config::{ExecPolicy, MAX_LEVELS, MAX_PIVOTS};
use crate::error::{PexesoError, Result};
use crate::exec;
use crate::mapping::MappedVectors;
use crate::util::FastMap;

/// Identity of a grid cell *at a given level* (the level is tracked by the
/// traversal, not stored in the key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey(pub u128);

/// Lane mask clearing the high bit of every 8-bit slot, enabling the
/// lane-wise `idx >> 1` used to derive parent keys.
const LANE_LOW7: u128 = 0x7f7f_7f7f_7f7f_7f7f_7f7f_7f7f_7f7f_7f7f;

impl CellKey {
    /// Pack per-dimension cell indices (each < 256).
    pub fn pack(indices: &[u8]) -> Self {
        debug_assert!(indices.len() <= MAX_PIVOTS);
        let mut k = 0u128;
        for (i, &idx) in indices.iter().enumerate() {
            k |= (idx as u128) << (8 * i);
        }
        CellKey(k)
    }

    /// Unpack the first `n` per-dimension indices.
    pub fn unpack(self, n: usize) -> Vec<u8> {
        (0..n).map(|i| ((self.0 >> (8 * i)) & 0xff) as u8).collect()
    }

    /// Key of the parent cell (every dimension index halves).
    #[inline]
    pub fn parent(self) -> Self {
        CellKey((self.0 >> 1) & LANE_LOW7)
    }
}

/// Geometry of a grid: dimensionality of the pivot space, depth, and span.
#[derive(Debug, Clone, PartialEq)]
pub struct GridParams {
    pub num_pivots: usize,
    /// m: number of levels below the root.
    pub levels: usize,
    /// Upper bound of every pivot-space coordinate (max distance).
    pub span: f32,
}

/// Axis-aligned bounds of a cell in pivot space. Fixed-size arrays keep the
/// hot blocking loop allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct CellBounds {
    pub lower: [f32; MAX_PIVOTS],
    pub upper: [f32; MAX_PIVOTS],
    pub n: usize,
}

impl GridParams {
    pub fn new(num_pivots: usize, levels: usize, span: f32) -> Result<Self> {
        if num_pivots == 0 || num_pivots > MAX_PIVOTS {
            return Err(PexesoError::InvalidParameter(format!(
                "num_pivots {num_pivots} outside 1..={MAX_PIVOTS}"
            )));
        }
        if levels == 0 || levels > MAX_LEVELS {
            return Err(PexesoError::InvalidParameter(format!(
                "levels {levels} outside 1..={MAX_LEVELS}"
            )));
        }
        if !(span.is_finite() && span > 0.0) {
            return Err(PexesoError::InvalidParameter(format!(
                "span {span} must be positive"
            )));
        }
        Ok(Self {
            num_pivots,
            levels,
            span,
        })
    }

    /// Edge length of a cell at `level`.
    #[inline]
    pub fn cell_width(&self, level: usize) -> f32 {
        self.span / (1u32 << level) as f32
    }

    /// Leaf-level key of a mapped vector. Coordinates are clamped into the
    /// span so boundary values (coord == span) land in the last cell.
    pub fn leaf_key(&self, mapped: &[f32]) -> CellKey {
        debug_assert_eq!(mapped.len(), self.num_pivots);
        let cells = (1u32 << self.levels) as f32;
        let mut idx = [0u8; MAX_PIVOTS];
        for (i, &c) in mapped.iter().enumerate() {
            let raw = (c / self.span * cells).floor();
            let clamped = raw.clamp(0.0, cells - 1.0);
            idx[i] = clamped as u8;
        }
        CellKey::pack(&idx[..self.num_pivots])
    }

    /// Bounds of the cell with `key` at `level`.
    pub fn bounds(&self, key: CellKey, level: usize) -> CellBounds {
        let w = self.cell_width(level);
        let mut b = CellBounds {
            lower: [0.0; MAX_PIVOTS],
            upper: [0.0; MAX_PIVOTS],
            n: self.num_pivots,
        };
        for i in 0..self.num_pivots {
            let idx = ((key.0 >> (8 * i)) & 0xff) as f32;
            b.lower[i] = idx * w;
            b.upper[i] = (idx + 1.0) * w;
        }
        b
    }
}

/// Leaf keys for every mapped vector, sharded across the policy's threads.
/// Exposed to [`crate::invindex`] so both structures share one kernel.
pub(crate) fn compute_leaf_keys(
    params: &GridParams,
    mapped: &MappedVectors,
    policy: ExecPolicy,
) -> Vec<CellKey> {
    let n = mapped.len();
    let mut keys = vec![CellKey(0); n];
    // Key packing costs only a few ns per vector, so a shard needs far
    // more slots than the default cut-off to amortise a thread spawn.
    exec::fill_slots_min(policy, &mut keys, 1, 1 << 17, |range, window| {
        for (slot, i) in range.enumerate() {
            window[slot] = params.leaf_key(mapped.get(i));
        }
    });
    keys
}

/// A sparse hierarchical grid, optionally holding the vector ids of each
/// leaf cell (needed for `HG_Q`; `HG_RV` keeps them in the inverted index).
#[derive(Debug, Clone)]
pub struct HierarchicalGrid {
    params: GridParams,
    /// Keys of the non-empty level-1 cells, sorted.
    root_children: Vec<CellKey>,
    /// `children[l - 1]` maps a non-empty level-`l` cell to its non-empty
    /// level-`l+1` children (sorted), for `l ∈ [1, m-1]`.
    children: Vec<FastMap<CellKey, Vec<CellKey>>>,
    /// Vector ids per leaf cell (empty vectors when built keys-only).
    leaf_vectors: FastMap<CellKey, Vec<u32>>,
    with_vectors: bool,
}

impl HierarchicalGrid {
    /// Build from mapped vectors, storing per-leaf vector id lists.
    pub fn build(params: GridParams, mapped: &MappedVectors) -> Result<Self> {
        Self::build_inner(params, mapped, true, ExecPolicy::Sequential)
    }

    /// [`HierarchicalGrid::build`] with explicit parallelism (identical
    /// output for every policy).
    pub fn build_with(
        params: GridParams,
        mapped: &MappedVectors,
        policy: ExecPolicy,
    ) -> Result<Self> {
        Self::build_inner(params, mapped, true, policy)
    }

    /// Build from mapped vectors without retaining vector id lists
    /// (structure only, for `HG_RV` whose contents live in the inverted
    /// index).
    pub fn build_keys_only(params: GridParams, mapped: &MappedVectors) -> Result<Self> {
        Self::build_inner(params, mapped, false, ExecPolicy::Sequential)
    }

    /// [`HierarchicalGrid::build_keys_only`] with explicit parallelism.
    pub fn build_keys_only_with(
        params: GridParams,
        mapped: &MappedVectors,
        policy: ExecPolicy,
    ) -> Result<Self> {
        Self::build_inner(params, mapped, false, policy)
    }

    fn build_inner(
        params: GridParams,
        mapped: &MappedVectors,
        with_vectors: bool,
        policy: ExecPolicy,
    ) -> Result<Self> {
        if mapped.num_pivots() != params.num_pivots {
            return Err(PexesoError::DimensionMismatch {
                expected: params.num_pivots,
                got: mapped.num_pivots(),
            });
        }
        // Leaf keys are per-vector independent: compute them sharded, then
        // aggregate into the sparse map in id order (same order as a
        // sequential scan, so the map contents are identical).
        let keys = compute_leaf_keys(&params, mapped, policy);
        let mut leaf_vectors: FastMap<CellKey, Vec<u32>> = FastMap::default();
        for (i, &key) in keys.iter().enumerate() {
            let entry = leaf_vectors.entry(key).or_default();
            if with_vectors {
                entry.push(i as u32);
            }
        }

        // Derive upper levels bottom-up.
        let m = params.levels;
        let mut children: Vec<FastMap<CellKey, Vec<CellKey>>> = (0..m.saturating_sub(1))
            .map(|_| FastMap::default())
            .collect();
        let mut current: Vec<CellKey> = leaf_vectors.keys().copied().collect();
        current.sort_unstable();
        for l in (1..m).rev() {
            // `current` holds the keys at level l+1; group them by parent.
            let mut parents: FastMap<CellKey, Vec<CellKey>> = FastMap::default();
            for &k in &current {
                parents.entry(k.parent()).or_default().push(k);
            }
            for v in parents.values_mut() {
                v.sort_unstable();
            }
            current = parents.keys().copied().collect();
            current.sort_unstable();
            children[l - 1] = parents;
        }
        Ok(Self {
            params,
            root_children: current,
            children,
            leaf_vectors,
            with_vectors,
        })
    }

    pub fn params(&self) -> &GridParams {
        &self.params
    }

    /// Non-empty level-1 cells.
    pub fn root_children(&self) -> &[CellKey] {
        &self.root_children
    }

    /// Children of a non-empty cell at `level` (1-based). Empty slice if
    /// `level == m` (leaves have no children).
    pub fn children_of(&self, key: CellKey, level: usize) -> &[CellKey] {
        if level >= self.params.levels {
            return &[];
        }
        self.children[level - 1]
            .get(&key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Vector ids in a leaf cell.
    pub fn leaf_vectors(&self, key: CellKey) -> &[u32] {
        debug_assert!(self.with_vectors, "grid built keys-only");
        self.leaf_vectors
            .get(&key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All non-empty leaf keys (sorted copies for deterministic iteration).
    pub fn leaf_keys(&self) -> Vec<CellKey> {
        let mut keys: Vec<CellKey> = self.leaf_vectors.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    pub fn num_leaves(&self) -> usize {
        self.leaf_vectors.len()
    }

    /// Total number of materialised cells over all levels: the level-1
    /// cells plus every child listed at deeper levels (which covers levels
    /// 2..m, leaves included).
    pub fn num_cells(&self) -> usize {
        let mut total = self.root_children.len();
        for level_map in &self.children {
            total += level_map.values().map(|v| v.len()).sum::<usize>();
        }
        total
    }

    /// Leaf keys under the subtree rooted at (`key`, `level`), appended to
    /// `out`.
    pub fn collect_leaves(&self, key: CellKey, level: usize, out: &mut Vec<CellKey>) {
        if level == self.params.levels {
            out.push(key);
            return;
        }
        for &child in self.children_of(key, level) {
            self.collect_leaves(child, level + 1, out);
        }
    }

    /// Vector ids under the subtree rooted at (`key`, `level`), appended to
    /// `out`. Requires a vectors-retaining grid.
    pub fn collect_vectors(&self, key: CellKey, level: usize, out: &mut Vec<u32>) {
        if level == self.params.levels {
            out.extend_from_slice(self.leaf_vectors(key));
            return;
        }
        for &child in self.children_of(key, level) {
            self.collect_vectors(child, level + 1, out);
        }
    }

    /// Insert one vector's leaf cell (index maintenance, Section III-E:
    /// appending a column costs O((|P|+m)·|s|)). Creates any missing
    /// ancestor links; `vector_id` is recorded only for vectors-retaining
    /// grids.
    pub fn insert(&mut self, leaf: CellKey, vector_id: u32) {
        let entry = self.leaf_vectors.entry(leaf).or_default();
        if self.with_vectors {
            entry.push(vector_id);
        }
        // Walk up, linking child → parent until an existing link is found.
        let m = self.params.levels;
        let mut child = leaf;
        for level in (1..m).rev() {
            let parent = child.parent();
            let children = self.children[level - 1].entry(parent).or_default();
            match children.binary_search(&child) {
                Ok(_) => return, // the rest of the path already exists
                Err(pos) => children.insert(pos, child),
            }
            child = parent;
        }
        if let Err(pos) = self.root_children.binary_search(&child) {
            self.root_children.insert(pos, child);
        }
    }

    /// Estimated resident size in bytes (index-size experiments, Fig. 6b).
    pub fn approx_bytes(&self) -> usize {
        let key_sz = std::mem::size_of::<CellKey>();
        let mut total = self.root_children.len() * key_sz;
        for level in &self.children {
            total += level.len() * (key_sz + std::mem::size_of::<Vec<CellKey>>());
            total += level.values().map(|v| v.len() * key_sz).sum::<usize>();
        }
        total += self.leaf_vectors.len() * (key_sz + std::mem::size_of::<Vec<u32>>());
        total += self
            .leaf_vectors
            .values()
            .map(|v| v.len() * 4)
            .sum::<usize>();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapped(coords: &[&[f32]]) -> MappedVectors {
        let k = coords[0].len();
        let flat: Vec<f32> = coords.iter().flat_map(|c| c.iter().copied()).collect();
        MappedVectors::from_raw(k, flat).unwrap()
    }

    #[test]
    fn key_pack_unpack_roundtrip() {
        let k = CellKey::pack(&[3, 7, 255, 0]);
        assert_eq!(k.unpack(4), vec![3, 7, 255, 0]);
    }

    #[test]
    fn parent_halves_every_lane() {
        let k = CellKey::pack(&[6, 7, 1, 255]);
        assert_eq!(k.parent().unpack(4), vec![3, 3, 0, 127]);
    }

    #[test]
    fn leaf_key_basic_geometry() {
        // span 4, m=2 -> leaf cells of width 1, indices 0..3.
        let p = GridParams::new(2, 2, 4.0).unwrap();
        assert_eq!(p.leaf_key(&[0.5, 3.5]).unpack(2), vec![0, 3]);
        assert_eq!(p.leaf_key(&[1.0, 1.999]).unpack(2), vec![1, 1]);
        // Boundary coordinate == span clamps into the last cell.
        assert_eq!(p.leaf_key(&[4.0, 0.0]).unpack(2), vec![3, 0]);
    }

    #[test]
    fn bounds_contain_their_vectors() {
        let p = GridParams::new(3, 4, 2.0).unwrap();
        let coords = [0.1f32, 1.7, 0.95];
        let key = p.leaf_key(&coords);
        let b = p.bounds(key, 4);
        for (i, &c) in coords.iter().enumerate() {
            assert!(b.lower[i] <= c + 1e-5 && c <= b.upper[i] + 1e-5);
        }
    }

    #[test]
    fn ancestor_bounds_nest() {
        let p = GridParams::new(2, 3, 8.0).unwrap();
        let leaf = p.leaf_key(&[5.3, 2.2]);
        let lb = p.bounds(leaf, 3);
        let pb = p.bounds(leaf.parent(), 2);
        let gb = p.bounds(leaf.parent().parent(), 1);
        for i in 0..2 {
            assert!(pb.lower[i] <= lb.lower[i] && lb.upper[i] <= pb.upper[i]);
            assert!(gb.lower[i] <= pb.lower[i] && pb.upper[i] <= gb.upper[i]);
        }
    }

    #[test]
    fn grid_matches_paper_example_shape() {
        // Fig. 3: 2-d pivot space, 2 levels; leaf cells 4x4.
        let p = GridParams::new(2, 2, 4.0).unwrap();
        let m = mapped(&[&[0.5, 0.5], &[0.6, 0.4], &[3.5, 3.5], &[2.5, 0.5]]);
        let g = HierarchicalGrid::build(p, &m).unwrap();
        assert_eq!(g.num_leaves(), 3, "two vectors share a leaf");
        assert_eq!(g.root_children().len(), 3);
        let mut total = 0;
        for &r in g.root_children() {
            for &c in g.children_of(r, 1) {
                total += g.leaf_vectors(c).len();
            }
        }
        assert_eq!(total, 4, "all vectors reachable through the tree");
    }

    #[test]
    fn collect_leaves_and_vectors() {
        let p = GridParams::new(1, 3, 8.0).unwrap();
        let m = mapped(&[&[0.5], &[1.5], &[2.5], &[7.5]]);
        let g = HierarchicalGrid::build(p, &m).unwrap();
        // Root child covering [0,4) should contain 3 leaves / 3 vectors.
        let low_root = g
            .root_children()
            .iter()
            .copied()
            .find(|k| k.unpack(1)[0] == 0)
            .unwrap();
        let mut leaves = Vec::new();
        g.collect_leaves(low_root, 1, &mut leaves);
        assert_eq!(leaves.len(), 3);
        let mut vecs = Vec::new();
        g.collect_vectors(low_root, 1, &mut vecs);
        vecs.sort_unstable();
        assert_eq!(vecs, vec![0, 1, 2]);
    }

    #[test]
    fn keys_only_grid_has_structure_but_no_vectors() {
        let p = GridParams::new(1, 2, 4.0).unwrap();
        let m = mapped(&[&[0.5], &[3.5]]);
        let g = HierarchicalGrid::build_keys_only(p, &m).unwrap();
        assert_eq!(g.num_leaves(), 2);
        assert_eq!(g.leaf_keys().len(), 2);
    }

    #[test]
    fn single_level_grid() {
        let p = GridParams::new(2, 1, 4.0).unwrap();
        let m = mapped(&[&[0.5, 0.5], &[3.5, 3.5]]);
        let g = HierarchicalGrid::build(p, &m).unwrap();
        assert_eq!(g.root_children().len(), 2);
        for &r in g.root_children() {
            assert!(g.children_of(r, 1).is_empty());
            assert!(!g.leaf_vectors(r).is_empty());
        }
    }

    #[test]
    fn pivot_count_mismatch_rejected() {
        let p = GridParams::new(3, 2, 4.0).unwrap();
        let m = mapped(&[&[0.5, 0.5]]);
        assert!(HierarchicalGrid::build(p, &m).is_err());
    }

    #[test]
    fn params_validation() {
        assert!(GridParams::new(0, 2, 1.0).is_err());
        assert!(GridParams::new(17, 2, 1.0).is_err());
        assert!(GridParams::new(2, 0, 1.0).is_err());
        assert!(GridParams::new(2, 9, 1.0).is_err());
        assert!(GridParams::new(2, 2, 0.0).is_err());
        assert!(GridParams::new(2, 2, f32::NAN).is_err());
    }

    #[test]
    fn negative_coordinates_clamp_to_first_cell() {
        // Mapped coordinates are distances (non-negative), but guard FP
        // noise anyway.
        let p = GridParams::new(1, 2, 4.0).unwrap();
        assert_eq!(p.leaf_key(&[-0.1]).unpack(1), vec![0]);
    }
}
