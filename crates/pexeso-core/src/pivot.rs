//! Pivot selection (Section III-D).
//!
//! Good pivots are outliers that scatter the mapped vectors; the paper
//! adopts the PCA-based method of Mao et al., which runs in O(|RV|): find
//! the principal directions (here by power iteration on a sample), then take
//! the data points with extreme projections along each direction as pivots.
//! Random selection and farthest-first traversal are provided as the
//! comparison points used by Fig. 7a.

//! Parallelism: the O(|RV|) scans (distance-to-pivot updates, projection
//! extremes) are element-independent and run sharded under an
//! [`ExecPolicy`]; shard extremes merge in range order with the same strict
//! comparisons as the sequential scan, so the selected pivots are identical
//! for every policy. The power-iteration *reduction* inside
//! `principal_directions` is order-sensitive floating-point accumulation
//! and deliberately stays sequential — it touches only a bounded sample
//! (`PCA_SAMPLE`) and is not the hot part.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::config::{ExecPolicy, PivotSelection};
use crate::error::{PexesoError, Result};
use crate::exec;
use crate::metric::Metric;
use crate::vector::VectorStore;

/// Maximum vectors used to estimate principal directions. Projections are
/// still evaluated over the full dataset, keeping selection O(|RV|).
const PCA_SAMPLE: usize = 2048;
/// Power-iteration sweeps per component; convergence is fast and pivots
/// only need approximate directions.
const POWER_ITERS: usize = 12;

/// Select `k` pivots from `store` with the given strategy. Pivots are
/// returned as owned copies of data points.
pub fn select_pivots<M: Metric>(
    store: &VectorStore,
    metric: &M,
    k: usize,
    strategy: PivotSelection,
    seed: u64,
) -> Result<Vec<Vec<f32>>> {
    select_pivots_with(store, metric, k, strategy, seed, ExecPolicy::Sequential)
}

/// [`select_pivots`] with explicit parallelism. The chosen pivots are
/// identical for every policy.
pub fn select_pivots_with<M: Metric>(
    store: &VectorStore,
    metric: &M,
    k: usize,
    strategy: PivotSelection,
    seed: u64,
    policy: ExecPolicy,
) -> Result<Vec<Vec<f32>>> {
    if store.is_empty() {
        return Err(PexesoError::EmptyInput("pivot selection over empty store"));
    }
    if k == 0 {
        return Err(PexesoError::InvalidParameter(
            "zero pivots requested".into(),
        ));
    }
    let k = k.min(store.len());
    match strategy {
        PivotSelection::Random => Ok(random_pivots(store, k, seed)),
        PivotSelection::FarthestFirst => Ok(farthest_first(store, metric, k, seed, policy)),
        PivotSelection::Pca => Ok(pca_pivots(store, metric, k, seed, policy)),
    }
}

fn random_pivots(store: &VectorStore, k: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..store.len()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(k);
    idx.into_iter().map(|i| store.get_raw(i).to_vec()).collect()
}

/// Farthest-first traversal: greedily add the point maximising the minimum
/// distance to the already-chosen pivots. The per-point distance updates
/// are element-independent and run sharded; the argmax merge preserves the
/// sequential `max_by` tie-breaking (last maximum wins).
fn farthest_first<M: Metric>(
    store: &VectorStore,
    metric: &M,
    k: usize,
    seed: u64,
    policy: ExecPolicy,
) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let first = rng.gen_range(0..store.len());
    let mut chosen_idx = vec![first];
    let mut min_dist = vec![0.0f32; store.len()];
    let update = |pivot: usize, min_dist: &mut [f32], init: bool| {
        exec::fill_slots(policy, min_dist, 1, |range, window| {
            let pv = store.get_raw(pivot);
            for (s, i) in range.enumerate() {
                let d = metric.dist(store.get_raw(i), pv);
                if init || d < window[s] {
                    window[s] = d;
                }
            }
        });
    };
    update(first, &mut min_dist, true);
    while chosen_idx.len() < k {
        let (best, _) = min_dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty store");
        chosen_idx.push(best);
        update(best, &mut min_dist, false);
    }
    chosen_idx
        .into_iter()
        .map(|i| store.get_raw(i).to_vec())
        .collect()
}

/// Estimate the top `c` principal directions of (a sample of) the data by
/// power iteration with Gram–Schmidt deflation.
fn principal_directions(store: &VectorStore, c: usize, seed: u64) -> Vec<Vec<f32>> {
    let dim = store.dim();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9c1a_2b3c_4d5e_6f70);
    let n = store.len();
    let sample_idx: Vec<usize> = if n <= PCA_SAMPLE {
        (0..n).collect()
    } else {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        idx.truncate(PCA_SAMPLE);
        idx
    };

    let mut mean = vec![0.0f32; dim];
    for &i in &sample_idx {
        for (m, x) in mean.iter_mut().zip(store.get_raw(i)) {
            *m += x;
        }
    }
    let inv_n = 1.0 / sample_idx.len() as f32;
    mean.iter_mut().for_each(|m| *m *= inv_n);

    let mut components: Vec<Vec<f32>> = Vec::with_capacity(c);
    let mut centered = vec![0.0f32; dim];
    for _ in 0..c {
        // Random start direction.
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        normalize(&mut v);
        for _ in 0..POWER_ITERS {
            let mut next = vec![0.0f32; dim];
            for &i in &sample_idx {
                let x = store.get_raw(i);
                for (cdst, (xv, mv)) in centered.iter_mut().zip(x.iter().zip(mean.iter())) {
                    *cdst = xv - mv;
                }
                let proj: f32 = centered.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
                for (nv, cv) in next.iter_mut().zip(centered.iter()) {
                    *nv += proj * cv;
                }
            }
            // Deflate: remove components already found.
            for comp in &components {
                let d: f32 = next.iter().zip(comp.iter()).map(|(a, b)| a * b).sum();
                for (nv, cv) in next.iter_mut().zip(comp.iter()) {
                    *nv -= d * cv;
                }
            }
            if normalize(&mut next) == 0.0 {
                // Degenerate data (e.g. fewer distinct points than
                // components): fall back to a random orthogonal direction.
                next = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                for comp in &components {
                    let d: f32 = next.iter().zip(comp.iter()).map(|(a, b)| a * b).sum();
                    for (nv, cv) in next.iter_mut().zip(comp.iter()) {
                        *nv -= d * cv;
                    }
                }
                normalize(&mut next);
            }
            v = next;
        }
        components.push(v);
    }
    components
}

/// PCA pivots: for each principal direction take the extreme data points
/// (max and min projection), dedupe, top up with farthest-first if needed.
/// The full-dataset projection scans are sharded; shard extremes merge in
/// range order with the sequential scan's strict comparisons (first
/// extreme wins), so the result is policy-independent.
fn pca_pivots<M: Metric>(
    store: &VectorStore,
    metric: &M,
    k: usize,
    seed: u64,
    policy: ExecPolicy,
) -> Vec<Vec<f32>> {
    let dim = store.dim();
    let n_dirs = k.div_ceil(2).max(1);
    let dirs = principal_directions(store, n_dirs, seed);

    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for dir in &dirs {
        let shard_extremes = exec::map_ranges(policy, store.len(), |range| {
            let mut best_hi = (usize::MAX, f32::NEG_INFINITY);
            let mut best_lo = (usize::MAX, f32::INFINITY);
            for i in range {
                let x = store.get_raw(i);
                let mut proj = 0.0f32;
                for d in 0..dim {
                    proj += x[d] * dir[d];
                }
                if proj > best_hi.1 {
                    best_hi = (i, proj);
                }
                if proj < best_lo.1 {
                    best_lo = (i, proj);
                }
            }
            (best_hi, best_lo)
        });
        let mut best_hi = (0usize, f32::NEG_INFINITY);
        let mut best_lo = (0usize, f32::INFINITY);
        for (hi, lo) in shard_extremes {
            if hi.0 != usize::MAX && hi.1 > best_hi.1 {
                best_hi = hi;
            }
            if lo.0 != usize::MAX && lo.1 < best_lo.1 {
                best_lo = lo;
            }
        }
        for idx in [best_hi.0, best_lo.0] {
            if chosen.len() < k && !chosen.contains(&idx) {
                chosen.push(idx);
            }
        }
    }

    let mut pivots: Vec<Vec<f32>> = chosen.iter().map(|&i| store.get_raw(i).to_vec()).collect();
    // Top up with farthest-first from the chosen set if extremes collided.
    while pivots.len() < k {
        let shard_best = exec::map_ranges(policy, store.len(), |range| {
            let mut best = (usize::MAX, f32::NEG_INFINITY);
            for i in range {
                let x = store.get_raw(i);
                let d = pivots
                    .iter()
                    .map(|p| metric.dist(x, p))
                    .fold(f32::INFINITY, f32::min);
                if d > best.1 {
                    best = (i, d);
                }
            }
            best
        });
        let mut best = (0usize, f32::NEG_INFINITY);
        for b in shard_best {
            if b.0 != usize::MAX && b.1 > best.1 {
                best = b;
            }
        }
        pivots.push(store.get_raw(best.0).to_vec());
    }
    pivots
}

fn normalize(v: &mut [f32]) -> f32 {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        let inv = norm.recip();
        v.iter_mut().for_each(|x| *x *= inv);
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;

    fn gaussian_store(n: usize, dim: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            s.push(&v).unwrap();
        }
        s
    }

    #[test]
    fn all_strategies_return_k_pivots() {
        let s = gaussian_store(500, 8, 1);
        for strat in [
            PivotSelection::Pca,
            PivotSelection::Random,
            PivotSelection::FarthestFirst,
        ] {
            let p = select_pivots(&s, &Euclidean, 5, strat, 7).unwrap();
            assert_eq!(p.len(), 5, "{strat:?}");
            assert!(p.iter().all(|v| v.len() == 8));
        }
    }

    #[test]
    fn k_clamped_to_store_size() {
        let s = gaussian_store(3, 4, 2);
        let p = select_pivots(&s, &Euclidean, 10, PivotSelection::Random, 7).unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn empty_store_is_error() {
        let s = VectorStore::new(4);
        assert!(select_pivots(&s, &Euclidean, 2, PivotSelection::Pca, 7).is_err());
    }

    #[test]
    fn zero_pivots_is_error() {
        let s = gaussian_store(10, 4, 3);
        assert!(select_pivots(&s, &Euclidean, 0, PivotSelection::Pca, 7).is_err());
    }

    #[test]
    fn pca_finds_the_stretched_axis_extremes() {
        // Data stretched 10x along dim 0: the two PCA pivots should be the
        // extreme points along that axis.
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = VectorStore::new(4);
        for _ in 0..400 {
            let v = [
                rng.gen_range(-10.0f32..10.0),
                rng.gen_range(-1.0f32..1.0),
                rng.gen_range(-1.0f32..1.0),
                rng.gen_range(-1.0f32..1.0),
            ];
            s.push(&v).unwrap();
        }
        let p = select_pivots(&s, &Euclidean, 2, PivotSelection::Pca, 7).unwrap();
        // Both pivots should be near the extremes of dim 0.
        assert!(p.iter().all(|v| v[0].abs() > 7.0), "pivots {:?}", p);
        assert!(
            p[0][0] * p[1][0] < 0.0,
            "pivots should sit on opposite ends"
        );
    }

    #[test]
    fn farthest_first_pivots_are_spread() {
        let s = gaussian_store(300, 6, 6);
        let p = select_pivots(&s, &Euclidean, 4, PivotSelection::FarthestFirst, 7).unwrap();
        // Pairwise distances among chosen pivots should all be substantial
        // compared to the average pairwise distance of the data.
        for i in 0..p.len() {
            for j in (i + 1)..p.len() {
                assert!(Euclidean.dist(&p[i], &p[j]) > 0.5);
            }
        }
    }

    #[test]
    fn selection_is_deterministic() {
        let s = gaussian_store(200, 8, 8);
        for strat in [
            PivotSelection::Pca,
            PivotSelection::Random,
            PivotSelection::FarthestFirst,
        ] {
            let a = select_pivots(&s, &Euclidean, 3, strat, 9).unwrap();
            let b = select_pivots(&s, &Euclidean, 3, strat, 9).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn pca_beats_random_on_filter_power_proxy() {
        // Proxy for Fig. 7a quality: the variance of mapped coordinates
        // (distances to pivots) should be larger under PCA pivots.
        let s = {
            let mut rng = StdRng::seed_from_u64(10);
            let mut s = VectorStore::new(8);
            for _ in 0..500 {
                let mut v = vec![0.0f32; 8];
                v[0] = rng.gen_range(-5.0..5.0);
                for x in v.iter_mut().skip(1) {
                    *x = rng.gen_range(-0.5..0.5);
                }
                s.push(&v).unwrap();
            }
            s
        };
        let var_of = |pivots: &[Vec<f32>]| -> f32 {
            let mut acc = 0.0f32;
            for p in pivots {
                let d: Vec<f32> = (0..s.len())
                    .map(|i| Euclidean.dist(s.get_raw(i), p))
                    .collect();
                let mean = d.iter().sum::<f32>() / d.len() as f32;
                acc += d.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / d.len() as f32;
            }
            acc / pivots.len() as f32
        };
        let pca = select_pivots(&s, &Euclidean, 2, PivotSelection::Pca, 7).unwrap();
        let rnd = select_pivots(&s, &Euclidean, 2, PivotSelection::Random, 7).unwrap();
        assert!(
            var_of(&pca) > var_of(&rnd) * 0.9,
            "pca {} rnd {}",
            var_of(&pca),
            var_of(&rnd)
        );
    }
}
