//! Small internal utilities: a fast non-cryptographic hasher for the hot
//! cell-key maps.
//!
//! The blocking traversal and inverted-index lookups hash `u128` cell keys
//! millions of times per search; the standard library's SipHash is the
//! dominant cost there. This FxHash-style multiply-xor hasher is not
//! HashDoS-resistant, which is fine: keys are derived from our own grid
//! geometry, not attacker input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher (FxHash-style) for integer-keyed maps.
#[derive(Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// HashMap with the fast hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;
/// HashSet with the fast hasher.
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u128 {
            let mut h = FastHasher::default();
            h.write_u128(i * 0x1_0001_0001);
            seen.insert(h.finish());
        }
        assert!(seen.len() > 9_990, "too many collisions: {}", seen.len());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u128, u32> = FastMap::default();
        for i in 0..1000u128 {
            m.insert(i << 64 | i, i as u32);
        }
        for i in 0..1000u128 {
            assert_eq!(m.get(&(i << 64 | i)), Some(&(i as u32)));
        }
    }

    #[test]
    fn byte_writes_consistent() {
        let mut a = FastHasher::default();
        a.write(b"hello world, this is a test");
        let mut b = FastHasher::default();
        b.write(b"hello world, this is a test");
        assert_eq!(a.finish(), b.finish());
    }
}
