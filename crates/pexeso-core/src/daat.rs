//! Document-at-a-time verification — the paper's literal Algorithm 2
//! mechanism.
//!
//! Section III-C describes the inverted-index lookup as a DaaT traversal:
//! each column is a "document"; a cursor is materialised for every leaf
//! cell in a query vector's candidate set; a priority queue pops the
//! smallest column id next, so all cells contributing to one column are
//! verified together before moving to the next column. Early termination
//! (joinable-skip and Lemma 7) applies per column, exactly as in
//! [`crate::verify`].
//!
//! The default verifier reaches the same skip behaviour with generation
//! stamps and no heap; this module exists for fidelity and as an ablation:
//! both strategies are property-tested to return identical results, and
//! the benches compare their costs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::block::BlockOutput;
use crate::column::ColumnId;
use crate::lemmas;
use crate::metric::Metric;
use crate::stats::SearchStats;
use crate::verify::{VerifyContext, VerifyOutcome};

/// A cursor over one leaf cell's postings: the next not-yet-consumed
/// column entry of that cell.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    /// Index of the cell in the candidate list (stable handle).
    cell_idx: u32,
    /// Position within the cell's postings column array.
    entry: u32,
}

/// Run Algorithm 2 with the paper's priority-queue DaaT merge. Produces
/// the identical [`VerifyOutcome`] as [`crate::verify::verify`].
pub fn verify_daat<M: Metric>(
    ctx: &VerifyContext<'_, M>,
    blocked: &BlockOutput,
    stats: &mut SearchStats,
) -> VerifyOutcome {
    let n_cols = ctx.columns.n_columns();
    let n_q = ctx.query.len();
    let terminable = ctx.t_abs <= n_q;
    let mut match_counts = vec![0u32; n_cols];
    let mut mismatch_counts = vec![0u32; n_cols];
    let mut joinable = vec![false; n_cols];
    let mut pruned = vec![false; n_cols];
    if let Some(deleted) = ctx.deleted {
        for (p, &d) in pruned.iter_mut().zip(deleted) {
            *p = d;
        }
    }
    let mut matched_stamp = vec![0u32; n_cols];

    let mut mi = 0usize;
    let mut ci = 0usize;
    // Reused heap: (column id, cursor), min-ordered by column id.
    let mut heap: BinaryHeap<Reverse<(u32, u32, u32)>> = BinaryHeap::new();

    for q in 0..n_q as u32 {
        let gen = q + 1;

        // Matching pairs first (identical to the stamp-based verifier).
        if mi < blocked.matching.len() && blocked.matching[mi].0 == q {
            for &cell in &blocked.matching[mi].1 {
                let Some(postings) = ctx.inv.postings(cell) else {
                    continue;
                };
                for &col in &postings.cols {
                    let c = col as usize;
                    if joinable[c] || pruned[c] || matched_stamp[c] == gen {
                        continue;
                    }
                    matched_stamp[c] = gen;
                    match_counts[c] += 1;
                    if terminable && match_counts[c] as usize >= ctx.t_abs {
                        joinable[c] = true;
                        stats.early_joinable += 1;
                    }
                }
            }
            mi += 1;
        }

        // Candidate pairs: materialise one cursor per candidate cell (the
        // paper: "we do not materialize a pointer for every cell but only
        // those appearing in the candidate set of the query vector") and
        // merge by ascending column id.
        if ci < blocked.candidates.len() && blocked.candidates[ci].0 == q {
            let cells = &blocked.candidates[ci].1;
            let qm = ctx.query_mapped.get(q as usize);
            let qv = ctx.query.get_raw(q as usize);

            heap.clear();
            for (cell_idx, &cell) in cells.iter().enumerate() {
                if let Some(postings) = ctx.inv.postings(cell) {
                    if !postings.cols.is_empty() {
                        heap.push(Reverse((postings.cols[0], cell_idx as u32, 0)));
                    }
                }
            }

            // Pop groups of cursors sharing the smallest column id.
            while let Some(&Reverse((col, _, _))) = heap.peek() {
                let c = col as usize;
                let mut group: Vec<Cursor> = Vec::new();
                while let Some(&Reverse((col2, cell_idx, entry))) = heap.peek() {
                    if col2 != col {
                        break;
                    }
                    heap.pop();
                    group.push(Cursor { cell_idx, entry });
                }

                let skip = joinable[c] || pruned[c] || matched_stamp[c] == gen;
                let mut found = false;
                if !skip {
                    'cells: for cur in &group {
                        let cell = cells[cur.cell_idx as usize];
                        let postings = ctx.inv.postings(cell).expect("cursor from postings");
                        let vids = postings.vectors_of(cur.entry as usize);
                        for (vi, &vid) in vids.iter().enumerate() {
                            // Hide the gather latency of the next candidate
                            // row behind this one's distance test.
                            if let Some(&next) = vids.get(vi + 1) {
                                crate::kernel::prefetch(ctx.columns.store().get_raw(next as usize));
                            }
                            let xm = ctx.rv_mapped.get(vid as usize);
                            if ctx.flags.lemma1_vector_filter
                                && lemmas::lemma1_filter(qm, xm, ctx.tau)
                            {
                                stats.lemma1_filtered += 1;
                                continue;
                            }
                            let is_match = if ctx.flags.lemma2_vector_match
                                && lemmas::lemma2_match(qm, xm, ctx.tau)
                            {
                                stats.lemma2_matched += 1;
                                true
                            } else {
                                stats.distance_computations += 1;
                                let xv = ctx.columns.store().get_raw(vid as usize);
                                ctx.metric.dist_le(qv, xv, ctx.tau)
                            };
                            if is_match {
                                found = true;
                                matched_stamp[c] = gen;
                                match_counts[c] += 1;
                                if terminable && match_counts[c] as usize >= ctx.t_abs {
                                    joinable[c] = true;
                                    stats.early_joinable += 1;
                                }
                                break 'cells;
                            }
                        }
                    }
                    if !found && !joinable[c] && !pruned[c] {
                        mismatch_counts[c] += 1;
                        if terminable && n_q - (mismatch_counts[c] as usize) < ctx.t_abs {
                            pruned[c] = true;
                            stats.lemma7_pruned += 1;
                        }
                    }
                }

                // Advance every popped cursor to its next column entry.
                for cur in group {
                    let cell = cells[cur.cell_idx as usize];
                    let postings = ctx.inv.postings(cell).expect("cursor from postings");
                    let next = cur.entry as usize + 1;
                    if next < postings.cols.len() {
                        heap.push(Reverse((postings.cols[next], cur.cell_idx, next as u32)));
                    }
                }
            }
            ci += 1;
        }
    }

    let joinable_ids = (0..n_cols)
        .filter(|&c| joinable[c])
        .map(|c| ColumnId(c as u32))
        .collect();
    VerifyOutcome {
        joinable: joinable_ids,
        match_counts,
        mismatch_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::block;
    use crate::column::ColumnSet;
    use crate::config::LemmaFlags;
    use crate::grid::{GridParams, HierarchicalGrid};
    use crate::invindex::InvertedIndex;
    use crate::mapping::MappedVectors;
    use crate::metric::Euclidean;
    use crate::util::FastMap;
    use crate::vector::VectorStore;
    use crate::verify::verify;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn instance(seed: u64, n_cols: usize, col_len: usize, nq: usize) -> (VectorStore, ColumnSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 10;
        let unit = |rng: &mut StdRng| {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= n);
            v
        };
        let mut columns = ColumnSet::new(dim);
        for c in 0..n_cols {
            let vecs: Vec<Vec<f32>> = (0..col_len).map(|_| unit(&mut rng)).collect();
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns
                .add_column("t", &format!("c{c}"), c as u64, refs)
                .unwrap();
        }
        let mut query = VectorStore::new(dim);
        for _ in 0..nq {
            let v = unit(&mut rng);
            query.push(&v).unwrap();
        }
        (query, columns)
    }

    /// DaaT and the stamp-based verifier agree on the joinable set (the
    /// match-count lower bounds may differ under early termination, since
    /// the two strategies confirm columns in different orders — but the
    /// answer set is what the algorithm defines).
    #[test]
    fn daat_agrees_with_stamps() {
        for seed in 0..6u64 {
            let (query, columns) = instance(seed, 12, 20, 8);
            let metric = Euclidean;
            let pivots: Vec<Vec<f32>> = (0..3)
                .map(|i| columns.store().get_raw(i * 7).to_vec())
                .collect();
            let rv_mapped = MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap();
            let q_mapped = MappedVectors::build(&query, &pivots, &metric, None).unwrap();
            let params = GridParams::new(3, 4, 2.0 + 1e-4).unwrap();
            let hgrv = HierarchicalGrid::build_keys_only(params.clone(), &rv_mapped).unwrap();
            let hgq = HierarchicalGrid::build(params.clone(), &q_mapped).unwrap();
            let vec_col = columns.vector_to_column();
            let inv = InvertedIndex::build(&params, &rv_mapped, &vec_col).unwrap();

            for tau in [0.2f32, 0.5] {
                for t_abs in [1usize, 3, 9 /* > |Q|: top-k mode */] {
                    let mut stats = SearchStats::new();
                    let blocked = block(
                        &hgq,
                        &hgrv,
                        &q_mapped,
                        tau,
                        LemmaFlags::all(),
                        None,
                        FastMap::default(),
                        &mut stats,
                    );
                    let ctx = VerifyContext {
                        columns: &columns,
                        vec_col: &vec_col,
                        rv_mapped: &rv_mapped,
                        inv: &inv,
                        metric: &metric,
                        query: &query,
                        query_mapped: &q_mapped,
                        tau,
                        t_abs,
                        flags: LemmaFlags::all(),
                        deleted: None,
                    };
                    let mut s1 = SearchStats::new();
                    let mut s2 = SearchStats::new();
                    let a = verify(&ctx, &blocked, &mut s1);
                    let b = verify_daat(&ctx, &blocked, &mut s2);
                    assert_eq!(a.joinable, b.joinable, "seed={seed} tau={tau} T={t_abs}");
                    if t_abs > query.len() {
                        // No early termination: every count is exact and
                        // must agree bit-for-bit.
                        assert_eq!(a.match_counts, b.match_counts);
                    }
                }
            }
        }
    }

    /// Tombstoned columns are skipped by the DaaT path too.
    #[test]
    fn daat_respects_deletions() {
        let (query, columns) = instance(42, 6, 10, 5);
        let metric = Euclidean;
        let pivots: Vec<Vec<f32>> = (0..3)
            .map(|i| columns.store().get_raw(i).to_vec())
            .collect();
        let rv_mapped = MappedVectors::build(columns.store(), &pivots, &metric, None).unwrap();
        let q_mapped = MappedVectors::build(&query, &pivots, &metric, None).unwrap();
        let params = GridParams::new(3, 3, 2.0 + 1e-4).unwrap();
        let hgrv = HierarchicalGrid::build_keys_only(params.clone(), &rv_mapped).unwrap();
        let hgq = HierarchicalGrid::build(params.clone(), &q_mapped).unwrap();
        let vec_col = columns.vector_to_column();
        let inv = InvertedIndex::build(&params, &rv_mapped, &vec_col).unwrap();
        let mut stats = SearchStats::new();
        let blocked = block(
            &hgq,
            &hgrv,
            &q_mapped,
            1.0,
            LemmaFlags::all(),
            None,
            FastMap::default(),
            &mut stats,
        );
        let deleted = vec![true; columns.n_columns()];
        let ctx = VerifyContext {
            columns: &columns,
            vec_col: &vec_col,
            rv_mapped: &rv_mapped,
            inv: &inv,
            metric: &metric,
            query: &query,
            query_mapped: &q_mapped,
            tau: 1.0,
            t_abs: 1,
            flags: LemmaFlags::all(),
            deleted: Some(&deleted),
        };
        let out = verify_daat(&ctx, &blocked, &mut stats);
        assert!(
            out.joinable.is_empty(),
            "everything deleted, nothing joinable"
        );
    }
}
