//! Threshold and parameter configuration.
//!
//! Section V of the paper recommends ratio-form thresholds so users can
//! specify them independent of data type, embedding, and query size:
//! τ as a fraction of the maximum distance between unit vectors, and T as a
//! fraction of the query column size. Both absolute and ratio forms are
//! supported here.

use crate::error::{PexesoError, Result};
use crate::metric::Metric;

/// Distance threshold τ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tau {
    /// Absolute distance.
    Absolute(f32),
    /// Fraction (in `[0, 1]`) of the metric's maximum unit-vector distance;
    /// the paper's experiments use 2 % – 8 %.
    Ratio(f32),
}

impl Tau {
    /// Resolve to an absolute distance for the given metric/dimensionality.
    pub fn resolve<M: Metric>(self, metric: &M, dim: usize) -> Result<f32> {
        let v = match self {
            Tau::Absolute(v) => v,
            Tau::Ratio(r) => {
                if !(0.0..=1.0).contains(&r) {
                    return Err(PexesoError::InvalidParameter(format!(
                        "tau ratio {r} outside [0, 1]"
                    )));
                }
                r * metric.max_dist_unit(dim)
            }
        };
        if !(v.is_finite() && v >= 0.0) {
            return Err(PexesoError::InvalidParameter(format!(
                "tau {v} must be finite and >= 0"
            )));
        }
        Ok(v)
    }
}

/// Joinability threshold T.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinThreshold {
    /// Absolute number of matching query records.
    Count(usize),
    /// Fraction (in `(0, 1]`) of the query column size; the paper's
    /// experiments use 20 % – 80 %.
    Ratio(f64),
}

impl JoinThreshold {
    /// Resolve to an absolute count for a query of `query_len` records.
    /// Ratios round up (a strict fraction must be reached) and are clamped
    /// to at least 1 so "joinable" always requires at least one match.
    pub fn resolve(self, query_len: usize) -> Result<usize> {
        match self {
            JoinThreshold::Count(c) => Ok(c.max(1)),
            JoinThreshold::Ratio(r) => {
                if !(r > 0.0 && r <= 1.0) {
                    return Err(PexesoError::InvalidParameter(format!(
                        "joinability ratio {r} outside (0, 1]"
                    )));
                }
                Ok(((r * query_len as f64).ceil() as usize).max(1))
            }
        }
    }
}

/// Which lemma groups are active — the knobs behind the paper's Fig. 9
/// ablation. Everything on by default; disabling any group must never
/// change results, only speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LemmaFlags {
    /// Lemma 1: vector-level pivot filtering during verification.
    pub lemma1_vector_filter: bool,
    /// Lemma 2: vector-level pivot matching during verification.
    pub lemma2_vector_match: bool,
    /// Lemmas 3 & 4: vector-cell and cell-cell filtering during blocking.
    pub lemma34_cell_filter: bool,
    /// Lemmas 5 & 6: vector-cell and cell-cell matching during blocking.
    pub lemma56_cell_match: bool,
}

impl Default for LemmaFlags {
    fn default() -> Self {
        Self {
            lemma1_vector_filter: true,
            lemma2_vector_match: true,
            lemma34_cell_filter: true,
            lemma56_cell_match: true,
        }
    }
}

impl LemmaFlags {
    pub fn all() -> Self {
        Self::default()
    }

    pub fn without_lemma1() -> Self {
        Self {
            lemma1_vector_filter: false,
            ..Self::default()
        }
    }

    pub fn without_lemma2() -> Self {
        Self {
            lemma2_vector_match: false,
            ..Self::default()
        }
    }

    pub fn without_lemma34() -> Self {
        Self {
            lemma34_cell_filter: false,
            ..Self::default()
        }
    }

    pub fn without_lemma56() -> Self {
        Self {
            lemma56_cell_match: false,
            ..Self::default()
        }
    }
}

/// How much parallelism the index build and search pipeline may use.
///
/// Every parallel code path in this crate is *deterministic*: work is
/// sharded so each unit's result is independent of the number of threads,
/// and shards are merged in a fixed order. Consequently every policy
/// produces byte-identical outputs (enforced by the differential tests in
/// `tests/exactness.rs`), and the policy is purely a throughput knob.
///
/// [`ExecPolicy::Parallel`] is *adaptive*: the execution layer
/// ([`crate::exec`]) treats the thread count as a ceiling and falls back
/// to fewer threads — or a plain sequential run — whenever the machine has
/// fewer cores or the per-shard work would sit below the thread-spawn
/// break-even, so asking for more threads can never make a query slower.
/// [`ExecPolicy::Fixed`] bypasses that clamp and shards exactly as asked;
/// it exists so differential tests and calibration runs can force the
/// sharded code paths to execute even on machines where the adaptive
/// policy would (correctly) stay sequential.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPolicy {
    /// Single-threaded; the default, and what the paper's experiments time.
    #[default]
    Sequential,
    /// Shard work across *up to* `threads` OS threads
    /// (`std::thread::scope`), adaptively clamped to the machine's cores
    /// and the per-shard spawn break-even. `threads == 0` resolves to the
    /// machine's available parallelism.
    Parallel { threads: usize },
    /// Shard work across *exactly* `threads` OS threads, bypassing the
    /// adaptive clamp. For differential tests and calibration; prefer
    /// [`ExecPolicy::Parallel`] in production.
    Fixed { threads: usize },
}

impl ExecPolicy {
    /// Parallel with as many threads as the machine offers.
    pub fn auto() -> Self {
        ExecPolicy::Parallel { threads: 0 }
    }

    /// Parse the CLI/protocol spelling of a policy: `seq`, `par`
    /// (machine-sized), `par:N` for an explicit adaptive ceiling, or
    /// `fixed:N` for an exact unclamped thread count.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "seq" | "sequential" => Ok(ExecPolicy::Sequential),
            "par" | "parallel" => Ok(ExecPolicy::auto()),
            _ => {
                if let Some(n) = s.strip_prefix("par:") {
                    let threads: usize = n.parse().map_err(|_| {
                        PexesoError::InvalidParameter(format!("bad thread count in policy '{s}'"))
                    })?;
                    if threads == 0 {
                        return Err(PexesoError::InvalidParameter(
                            "par:0 is ambiguous; use 'par' for machine-sized".into(),
                        ));
                    }
                    Ok(ExecPolicy::Parallel { threads })
                } else if let Some(n) = s.strip_prefix("fixed:") {
                    let threads: usize = n.parse().map_err(|_| {
                        PexesoError::InvalidParameter(format!("bad thread count in policy '{s}'"))
                    })?;
                    if threads == 0 {
                        return Err(PexesoError::InvalidParameter(
                            "fixed:0 makes no sense; use 'seq' for single-threaded".into(),
                        ));
                    }
                    Ok(ExecPolicy::Fixed { threads })
                } else {
                    Err(PexesoError::InvalidParameter(format!(
                        "unknown policy '{s}' (expected seq, par, par:N, or fixed:N)"
                    )))
                }
            }
        }
    }

    /// The number of worker threads this policy *requests* (≥ 1), before
    /// the adaptive clamp in [`crate::exec`] is applied.
    pub fn effective_threads(self) -> usize {
        match self {
            ExecPolicy::Sequential => 1,
            ExecPolicy::Parallel { threads: 0 } => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ExecPolicy::Parallel { threads } => threads,
            ExecPolicy::Fixed { threads } => threads.max(1),
        }
    }
}

/// How pivots are chosen (Section III-D; Fig. 7a compares PCA vs random).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotSelection {
    /// PCA-based outlier selection (the paper's choice, Mao et al. style).
    Pca,
    /// Uniform random data points (the Fig. 7a baseline).
    Random,
    /// Farthest-first traversal (classic maximally-separated heuristic).
    FarthestFirst,
}

/// Index construction options.
#[derive(Debug, Clone)]
pub struct IndexOptions {
    /// |P|: number of pivots (paper tunes 1–9, defaults 3–5).
    pub num_pivots: usize,
    /// m: grid levels. `None` lets the cost model choose (Section III-E).
    pub levels: Option<usize>,
    pub pivot_selection: PivotSelection,
    /// Seed for any randomised step (sampling, random pivots).
    pub seed: u64,
    /// Parallelism of the offline build (pivot mapping, grid + inverted
    /// index construction). Results are identical either way.
    pub exec: ExecPolicy,
}

impl Default for IndexOptions {
    fn default() -> Self {
        Self {
            num_pivots: 5,
            levels: Some(4),
            pivot_selection: PivotSelection::Pca,
            seed: 42,
            exec: ExecPolicy::Sequential,
        }
    }
}

/// Hard cap on |P| imposed by the packed cell-key representation.
pub const MAX_PIVOTS: usize = 16;
/// Hard cap on m imposed by the packed cell-key representation.
pub const MAX_LEVELS: usize = 8;

impl IndexOptions {
    /// Validate against the representation limits.
    pub fn validate(&self) -> Result<()> {
        if self.num_pivots == 0 || self.num_pivots > MAX_PIVOTS {
            return Err(PexesoError::InvalidParameter(format!(
                "num_pivots {} outside 1..={MAX_PIVOTS}",
                self.num_pivots
            )));
        }
        if let Some(m) = self.levels {
            if m == 0 || m > MAX_LEVELS {
                return Err(PexesoError::InvalidParameter(format!(
                    "levels {m} outside 1..={MAX_LEVELS}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;

    #[test]
    fn tau_ratio_resolves_against_max_distance() {
        let t = Tau::Ratio(0.06).resolve(&Euclidean, 300).unwrap();
        assert!((t - 0.12).abs() < 1e-6);
        assert_eq!(Tau::Absolute(0.5).resolve(&Euclidean, 300).unwrap(), 0.5);
    }

    #[test]
    fn tau_rejects_bad_values() {
        assert!(Tau::Ratio(1.5).resolve(&Euclidean, 10).is_err());
        assert!(Tau::Absolute(-1.0).resolve(&Euclidean, 10).is_err());
        assert!(Tau::Absolute(f32::NAN).resolve(&Euclidean, 10).is_err());
    }

    #[test]
    fn join_threshold_resolution() {
        assert_eq!(JoinThreshold::Ratio(0.6).resolve(10).unwrap(), 6);
        assert_eq!(JoinThreshold::Ratio(0.55).resolve(10).unwrap(), 6); // ceil
        assert_eq!(JoinThreshold::Count(3).resolve(10).unwrap(), 3);
        assert_eq!(JoinThreshold::Count(0).resolve(10).unwrap(), 1); // clamped
        assert_eq!(JoinThreshold::Ratio(0.01).resolve(10).unwrap(), 1);
    }

    #[test]
    fn join_threshold_rejects_bad_ratio() {
        assert!(JoinThreshold::Ratio(0.0).resolve(10).is_err());
        assert!(JoinThreshold::Ratio(1.1).resolve(10).is_err());
    }

    #[test]
    fn lemma_flag_presets() {
        assert!(LemmaFlags::all().lemma1_vector_filter);
        assert!(!LemmaFlags::without_lemma1().lemma1_vector_filter);
        assert!(!LemmaFlags::without_lemma34().lemma34_cell_filter);
        assert!(LemmaFlags::without_lemma34().lemma56_cell_match);
    }

    #[test]
    fn exec_policy_resolves_threads() {
        assert_eq!(ExecPolicy::Sequential.effective_threads(), 1);
        assert_eq!(ExecPolicy::Parallel { threads: 3 }.effective_threads(), 3);
        assert_eq!(ExecPolicy::Fixed { threads: 5 }.effective_threads(), 5);
        assert_eq!(ExecPolicy::Fixed { threads: 0 }.effective_threads(), 1);
        assert!(ExecPolicy::auto().effective_threads() >= 1);
        assert_eq!(ExecPolicy::default(), ExecPolicy::Sequential);
    }

    #[test]
    fn exec_policy_parses_cli_spellings() {
        assert_eq!(ExecPolicy::parse("seq").unwrap(), ExecPolicy::Sequential);
        assert_eq!(
            ExecPolicy::parse("sequential").unwrap(),
            ExecPolicy::Sequential
        );
        assert_eq!(ExecPolicy::parse("par").unwrap(), ExecPolicy::auto());
        assert_eq!(
            ExecPolicy::parse("par:8").unwrap(),
            ExecPolicy::Parallel { threads: 8 }
        );
        assert_eq!(
            ExecPolicy::parse("fixed:4").unwrap(),
            ExecPolicy::Fixed { threads: 4 }
        );
        assert!(ExecPolicy::parse("par:0").is_err());
        assert!(ExecPolicy::parse("par:x").is_err());
        assert!(ExecPolicy::parse("fixed:0").is_err());
        assert!(ExecPolicy::parse("fixed:x").is_err());
        assert!(ExecPolicy::parse("turbo").is_err());
    }

    #[test]
    fn index_options_validation() {
        let mut o = IndexOptions::default();
        assert!(o.validate().is_ok());
        o.num_pivots = 0;
        assert!(o.validate().is_err());
        o.num_pivots = MAX_PIVOTS + 1;
        assert!(o.validate().is_err());
        o.num_pivots = 3;
        o.levels = Some(MAX_LEVELS + 1);
        assert!(o.validate().is_err());
        o.levels = None;
        assert!(o.validate().is_ok());
    }
}
