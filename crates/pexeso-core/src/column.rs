//! Columns over the vector arena.
//!
//! The repository `R` is a [`ColumnSet`]: a [`VectorStore`] plus column
//! metadata. Each column owns a **contiguous** range of vector ids, enforced
//! by the builder API, which lets the inverted index address vectors with
//! plain `u32` offsets and makes `vector → column` resolution a flat lookup.

use crate::error::{PexesoError, Result};
use crate::vector::{VectorId, VectorStore};

/// Handle to a column inside a [`ColumnSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u32);

/// Metadata of one repository column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Table the column came from (diagnostics / result presentation).
    pub table_name: String,
    /// Column header.
    pub column_name: String,
    /// Caller-chosen stable identifier, preserved through partitioning and
    /// persistence (e.g. index into the original lake).
    pub external_id: u64,
    /// First vector id of the column's contiguous range.
    pub start: u32,
    /// Number of vectors.
    pub len: u32,
}

impl ColumnMeta {
    /// Vector ids of this column.
    pub fn vector_range(&self) -> std::ops::Range<u32> {
        self.start..self.start + self.len
    }
}

/// The repository of target columns, backing store included.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSet {
    store: VectorStore,
    columns: Vec<ColumnMeta>,
}

impl ColumnSet {
    /// Create an empty repository of the given dimensionality.
    pub fn new(dim: usize) -> Self {
        Self {
            store: VectorStore::new(dim),
            columns: Vec::new(),
        }
    }

    /// Append a column given its vectors. Returns its [`ColumnId`].
    pub fn add_column<'a>(
        &mut self,
        table_name: &str,
        column_name: &str,
        external_id: u64,
        vectors: impl IntoIterator<Item = &'a [f32]>,
    ) -> Result<ColumnId> {
        let start = self.store.len() as u32;
        let mut len = 0u32;
        for v in vectors {
            self.store.push(v)?;
            len += 1;
        }
        if len == 0 {
            return Err(PexesoError::EmptyInput("column with zero vectors"));
        }
        let id = ColumnId(self.columns.len() as u32);
        self.columns.push(ColumnMeta {
            table_name: table_name.to_string(),
            column_name: column_name.to_string(),
            external_id,
            start,
            len,
        });
        Ok(id)
    }

    pub fn dim(&self) -> usize {
        self.store.dim()
    }

    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// Total number of vectors across all columns (|RV| in the paper).
    pub fn n_vectors(&self) -> usize {
        self.store.len()
    }

    pub fn column(&self, id: ColumnId) -> &ColumnMeta {
        &self.columns[id.0 as usize]
    }

    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    pub fn store(&self) -> &VectorStore {
        &self.store
    }

    /// Mutable access to the store, e.g. to normalise after bulk loading.
    pub fn store_mut(&mut self) -> &mut VectorStore {
        &mut self.store
    }

    /// Vector of a given id.
    #[inline]
    pub fn vector(&self, id: VectorId) -> &[f32] {
        self.store.get(id)
    }

    /// Build the flat `vector index → column index` map used by
    /// verification. O(|RV|) time and 4 bytes per vector.
    pub fn vector_to_column(&self) -> Vec<u32> {
        let mut map = vec![0u32; self.n_vectors()];
        for (ci, col) in self.columns.iter().enumerate() {
            for v in col.vector_range() {
                map[v as usize] = ci as u32;
            }
        }
        map
    }

    /// Decompose into parts (persistence).
    pub fn into_parts(self) -> (VectorStore, Vec<ColumnMeta>) {
        (self.store, self.columns)
    }

    /// Reassemble from parts, validating range contiguity and bounds.
    pub fn from_parts(store: VectorStore, columns: Vec<ColumnMeta>) -> Result<Self> {
        let mut expected_start = 0u32;
        for c in &columns {
            if c.start != expected_start || c.len == 0 {
                return Err(PexesoError::Corrupt(format!(
                    "column '{}' has range {}..{} but expected start {}",
                    c.column_name,
                    c.start,
                    c.start + c.len,
                    expected_start
                )));
            }
            expected_start = c.start + c.len;
        }
        if expected_start as usize != store.len() {
            return Err(PexesoError::Corrupt(format!(
                "columns cover {} vectors but store holds {}",
                expected_start,
                store.len()
            )));
        }
        Ok(Self { store, columns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_with(dim: usize, cols: &[&[&[f32]]]) -> ColumnSet {
        let mut cs = ColumnSet::new(dim);
        for (i, col) in cols.iter().enumerate() {
            cs.add_column("t", &format!("c{i}"), i as u64, col.iter().copied())
                .unwrap();
        }
        cs
    }

    #[test]
    fn columns_get_contiguous_ranges() {
        let cs = set_with(2, &[&[&[0.0, 0.0], &[1.0, 1.0]], &[&[2.0, 2.0]]]);
        assert_eq!(cs.n_columns(), 2);
        assert_eq!(cs.column(ColumnId(0)).vector_range(), 0..2);
        assert_eq!(cs.column(ColumnId(1)).vector_range(), 2..3);
        assert_eq!(cs.n_vectors(), 3);
    }

    #[test]
    fn empty_column_rejected() {
        let mut cs = ColumnSet::new(2);
        let empty: Vec<&[f32]> = vec![];
        assert!(cs.add_column("t", "c", 0, empty).is_err());
    }

    #[test]
    fn vector_to_column_map() {
        let cs = set_with(1, &[&[&[0.0], &[1.0]], &[&[2.0], &[3.0], &[4.0]]]);
        assert_eq!(cs.vector_to_column(), vec![0, 0, 1, 1, 1]);
    }

    #[test]
    fn parts_roundtrip() {
        let cs = set_with(2, &[&[&[0.0, 1.0]], &[&[2.0, 3.0]]]);
        let (store, cols) = cs.clone().into_parts();
        let back = ColumnSet::from_parts(store, cols).unwrap();
        assert_eq!(back, cs);
    }

    #[test]
    fn from_parts_rejects_gaps() {
        let cs = set_with(1, &[&[&[0.0]], &[&[1.0]]]);
        let (store, mut cols) = cs.into_parts();
        cols[1].start = 5;
        assert!(ColumnSet::from_parts(store, cols).is_err());
    }

    #[test]
    fn from_parts_rejects_uncovered_store() {
        let cs = set_with(1, &[&[&[0.0]], &[&[1.0]]]);
        let (store, mut cols) = cs.into_parts();
        cols.pop();
        assert!(ColumnSet::from_parts(store, cols).is_err());
    }

    #[test]
    fn dim_mismatch_propagates() {
        let mut cs = ColumnSet::new(3);
        let vecs: Vec<&[f32]> = vec![&[1.0, 2.0]];
        assert!(matches!(
            cs.add_column("t", "c", 0, vecs),
            Err(PexesoError::DimensionMismatch { .. })
        ));
    }
}
