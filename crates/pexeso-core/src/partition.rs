//! Column partitioning for out-of-core lakes (Section IV).
//!
//! Columns with similar vector distributions should share a partition so
//! that each partition's pivots filter well. Every column is summarised by
//! a probability histogram of its vectors' projections onto a fixed
//! (seeded) random direction; partitions are then found by k-means-style
//! clustering under the paper's symmetrised-KL "JSD". Random assignment
//! and average-vector k-means are included as the Fig. 7b baselines.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::column::ColumnSet;
use crate::error::{PexesoError, Result};
use crate::histogram::{jsd_paper, mean_distribution, Histogram};
use crate::metric::{Euclidean, Metric};

/// Clustering strategy for partitioning (Fig. 7b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMethod {
    /// k-means over column histograms with the paper's JSD (the proposal).
    JsdKmeans,
    /// k-means over per-column mean vectors with Euclidean distance.
    AvgKmeans,
    /// Uniform random assignment.
    Random,
}

/// Parameters of the partitioner.
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    pub k: usize,
    pub method: PartitionMethod,
    /// k-means iterations (the paper's user-defined `t`).
    pub iterations: usize,
    /// Histogram bins per column summary.
    pub bins: usize,
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            k: 4,
            method: PartitionMethod::JsdKmeans,
            iterations: 10,
            bins: 32,
            seed: 42,
        }
    }
}

/// Result: a partition id per column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    pub assignments: Vec<usize>,
    pub k: usize,
}

impl Partitioning {
    /// Column indices per partition.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.k];
        for (col, &p) in self.assignments.iter().enumerate() {
            groups[p].push(col);
        }
        groups
    }
}

/// Deterministic unit direction used for the 1-D projection summaries.
fn projection_direction(dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1ec7104);
    let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if n > 0.0 {
        v.iter_mut().for_each(|x| *x /= n);
    }
    v
}

/// Histogram summary of each column: projections onto the fixed direction,
/// over [-1, 1] (unit vectors ⇒ |projection| ≤ 1), smoothed for KL.
fn column_histograms(columns: &ColumnSet, bins: usize, seed: u64) -> Vec<Vec<f64>> {
    let dir = projection_direction(columns.dim(), seed);
    columns
        .columns()
        .iter()
        .map(|meta| {
            let projections = meta.vector_range().map(|v| {
                let x = columns.store().get_raw(v as usize);
                x.iter().zip(dir.iter()).map(|(a, b)| a * b).sum::<f32>()
            });
            Histogram::from_values(projections, -1.0, 1.0, bins).smoothed(1e-6)
        })
        .collect()
}

/// Per-column mean vectors (the AvgKmeans representation).
fn column_means(columns: &ColumnSet) -> Vec<Vec<f32>> {
    columns
        .columns()
        .iter()
        .map(|meta| {
            let mut mean = vec![0.0f32; columns.dim()];
            for v in meta.vector_range() {
                for (m, x) in mean.iter_mut().zip(columns.store().get_raw(v as usize)) {
                    *m += x;
                }
            }
            let inv = 1.0 / meta.len as f32;
            mean.iter_mut().for_each(|m| *m *= inv);
            mean
        })
        .collect()
}

/// Generic k-means over items with caller-supplied distance and centroid
/// update. Empty clusters are re-seeded from the farthest item.
fn kmeans<T: Clone>(
    items: &[T],
    k: usize,
    iterations: usize,
    seed: u64,
    dist: impl Fn(&T, &T) -> f64,
    centroid: impl Fn(&[&T]) -> T,
) -> Vec<usize> {
    let n = items.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut center_idx: Vec<usize> = (0..n).collect();
    center_idx.shuffle(&mut rng);
    let mut centers: Vec<T> = center_idx
        .iter()
        .take(k)
        .map(|&i| items[i].clone())
        .collect();
    let mut assignments = vec![0usize; n];

    for _ in 0..iterations {
        // Assign.
        for (i, item) in items.iter().enumerate() {
            let mut best = (0usize, f64::INFINITY);
            for (c, center) in centers.iter().enumerate() {
                let d = dist(item, center);
                if d < best.1 {
                    best = (c, d);
                }
            }
            assignments[i] = best.0;
        }
        // Update.
        for c in 0..k {
            let members: Vec<&T> = items
                .iter()
                .zip(&assignments)
                .filter(|(_, &a)| a == c)
                .map(|(t, _)| t)
                .collect();
            if members.is_empty() {
                // Re-seed an empty cluster with the item farthest from its
                // current center.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        dist(&items[a], &centers[assignments[a]])
                            .total_cmp(&dist(&items[b], &centers[assignments[b]]))
                    })
                    .expect("non-empty items");
                centers[c] = items[far].clone();
            } else {
                centers[c] = centroid(&members);
            }
        }
    }
    // Final assignment pass against the last centers.
    for (i, item) in items.iter().enumerate() {
        let mut best = (0usize, f64::INFINITY);
        for (c, center) in centers.iter().enumerate() {
            let d = dist(item, center);
            if d < best.1 {
                best = (c, d);
            }
        }
        assignments[i] = best.0;
    }
    assignments
}

/// Partition the columns of a repository.
pub fn partition_columns(columns: &ColumnSet, config: &PartitionConfig) -> Result<Partitioning> {
    let n = columns.n_columns();
    if n == 0 {
        return Err(PexesoError::EmptyInput("partitioning an empty repository"));
    }
    if config.k == 0 {
        return Err(PexesoError::InvalidParameter("k must be positive".into()));
    }
    let k = config.k.min(n);
    let assignments = match config.method {
        PartitionMethod::Random => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            (0..n).map(|_| rng.gen_range(0..k)).collect()
        }
        PartitionMethod::JsdKmeans => {
            let hists = column_histograms(columns, config.bins, config.seed);
            kmeans(
                &hists,
                k,
                config.iterations,
                config.seed,
                |a, b| jsd_paper(a, b),
                |members| {
                    let slices: Vec<&[f64]> = members.iter().map(|m| m.as_slice()).collect();
                    mean_distribution(&slices)
                },
            )
        }
        PartitionMethod::AvgKmeans => {
            let means = column_means(columns);
            kmeans(
                &means,
                k,
                config.iterations,
                config.seed,
                |a, b| Euclidean.dist(a, b) as f64,
                |members| {
                    let dim = members[0].len();
                    let mut out = vec![0.0f32; dim];
                    for m in members {
                        for (o, x) in out.iter_mut().zip(m.iter()) {
                            *o += x;
                        }
                    }
                    let inv = 1.0 / members.len() as f32;
                    out.iter_mut().for_each(|x| *x *= inv);
                    out
                },
            )
        }
    };
    Ok(Partitioning { assignments, k })
}

/// Materialise per-partition repositories (copying vectors). Empty
/// partitions are dropped; the returned vector pairs each sub-repository
/// with the original column indices it contains.
pub fn split_column_set(
    columns: &ColumnSet,
    partitioning: &Partitioning,
) -> Vec<(ColumnSet, Vec<usize>)> {
    let groups = partitioning.groups();
    let mut out = Vec::new();
    for group in groups {
        if group.is_empty() {
            continue;
        }
        let mut sub = ColumnSet::new(columns.dim());
        for &ci in &group {
            let meta = columns.column(crate::column::ColumnId(ci as u32));
            let vectors = meta
                .vector_range()
                .map(|v| columns.store().get_raw(v as usize));
            sub.add_column(
                &meta.table_name,
                &meta.column_name,
                meta.external_id,
                vectors,
            )
            .expect("copying a valid column cannot fail");
        }
        out.push((sub, group));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Columns drawn from two clearly different distributions: half the
    /// columns concentrate near +e0, half near −e0.
    fn bimodal_columns(seed: u64, per_side: usize, col_len: usize) -> ColumnSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 8;
        let mut columns = ColumnSet::new(dim);
        for c in 0..per_side * 2 {
            let sign = if c < per_side { 1.0f32 } else { -1.0 };
            let mut vecs = Vec::new();
            for _ in 0..col_len {
                let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-0.2f32..0.2)).collect();
                v[0] = sign * rng.gen_range(0.8f32..1.0);
                let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
                v.iter_mut().for_each(|x| *x /= n);
                vecs.push(v);
            }
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns
                .add_column("t", &format!("c{c}"), c as u64, refs)
                .unwrap();
        }
        columns
    }

    #[test]
    fn jsd_kmeans_separates_bimodal_columns() {
        let columns = bimodal_columns(1, 8, 30);
        let p = partition_columns(
            &columns,
            &PartitionConfig {
                k: 2,
                method: PartitionMethod::JsdKmeans,
                ..Default::default()
            },
        )
        .unwrap();
        // All +side columns in one partition, all -side in the other.
        let first = p.assignments[0];
        assert!(p.assignments[..8].iter().all(|&a| a == first));
        assert!(p.assignments[8..].iter().all(|&a| a != first));
    }

    #[test]
    fn avg_kmeans_also_separates_bimodal() {
        let columns = bimodal_columns(2, 6, 25);
        let p = partition_columns(
            &columns,
            &PartitionConfig {
                k: 2,
                method: PartitionMethod::AvgKmeans,
                ..Default::default()
            },
        )
        .unwrap();
        let first = p.assignments[0];
        assert!(p.assignments[..6].iter().all(|&a| a == first));
        assert!(p.assignments[6..].iter().all(|&a| a != first));
    }

    #[test]
    fn random_uses_all_partitions_roughly() {
        let columns = bimodal_columns(3, 20, 5);
        let p = partition_columns(
            &columns,
            &PartitionConfig {
                k: 4,
                method: PartitionMethod::Random,
                ..Default::default()
            },
        )
        .unwrap();
        let groups = p.groups();
        assert_eq!(groups.len(), 4);
        assert!(groups.iter().filter(|g| !g.is_empty()).count() >= 3);
    }

    #[test]
    fn k_clamped_to_columns() {
        let columns = bimodal_columns(4, 2, 5);
        let p = partition_columns(
            &columns,
            &PartitionConfig {
                k: 100,
                method: PartitionMethod::JsdKmeans,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(p.k <= columns.n_columns());
        assert!(p.assignments.iter().all(|&a| a < p.k));
    }

    #[test]
    fn split_preserves_columns_and_vectors() {
        let columns = bimodal_columns(5, 4, 10);
        let p = partition_columns(
            &columns,
            &PartitionConfig {
                k: 2,
                method: PartitionMethod::JsdKmeans,
                ..Default::default()
            },
        )
        .unwrap();
        let parts = split_column_set(&columns, &p);
        let total_cols: usize = parts.iter().map(|(cs, _)| cs.n_columns()).sum();
        let total_vecs: usize = parts.iter().map(|(cs, _)| cs.n_vectors()).sum();
        assert_eq!(total_cols, columns.n_columns());
        assert_eq!(total_vecs, columns.n_vectors());
        // Column contents survive the copy.
        for (sub, orig_indices) in &parts {
            for (sub_ci, &orig_ci) in orig_indices.iter().enumerate() {
                let sub_meta = &sub.columns()[sub_ci];
                let orig_meta = &columns.columns()[orig_ci];
                assert_eq!(sub_meta.external_id, orig_meta.external_id);
                assert_eq!(sub_meta.len, orig_meta.len);
                let sv = sub.store().get_raw(sub_meta.start as usize);
                let ov = columns.store().get_raw(orig_meta.start as usize);
                assert_eq!(sv, ov);
            }
        }
    }

    #[test]
    fn deterministic_partitioning() {
        let columns = bimodal_columns(6, 5, 10);
        let cfg = PartitionConfig {
            k: 3,
            ..Default::default()
        };
        let a = partition_columns(&columns, &cfg).unwrap();
        let b = partition_columns(&columns, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_k_rejected() {
        let columns = bimodal_columns(7, 2, 5);
        assert!(partition_columns(
            &columns,
            &PartitionConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
    }
}
