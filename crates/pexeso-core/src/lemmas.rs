//! Lemmas 1–6 as pure predicates (Section III-A/B).
//!
//! All predicates operate in the pivot space. Filtering predicates may only
//! return `true` when the pair is *provably* non-matching; matching
//! predicates may only return `true` when the pair is *provably* matching.
//! A small epsilon guards against f32 rounding at cell boundaries: filters
//! require clearance beyond `EPS`, matches require margin beyond `EPS`, so
//! borderline pairs fall through to exact verification — which keeps the
//! overall algorithm exact.

use crate::grid::CellBounds;

/// Safety margin for boundary comparisons in pivot space.
pub const EPS: f32 = 1e-5;

/// Lemma 1 (pivot filtering): `q` cannot match `x` if some pivot dimension
/// has `|d(q,p) − d(x,p)| > τ`. Returns `true` when `x` is safely pruned.
#[inline]
pub fn lemma1_filter(q_mapped: &[f32], x_mapped: &[f32], tau: f32) -> bool {
    debug_assert_eq!(q_mapped.len(), x_mapped.len());
    q_mapped
        .iter()
        .zip(x_mapped.iter())
        .any(|(q, x)| (q - x).abs() > tau + EPS)
}

/// Lemma 2 (pivot matching): `q` surely matches `x` if some pivot `p` has
/// `d(q,p) + d(x,p) ≤ τ`. Returns `true` when the match is certain.
#[inline]
pub fn lemma2_match(q_mapped: &[f32], x_mapped: &[f32], tau: f32) -> bool {
    debug_assert_eq!(q_mapped.len(), x_mapped.len());
    q_mapped
        .iter()
        .zip(x_mapped.iter())
        .any(|(q, x)| q + x <= tau - EPS)
}

/// Lemma 3 (vector-cell filtering): no vector in the target cell `c` can
/// match `q` if `c` is disjoint from the square query region
/// `SQR(q', τ) = ∏ᵢ [q'ᵢ − τ, q'ᵢ + τ]`.
#[inline]
pub fn lemma3_vector_cell_filter(q_mapped: &[f32], c: &CellBounds, tau: f32) -> bool {
    debug_assert_eq!(q_mapped.len(), c.n);
    for (i, &q) in q_mapped.iter().enumerate().take(c.n) {
        if c.lower[i] > q + tau + EPS || c.upper[i] < q - tau - EPS {
            return true;
        }
    }
    false
}

/// Lemma 4 (cell-cell filtering): no pair (query vector in `cq`, target
/// vector in `c`) can match if `c` is disjoint from
/// `SQR(cq.center, τ + cq.len/2)` — per dimension, `[cq.lowᵢ − τ, cq.upᵢ + τ]`.
#[inline]
pub fn lemma4_cell_cell_filter(cq: &CellBounds, c: &CellBounds, tau: f32) -> bool {
    debug_assert_eq!(cq.n, c.n);
    for i in 0..c.n {
        if c.lower[i] > cq.upper[i] + tau + EPS || c.upper[i] < cq.lower[i] - tau - EPS {
            return true;
        }
    }
    false
}

/// Lemma 5 (vector-cell matching): every vector in target cell `c` matches
/// `q` if some pivot dimension `i` has `c.upperᵢ ≤ τ − d(q,pᵢ)` (the cell
/// lies inside the rectangle query region `RQR(q', pᵢ, τ)`).
#[inline]
pub fn lemma5_vector_cell_match(q_mapped: &[f32], c: &CellBounds, tau: f32) -> bool {
    debug_assert_eq!(q_mapped.len(), c.n);
    for (i, &q) in q_mapped.iter().enumerate().take(c.n) {
        let edge = tau - q;
        if edge > 0.0 && c.upper[i] <= edge - EPS {
            return true;
        }
    }
    false
}

/// Lemma 6 (cell-cell matching): every (query vector in `cq`, target vector
/// in `c`) pair matches if some pivot dimension `i` has
/// `cq.upperᵢ + c.upperᵢ ≤ τ` (the cell lies inside the *minimum* RQR of
/// all query vectors in `cq`, whose edge is `τ − max_q d(q,pᵢ) ≥ τ − cq.upperᵢ`).
#[inline]
pub fn lemma6_cell_cell_match(cq: &CellBounds, c: &CellBounds, tau: f32) -> bool {
    debug_assert_eq!(cq.n, c.n);
    for i in 0..c.n {
        if cq.upper[i] + c.upper[i] <= tau - EPS {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{CellKey, GridParams};
    use crate::mapping::MappedVectors;
    use crate::metric::{Euclidean, Metric};
    use crate::vector::VectorStore;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bounds(lower: &[f32], upper: &[f32]) -> CellBounds {
        let mut b = CellBounds {
            lower: [0.0; 16],
            upper: [0.0; 16],
            n: lower.len(),
        };
        b.lower[..lower.len()].copy_from_slice(lower);
        b.upper[..upper.len()].copy_from_slice(upper);
        b
    }

    #[test]
    fn lemma1_prunes_only_beyond_tau() {
        assert!(lemma1_filter(&[1.0, 1.0], &[2.5, 1.0], 1.0));
        assert!(!lemma1_filter(&[1.0, 1.0], &[1.9, 1.0], 1.0));
        // Boundary: |q-x| == tau must NOT prune (d <= tau counts as match).
        assert!(!lemma1_filter(&[1.0], &[2.0], 1.0));
    }

    #[test]
    fn lemma2_matches_only_within_tau() {
        assert!(lemma2_match(&[0.2, 5.0], &[0.2, 5.0], 0.5));
        assert!(!lemma2_match(&[0.3, 5.0], &[0.3, 5.0], 0.5));
    }

    #[test]
    fn lemma3_disjoint_cell_pruned() {
        let c = bounds(&[3.0, 3.0], &[4.0, 4.0]);
        assert!(lemma3_vector_cell_filter(&[1.0, 1.0], &c, 1.0));
        assert!(!lemma3_vector_cell_filter(&[2.5, 2.5], &c, 1.0));
    }

    #[test]
    fn lemma4_cell_pair_pruned() {
        let cq = bounds(&[0.0, 0.0], &[1.0, 1.0]);
        let far = bounds(&[3.0, 3.0], &[4.0, 4.0]);
        let near = bounds(&[1.5, 1.5], &[2.0, 2.0]);
        assert!(lemma4_cell_cell_filter(&cq, &far, 1.0));
        assert!(!lemma4_cell_cell_filter(&cq, &near, 1.0));
    }

    #[test]
    fn lemma5_cell_inside_rqr_matches() {
        let c = bounds(&[0.0, 0.0], &[0.2, 9.0]);
        // dim 0: tau - d(q,p0) = 0.5 - 0.2 = 0.3 >= upper 0.2 -> match.
        assert!(lemma5_vector_cell_match(&[0.2, 3.0], &c, 0.5));
        // tau - d = 0.1 < upper -> no certain match.
        assert!(!lemma5_vector_cell_match(&[0.4, 3.0], &c, 0.5));
        // Negative edge length: no RQR for that pivot.
        assert!(!lemma5_vector_cell_match(&[0.9, 3.0], &c, 0.5));
    }

    #[test]
    fn lemma6_cell_cell_match_needs_small_sums() {
        let cq = bounds(&[0.0, 0.0], &[0.1, 5.0]);
        let c = bounds(&[0.0, 0.0], &[0.2, 7.0]);
        assert!(lemma6_cell_cell_match(&cq, &c, 0.5));
        assert!(!lemma6_cell_cell_match(&cq, &c, 0.25));
    }

    /// Soundness fuzz: on random unit vectors, Lemma 1 must never prune a
    /// true match, Lemma 2 must never accept a non-match, and the cell
    /// predicates must agree with brute force.
    #[test]
    fn soundness_on_random_data() {
        let mut rng = StdRng::seed_from_u64(99);
        let dim = 16;
        let n = 150;
        let mut store = VectorStore::new(dim);
        for _ in 0..n {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= norm);
            store.push(&v).unwrap();
        }
        let pivots: Vec<Vec<f32>> = (0..3).map(|i| store.get_raw(i * 7).to_vec()).collect();
        let mapped = MappedVectors::build(&store, &pivots, &Euclidean, None).unwrap();
        let params = GridParams::new(3, 3, 2.0 + 1e-4).unwrap();
        let tau = 0.4f32;

        for qi in 0..20 {
            let q = store.get_raw(qi);
            let qm = mapped.get(qi);
            for xi in 0..n {
                let x = store.get_raw(xi);
                let xm = mapped.get(xi);
                let d = Euclidean.dist(q, x);
                if d <= tau {
                    assert!(!lemma1_filter(qm, xm, tau), "lemma1 pruned a match (d={d})");
                }
                if lemma2_match(qm, xm, tau) {
                    assert!(d <= tau + 1e-4, "lemma2 accepted a non-match (d={d})");
                }
                // Cell-level: the leaf cell containing x.
                let key: CellKey = params.leaf_key(xm);
                let cb = params.bounds(key, 3);
                if d <= tau {
                    assert!(
                        !lemma3_vector_cell_filter(qm, &cb, tau),
                        "lemma3 pruned the cell of a match"
                    );
                }
                if lemma5_vector_cell_match(qm, &cb, tau) {
                    assert!(d <= tau + 1e-4, "lemma5 matched the cell of a non-match");
                }
                // Cell-cell versions with the query's own leaf cell.
                let qkey = params.leaf_key(qm);
                let qb = params.bounds(qkey, 3);
                if d <= tau {
                    assert!(
                        !lemma4_cell_cell_filter(&qb, &cb, tau),
                        "lemma4 pruned a match"
                    );
                }
                if lemma6_cell_cell_match(&qb, &cb, tau) {
                    assert!(d <= tau + 1e-4, "lemma6 matched a non-match");
                }
            }
        }
    }
}
