//! Brute-force ground-truth oracle.
//!
//! An O(|Q|·|R|) exact matcher with **none** of the PEXESO machinery: no
//! pivots, no grids, no lemmas, no inverted index, no early termination,
//! and only the scalar [`Metric::dist`] (never the batched
//! [`Metric::dist_le`] kernels). Its only job is to be obviously correct,
//! so the differential suite in `tests/differential.rs` can pin every
//! accelerated search mode — threshold, top-k, batched, out-of-core,
//! sequential and parallel — against an independent answer. Keep it slow
//! and simple; any "optimisation" here erodes its value as an oracle.
//!
//! ## Ranking contract
//!
//! * A query vector `q` matches column `S` iff `∃ x ∈ S : d(q, x) ≤ τ`;
//!   a column's *match count* is the number of matching query vectors.
//! * [`threshold_search`] returns columns with count ≥ T, ascending by
//!   column id, with exact counts.
//! * [`topk`] returns the (up to) `k` columns with positive match count,
//!   ranked by **count descending, then column id ascending** — the
//!   tie-break every top-k entry point in this crate must reproduce.

use crate::column::{ColumnId, ColumnSet};
use crate::config::{JoinThreshold, Tau};
use crate::error::{PexesoError, Result};
use crate::metric::Metric;
use crate::search::SearchHit;
use crate::vector::VectorStore;

/// Exact per-column match counts (`counts[c]` = matching query vectors of
/// column `c`). `deleted` masks tombstoned columns to zero so callers can
/// mirror an index with lazy deletions.
pub fn match_counts<M: Metric>(
    columns: &ColumnSet,
    metric: &M,
    query: &VectorStore,
    tau: Tau,
    deleted: Option<&[bool]>,
) -> Result<Vec<u32>> {
    if query.is_empty() {
        return Err(PexesoError::EmptyInput("query column with zero vectors"));
    }
    if query.dim() != columns.dim() {
        return Err(PexesoError::DimensionMismatch {
            expected: columns.dim(),
            got: query.dim(),
        });
    }
    let tau = tau.resolve(metric, columns.dim())?;
    let counts = columns
        .columns()
        .iter()
        .enumerate()
        .map(|(c, col)| {
            if deleted.is_some_and(|d| d[c]) {
                return 0;
            }
            query
                .iter()
                .filter(|q| {
                    col.vector_range()
                        .any(|v| metric.dist(q, columns.store().get_raw(v as usize)) <= tau)
                })
                .count() as u32
        })
        .collect();
    Ok(counts)
}

/// Exact threshold-form search: columns whose match count reaches `t`,
/// ascending by column id, with exact counts.
pub fn threshold_search<M: Metric>(
    columns: &ColumnSet,
    metric: &M,
    query: &VectorStore,
    tau: Tau,
    t: JoinThreshold,
    deleted: Option<&[bool]>,
) -> Result<Vec<SearchHit>> {
    let t_abs = t.resolve(query.len())?;
    let counts = match_counts(columns, metric, query, tau, deleted)?;
    Ok(counts
        .iter()
        .enumerate()
        .filter(|&(_, &count)| count as usize >= t_abs)
        .map(|(c, &count)| SearchHit {
            column: ColumnId(c as u32),
            match_count: count,
        })
        .collect())
}

/// Exact top-k: rank the counts of [`match_counts`] with [`rank_topk`].
pub fn topk<M: Metric>(
    columns: &ColumnSet,
    metric: &M,
    query: &VectorStore,
    tau: Tau,
    k: usize,
    deleted: Option<&[bool]>,
) -> Result<Vec<SearchHit>> {
    let counts = match_counts(columns, metric, query, tau, deleted)?;
    Ok(rank_topk(&counts, k))
}

/// The documented top-k ranking of a count vector: positive counts only,
/// count descending then column id ascending, truncated to `k`.
pub fn rank_topk(counts: &[u32], k: usize) -> Vec<SearchHit> {
    let mut hits: Vec<SearchHit> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &count)| count > 0)
        .map(|(c, &count)| SearchHit {
            column: ColumnId(c as u32),
            match_count: count,
        })
        .collect();
    hits.sort_by(|a, b| {
        b.match_count
            .cmp(&a.match_count)
            .then(a.column.cmp(&b.column))
    });
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;

    fn tiny() -> (ColumnSet, VectorStore) {
        // Axis-aligned 2-d vectors make the distances obvious by eye.
        let mut columns = ColumnSet::new(2);
        columns
            .add_column("t", "a", 0, vec![&[1.0, 0.0][..], &[0.0, 1.0]])
            .unwrap();
        columns
            .add_column("t", "b", 1, vec![&[1.0, 0.0][..]])
            .unwrap();
        columns
            .add_column("t", "c", 2, vec![&[-1.0, 0.0][..]])
            .unwrap();
        let mut query = VectorStore::new(2);
        query.push(&[1.0, 0.0]).unwrap();
        query.push(&[0.0, 1.0]).unwrap();
        (columns, query)
    }

    #[test]
    fn counts_by_hand() {
        let (columns, query) = tiny();
        let counts = match_counts(&columns, &Euclidean, &query, Tau::Absolute(0.1), None).unwrap();
        assert_eq!(counts, vec![2, 1, 0]);
    }

    #[test]
    fn deleted_mask_zeroes_counts() {
        let (columns, query) = tiny();
        let deleted = [true, false, false];
        let counts = match_counts(
            &columns,
            &Euclidean,
            &query,
            Tau::Absolute(0.1),
            Some(&deleted),
        )
        .unwrap();
        assert_eq!(counts, vec![0, 1, 0]);
    }

    #[test]
    fn threshold_and_topk_by_hand() {
        let (columns, query) = tiny();
        let tau = Tau::Absolute(0.1);
        let hits = threshold_search(
            &columns,
            &Euclidean,
            &query,
            tau,
            JoinThreshold::Count(1),
            None,
        )
        .unwrap();
        assert_eq!(
            hits.iter().map(|h| h.column.0).collect::<Vec<_>>(),
            vec![0, 1]
        );
        let top = topk(&columns, &Euclidean, &query, tau, 1, None).unwrap();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].column.0, 0);
        assert_eq!(top[0].match_count, 2);
    }

    #[test]
    fn ties_break_by_ascending_column_id() {
        let hits = rank_topk(&[3, 5, 5, 0, 5], 3);
        let got: Vec<(u32, u32)> = hits.iter().map(|h| (h.column.0, h.match_count)).collect();
        assert_eq!(got, vec![(1, 5), (2, 5), (4, 5)]);
    }

    #[test]
    fn k_zero_and_oversized_k() {
        assert!(rank_topk(&[1, 2], 0).is_empty());
        assert_eq!(rank_topk(&[1, 0, 2], 10).len(), 2);
    }

    #[test]
    fn empty_query_rejected() {
        let (columns, _) = tiny();
        let empty = VectorStore::new(2);
        assert!(match_counts(&columns, &Euclidean, &empty, Tau::Absolute(0.1), None).is_err());
    }
}
