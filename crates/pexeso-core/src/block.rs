//! Blocking: the dual-grid traversal of Algorithm 1, plus quick browsing.
//!
//! `HG_Q` and `HG_RV` are built with the same number of levels; the
//! traversal descends both in lockstep, pruning pairs with Lemma 4,
//! accepting whole subtrees with Lemma 6, and classifying
//! ⟨query vector, leaf cell⟩ pairs at the leaves with Lemmas 3 and 5.
//! The output is the paper's two pair sets: *matching pairs* (no
//! verification needed) and *candidate pairs* (verified by
//! [`crate::verify`]).

//! ## Parallel blocking
//!
//! Every query vector lies in exactly one leaf of `HG_Q`, hence under
//! exactly one level-1 root child. [`block_with`] shards the root children
//! across an [`ExecPolicy`]'s threads; the per-shard accumulators are
//! therefore disjoint in query-vector keys and merge without conflicts,
//! keeping the output byte-identical to the sequential traversal.

use crate::config::{ExecPolicy, LemmaFlags};
use crate::exec;
use crate::grid::{CellKey, HierarchicalGrid};
use crate::invindex::InvertedIndex;
use crate::lemmas;
use crate::mapping::MappedVectors;
use crate::stats::SearchStats;
use crate::util::{FastMap, FastSet};

/// Blocking output: per query vector, the leaf cells it surely matches and
/// the leaf cells it must be verified against. Sorted by query vector id.
#[derive(Debug, Clone, Default)]
pub struct BlockOutput {
    pub matching: Vec<(u32, Vec<CellKey>)>,
    pub candidates: Vec<(u32, Vec<CellKey>)>,
}

/// Mutable accumulators of the traversal (kept separate from the grids so
/// the recursion can borrow children slices without cloning them).
struct Acc {
    matching: FastMap<u32, Vec<CellKey>>,
    candidates: FastMap<u32, Vec<CellKey>>,
    scratch_leaves: Vec<CellKey>,
    scratch_vectors: Vec<u32>,
}

struct Cfg<'a> {
    hgq: &'a HierarchicalGrid,
    hgrv: &'a HierarchicalGrid,
    query_mapped: &'a MappedVectors,
    tau: f32,
    flags: LemmaFlags,
    quick_browsed: Option<&'a FastSet<CellKey>>,
}

/// Quick browsing (Section III-C): every leaf cell of `HG_Q` that also
/// exists in `HG_RV` refers to the same space region, so its query vectors
/// and the target cell can never be separated by Lemma 3/4 — emit them as
/// candidates immediately and let the traversal skip the identical-key pair.
/// Returns the set of handled query-leaf keys.
pub fn quick_browse(
    hgq: &HierarchicalGrid,
    inv: &InvertedIndex,
    candidates: &mut FastMap<u32, Vec<CellKey>>,
    stats: &mut SearchStats,
) -> FastSet<CellKey> {
    let mut handled = FastSet::default();
    for key in hgq.leaf_keys() {
        if inv.contains(key) {
            handled.insert(key);
            for &q in hgq.leaf_vectors(key) {
                candidates.entry(q).or_default().push(key);
                stats.quick_browse_pairs += 1;
            }
        }
    }
    handled
}

/// Run Algorithm 1 over the two grids single-threaded. `quick_browsed` carries the keys
/// already handled by [`quick_browse`] (pass `None` to disable skipping).
/// Pre-seeded candidate pairs may be supplied via `seed_candidates`.
#[allow(clippy::too_many_arguments)]
pub fn block(
    hgq: &HierarchicalGrid,
    hgrv: &HierarchicalGrid,
    query_mapped: &MappedVectors,
    tau: f32,
    flags: LemmaFlags,
    quick_browsed: Option<&FastSet<CellKey>>,
    seed_candidates: FastMap<u32, Vec<CellKey>>,
    stats: &mut SearchStats,
) -> BlockOutput {
    block_with(
        hgq,
        hgrv,
        query_mapped,
        tau,
        flags,
        quick_browsed,
        seed_candidates,
        stats,
        ExecPolicy::Sequential,
    )
}

/// [`block`] with explicit parallelism over the `HG_Q` root children.
/// Output is identical for every policy.
#[allow(clippy::too_many_arguments)]
pub fn block_with(
    hgq: &HierarchicalGrid,
    hgrv: &HierarchicalGrid,
    query_mapped: &MappedVectors,
    tau: f32,
    flags: LemmaFlags,
    quick_browsed: Option<&FastSet<CellKey>>,
    mut seed_candidates: FastMap<u32, Vec<CellKey>>,
    stats: &mut SearchStats,
    policy: ExecPolicy,
) -> BlockOutput {
    debug_assert_eq!(
        hgq.params().levels,
        hgrv.params().levels,
        "grids must share m"
    );
    let cfg = Cfg {
        hgq,
        hgrv,
        query_mapped,
        tau,
        flags,
        quick_browsed,
    };
    let roots = hgq.root_children();

    // Traverse shards of root children; each query vector lives under one
    // root child, so shard accumulators have disjoint query keys.
    let shards = exec::map_ranges_min(policy, roots.len(), 2, |range| {
        let mut acc = Acc {
            matching: FastMap::default(),
            candidates: FastMap::default(),
            scratch_leaves: Vec::new(),
            scratch_vectors: Vec::new(),
        };
        let mut shard_stats = SearchStats::new();
        for &q_child in &roots[range] {
            for &t_child in hgrv.root_children() {
                descend(&cfg, &mut acc, q_child, t_child, 1, &mut shard_stats);
            }
        }
        (acc, shard_stats)
    });

    let mut matching: FastMap<u32, Vec<CellKey>> = FastMap::default();
    let mut traversed: FastMap<u32, Vec<CellKey>> = FastMap::default();
    for (acc, shard_stats) in shards {
        stats.merge(&shard_stats);
        for (q, cells) in acc.matching {
            debug_assert!(
                !matching.contains_key(&q),
                "query vector split across shards"
            );
            matching.insert(q, cells);
        }
        for (q, cells) in acc.candidates {
            debug_assert!(
                !traversed.contains_key(&q),
                "query vector split across shards"
            );
            traversed.insert(q, cells);
        }
    }
    // Per query vector: quick-browse seeds first, then traversal output —
    // the order the sequential algorithm produced when it started from the
    // seeded map.
    for (q, cells) in traversed {
        seed_candidates.entry(q).or_default().extend(cells);
    }

    let finalize = |map: FastMap<u32, Vec<CellKey>>| -> Vec<(u32, Vec<CellKey>)> {
        let mut v: Vec<(u32, Vec<CellKey>)> = map.into_iter().collect();
        v.sort_unstable_by_key(|(q, _)| *q);
        v
    };
    let out = BlockOutput {
        matching: finalize(matching),
        candidates: finalize(seed_candidates),
    };
    stats.matching_pairs += out
        .matching
        .iter()
        .map(|(_, c)| c.len() as u64)
        .sum::<u64>();
    stats.candidate_pairs += out
        .candidates
        .iter()
        .map(|(_, c)| c.len() as u64)
        .sum::<u64>();
    out
}

fn descend(
    cfg: &Cfg<'_>,
    acc: &mut Acc,
    q_key: CellKey,
    t_key: CellKey,
    level: usize,
    stats: &mut SearchStats,
) {
    let m = cfg.hgq.params().levels;
    if level == m {
        leaf_pair(cfg, acc, q_key, t_key, stats);
        return;
    }
    let q_bounds = cfg.hgq.params().bounds(q_key, level);
    let t_bounds = cfg.hgrv.params().bounds(t_key, level);

    if cfg.flags.lemma56_cell_match && lemmas::lemma6_cell_cell_match(&q_bounds, &t_bounds, cfg.tau)
    {
        stats.cell_pairs_matched += 1;
        // Every query vector under q_key matches every leaf under t_key.
        acc.scratch_leaves.clear();
        cfg.hgrv
            .collect_leaves(t_key, level, &mut acc.scratch_leaves);
        acc.scratch_vectors.clear();
        cfg.hgq
            .collect_vectors(q_key, level, &mut acc.scratch_vectors);
        for &q in &acc.scratch_vectors {
            acc.matching
                .entry(q)
                .or_default()
                .extend_from_slice(&acc.scratch_leaves);
        }
        return;
    }
    if cfg.flags.lemma34_cell_filter
        && lemmas::lemma4_cell_cell_filter(&q_bounds, &t_bounds, cfg.tau)
    {
        stats.cell_pairs_filtered += 1;
        return;
    }
    // Children are expanded on both grids simultaneously (block nested
    // loop style, each grid scanned once).
    for &qc in cfg.hgq.children_of(q_key, level) {
        for &tc in cfg.hgrv.children_of(t_key, level) {
            descend(cfg, acc, qc, tc, level + 1, stats);
        }
    }
}

fn leaf_pair(
    cfg: &Cfg<'_>,
    acc: &mut Acc,
    q_key: CellKey,
    t_key: CellKey,
    stats: &mut SearchStats,
) {
    if q_key == t_key {
        if let Some(handled) = cfg.quick_browsed {
            if handled.contains(&q_key) {
                return; // already emitted as candidates by quick browsing
            }
        }
    }
    let t_bounds = cfg.hgrv.params().bounds(t_key, cfg.hgrv.params().levels);
    for &q in cfg.hgq.leaf_vectors(q_key) {
        let qm = cfg.query_mapped.get(q as usize);
        if cfg.flags.lemma56_cell_match && lemmas::lemma5_vector_cell_match(qm, &t_bounds, cfg.tau)
        {
            stats.cell_pairs_matched += 1;
            acc.matching.entry(q).or_default().push(t_key);
        } else if cfg.flags.lemma34_cell_filter
            && lemmas::lemma3_vector_cell_filter(qm, &t_bounds, cfg.tau)
        {
            stats.cell_pairs_filtered += 1;
        } else {
            acc.candidates.entry(q).or_default().push(t_key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridParams;
    use crate::metric::{Euclidean, Metric};
    use crate::vector::VectorStore;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    /// Build stores + grids for a random instance; return everything needed
    /// to cross-check blocking coverage against brute force.
    struct Setup {
        query: VectorStore,
        targets: VectorStore,
        qmapped: MappedVectors,
        tmapped: MappedVectors,
        hgq: HierarchicalGrid,
        hgrv: HierarchicalGrid,
        params: GridParams,
    }

    fn setup(seed: u64, nq: usize, nt: usize, m: usize) -> Setup {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 12;
        let unit = |rng: &mut StdRng| {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= n);
            v
        };
        let mut query = VectorStore::new(dim);
        for _ in 0..nq {
            let v = unit(&mut rng);
            query.push(&v).unwrap();
        }
        let mut targets = VectorStore::new(dim);
        for _ in 0..nt {
            let v = unit(&mut rng);
            targets.push(&v).unwrap();
        }
        let pivots: Vec<Vec<f32>> = (0..3).map(|i| targets.get_raw(i * 3).to_vec()).collect();
        let qmapped = MappedVectors::build(&query, &pivots, &Euclidean, None).unwrap();
        let tmapped = MappedVectors::build(&targets, &pivots, &Euclidean, None).unwrap();
        let params = GridParams::new(3, m, 2.0 + 1e-4).unwrap();
        let hgq = HierarchicalGrid::build(params.clone(), &qmapped).unwrap();
        let hgrv = HierarchicalGrid::build(params.clone(), &tmapped).unwrap();
        Setup {
            query,
            targets,
            qmapped,
            tmapped,
            hgq,
            hgrv,
            params,
        }
    }

    /// Coverage invariant: every true match (d(q,x) ≤ τ) appears either in
    /// a matching pair or in a candidate pair of q covering x's leaf cell.
    fn check_coverage(s: &Setup, out: &BlockOutput, tau: f32) {
        use std::collections::HashMap as Map;
        let matching: Map<u32, HashSet<CellKey>> = out
            .matching
            .iter()
            .map(|(q, c)| (*q, c.iter().copied().collect()))
            .collect();
        let candidates: Map<u32, HashSet<CellKey>> = out
            .candidates
            .iter()
            .map(|(q, c)| (*q, c.iter().copied().collect()))
            .collect();
        for qi in 0..s.query.len() {
            for ti in 0..s.targets.len() {
                let d = Euclidean.dist(s.query.get_raw(qi), s.targets.get_raw(ti));
                if d <= tau {
                    let leaf = s.params.leaf_key(s.tmapped.get(ti));
                    let in_match = matching
                        .get(&(qi as u32))
                        .is_some_and(|c| c.contains(&leaf));
                    let in_cand = candidates
                        .get(&(qi as u32))
                        .is_some_and(|c| c.contains(&leaf));
                    assert!(
                        in_match || in_cand,
                        "true match q{qi} x{ti} (d={d}) not covered by blocking"
                    );
                }
            }
        }
    }

    /// Matching-pair soundness: every vector in a matched cell really is
    /// within τ of the query vector.
    fn check_matching_sound(s: &Setup, out: &BlockOutput, tau: f32) {
        let mut by_leaf: FastMap<CellKey, Vec<usize>> = FastMap::default();
        for ti in 0..s.targets.len() {
            by_leaf
                .entry(s.params.leaf_key(s.tmapped.get(ti)))
                .or_default()
                .push(ti);
        }
        for (q, cells) in &out.matching {
            for cell in cells {
                for &ti in by_leaf.get(cell).into_iter().flatten() {
                    let d = Euclidean.dist(s.query.get_raw(*q as usize), s.targets.get_raw(ti));
                    assert!(d <= tau + 1e-4, "matching pair contains non-match (d={d})");
                }
            }
        }
    }

    #[test]
    fn coverage_and_soundness_small() {
        let s = setup(1, 12, 80, 3);
        let tau = 0.35;
        let mut stats = SearchStats::new();
        let out = block(
            &s.hgq,
            &s.hgrv,
            &s.qmapped,
            tau,
            LemmaFlags::all(),
            None,
            FastMap::default(),
            &mut stats,
        );
        check_coverage(&s, &out, tau);
        check_matching_sound(&s, &out, tau);
    }

    #[test]
    fn coverage_across_depths_and_taus() {
        for m in [1, 2, 4, 6] {
            for tau in [0.1f32, 0.5, 1.2] {
                let s = setup(m as u64 * 100 + 7, 8, 60, m);
                let mut stats = SearchStats::new();
                let out = block(
                    &s.hgq,
                    &s.hgrv,
                    &s.qmapped,
                    tau,
                    LemmaFlags::all(),
                    None,
                    FastMap::default(),
                    &mut stats,
                );
                check_coverage(&s, &out, tau);
                check_matching_sound(&s, &out, tau);
            }
        }
    }

    #[test]
    fn disabling_lemmas_only_grows_candidates() {
        let s = setup(3, 10, 100, 4);
        let tau = 0.4;
        let count = |flags: LemmaFlags| -> (u64, u64) {
            let mut stats = SearchStats::new();
            let out = block(
                &s.hgq,
                &s.hgrv,
                &s.qmapped,
                tau,
                flags,
                None,
                FastMap::default(),
                &mut stats,
            );
            check_coverage(&s, &out, tau);
            (stats.candidate_pairs, stats.matching_pairs)
        };
        let (cand_all, _) = count(LemmaFlags::all());
        let (cand_no34, _) = count(LemmaFlags::without_lemma34());
        let (cand_no56, match_no56) = count(LemmaFlags::without_lemma56());
        assert!(
            cand_no34 >= cand_all,
            "dropping filters cannot shrink candidates"
        );
        assert!(
            cand_no56 >= cand_all,
            "dropping matches moves pairs to candidates"
        );
        assert_eq!(match_no56, 0, "no matching pairs without lemma 5/6");
    }

    #[test]
    fn quick_browse_emits_shared_leaves_and_block_skips_them() {
        let s = setup(4, 10, 100, 3);
        let tau = 0.4;
        let vec_col: Vec<u32> = (0..s.targets.len() as u32).collect(); // 1 col per vector
        let inv = InvertedIndex::build(&s.params, &s.tmapped, &vec_col).unwrap();

        let mut stats = SearchStats::new();
        let mut seeded = FastMap::default();
        let handled = quick_browse(&s.hgq, &inv, &mut seeded, &mut stats);
        let out = block(
            &s.hgq,
            &s.hgrv,
            &s.qmapped,
            tau,
            LemmaFlags::all(),
            Some(&handled),
            seeded,
            &mut stats,
        );
        check_coverage(&s, &out, tau);
        // No (q, cell) pair may be duplicated.
        for (_, cells) in &out.candidates {
            let set: HashSet<_> = cells.iter().collect();
            assert_eq!(set.len(), cells.len(), "duplicate candidate pair");
        }
        if !handled.is_empty() {
            assert!(stats.quick_browse_pairs > 0);
        }
    }

    #[test]
    fn parallel_block_is_byte_identical() {
        for m in [1usize, 3, 5] {
            let s = setup(m as u64 * 13 + 2, 11, 90, m);
            for tau in [0.15f32, 0.45, 1.0] {
                let run = |policy: ExecPolicy| {
                    let mut stats = SearchStats::new();
                    let out = block_with(
                        &s.hgq,
                        &s.hgrv,
                        &s.qmapped,
                        tau,
                        LemmaFlags::all(),
                        None,
                        FastMap::default(),
                        &mut stats,
                        policy,
                    );
                    (out, stats.candidate_pairs, stats.matching_pairs)
                };
                let (seq, seq_cand, seq_match) = run(ExecPolicy::Sequential);
                for threads in [2usize, 4, 16] {
                    // `Fixed` bypasses the adaptive clamp: real fan-out
                    // even on single-core hosts.
                    for policy in [
                        ExecPolicy::Parallel { threads },
                        ExecPolicy::Fixed { threads },
                    ] {
                        let (par, par_cand, par_match) = run(policy);
                        assert_eq!(
                            seq.matching, par.matching,
                            "m={m} tau={tau} threads={threads}"
                        );
                        assert_eq!(
                            seq.candidates, par.candidates,
                            "m={m} tau={tau} threads={threads}"
                        );
                        assert_eq!(seq_cand, par_cand);
                        assert_eq!(seq_match, par_match);
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_block_preserves_quick_browse_seed_order() {
        let s = setup(9, 14, 120, 3);
        let tau = 0.4;
        let vec_col: Vec<u32> = (0..s.targets.len() as u32).collect();
        let inv = InvertedIndex::build(&s.params, &s.tmapped, &vec_col).unwrap();
        let run = |policy: ExecPolicy| {
            let mut stats = SearchStats::new();
            let mut seeded = FastMap::default();
            let handled = quick_browse(&s.hgq, &inv, &mut seeded, &mut stats);
            block_with(
                &s.hgq,
                &s.hgrv,
                &s.qmapped,
                tau,
                LemmaFlags::all(),
                Some(&handled),
                seeded,
                &mut stats,
                policy,
            )
        };
        let seq = run(ExecPolicy::Sequential);
        for policy in [
            ExecPolicy::Parallel { threads: 5 },
            ExecPolicy::Fixed { threads: 5 },
        ] {
            let par = run(policy);
            assert_eq!(seq.matching, par.matching, "{policy:?}");
            assert_eq!(seq.candidates, par.candidates, "{policy:?}");
        }
    }

    #[test]
    fn deterministic_output() {
        let s = setup(5, 6, 50, 3);
        let run = || {
            let mut stats = SearchStats::new();
            block(
                &s.hgq,
                &s.hgrv,
                &s.qmapped,
                0.3,
                LemmaFlags::all(),
                None,
                FastMap::default(),
                &mut stats,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.matching, b.matching);
        assert_eq!(a.candidates, b.candidates);
    }
}
