//! Lock-free, log-bucketed latency histograms.
//!
//! [`AtomicHistogram`] is the serving plane's replacement for the old
//! mutex-guarded latency ring: recording is a handful of relaxed atomic
//! adds (safe on any hot path), reading is a consistent-enough
//! [`HistSnapshot`] that can be merged across histograms and summarised
//! into quantiles. The bucket layout is HDR-style: exact buckets for
//! small values, then eight linear sub-buckets per power-of-two octave,
//! so relative error is bounded (~12.5%) across the whole range instead
//! of degrading with magnitude. Values are unit-agnostic `u64`s; every
//! user in this workspace records microseconds.
//!
//! The module also hosts the process-global histograms for subsystems
//! without a natural owner object (WAL append/fsync latency, recorded by
//! `pexeso-delta` wherever the log is written), so the serving daemon's
//! `METRICS` verb can expose them without plumbing a registry through
//! every call site.
//!
//! This is distinct from [`crate::histogram::Histogram`], the fixed-range
//! `f64` mass histogram used by the JSD partitioner and the cost model —
//! that one models data distributions, this one counts events.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per power-of-two octave (3 bits of mantissa kept).
const SUB: usize = 8;
/// Total bucket count. The first `SUB` buckets hold the values
/// `0..SUB` exactly; each later group of `SUB` buckets covers one
/// octave. 192 buckets span `0..2^26` (≈ 67 seconds in microseconds);
/// larger values saturate into the top bucket.
pub const NUM_BUCKETS: usize = 192;

/// The bucket a value lands in.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 3
    let sub = ((v >> (msb - 3)) & 0x7) as usize;
    (SUB * (msb - 2) + sub).min(NUM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` — what quantile estimates report,
/// so they are conservative (never below the true quantile).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let msb = i / SUB + 2;
    let sub = (i % SUB) as u64;
    let lower = (SUB as u64 + sub) << (msb - 3);
    lower + (1u64 << (msb - 3)) - 1
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let msb = i / SUB + 2;
    let sub = (i % SUB) as u64;
    (SUB as u64 + sub) << (msb - 3)
}

/// Width of bucket `i` — the resolution bound every quantile estimate
/// carries ("within one bucket width of exact").
pub fn bucket_width(i: usize) -> u64 {
    bucket_upper_bound(i) - bucket_lower_bound(i) + 1
}

/// A fixed-size, mergeable, lock-free histogram. Recording is wait-free
/// (three relaxed `fetch_add`s); concurrent recorders never lose samples
/// — the regression the old sampling ring could not make.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; NUM_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one value. Values past the top bucket's range saturate
    /// into it (still counted, still summed).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration in microseconds (the workspace convention).
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A plain-data copy of the current state. Concurrent recorders may
    /// land between the bucket reads and the sum/count reads, so the
    /// snapshot is only guaranteed internally consistent once recording
    /// has quiesced — fine for metrics, not for invariants.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = vec![0u64; NUM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data histogram state: mergeable, quantile-queryable, and what
/// the Prometheus exposition renders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts, `NUM_BUCKETS` long.
    pub buckets: Vec<u64>,
    /// Sum of every recorded value.
    pub sum: u64,
    /// Total recorded values.
    pub count: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            sum: 0,
            count: 0,
        }
    }
}

impl HistSnapshot {
    /// Add another snapshot's mass into this one. Merging is commutative
    /// and associative (pinned by the proptests), so partition- or
    /// replica-level histograms aggregate in any order.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// The `q`-quantile (0 < q ≤ 1), reported as the upper bound of the
    /// bucket holding the target rank — conservative by at most one
    /// bucket width. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    }

    /// Mean of the recorded values (exact — the sum is kept, not
    /// bucketed). Zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Process-global histograms for subsystems without an owning object.
/// `pexeso-delta` records WAL latencies here; the serving daemon's
/// `METRICS` verb renders whatever this process has seen.
pub mod global {
    use super::AtomicHistogram;

    /// WAL record-append latency (encode + write + flush), microseconds.
    pub static WAL_APPEND: AtomicHistogram = AtomicHistogram::new();
    /// WAL fsync latency, microseconds.
    pub static WAL_FSYNC: AtomicHistogram = AtomicHistogram::new();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_buckets_are_exact() {
        for v in 0..SUB as u64 {
            let i = bucket_index(v);
            assert_eq!(i as u64, v);
            assert_eq!(bucket_lower_bound(i), v);
            assert_eq!(bucket_upper_bound(i), v);
        }
    }

    #[test]
    fn buckets_tile_the_range() {
        // Every bucket starts right after the previous one ends, and
        // every value maps into a bucket whose bounds contain it.
        for i in 1..NUM_BUCKETS {
            assert_eq!(
                bucket_lower_bound(i),
                bucket_upper_bound(i - 1) + 1,
                "gap or overlap at bucket {i}"
            );
        }
        for v in [0, 1, 7, 8, 9, 15, 16, 100, 1000, 123_456, 60_000_000] {
            let i = bucket_index(v);
            assert!(
                bucket_lower_bound(i) <= v && v <= bucket_upper_bound(i),
                "v={v}"
            );
        }
    }

    #[test]
    fn oversized_values_saturate_into_the_top_bucket() {
        let h = AtomicHistogram::new();
        h.record(u64::MAX);
        h.record(bucket_upper_bound(NUM_BUCKETS - 1) + 1);
        let s = h.snapshot();
        assert_eq!(s.buckets[NUM_BUCKETS - 1], 2);
        assert_eq!(s.count, 2);
        assert_eq!(s.quantile(0.5), bucket_upper_bound(NUM_BUCKETS - 1));
    }

    #[test]
    fn quantiles_are_conservative_within_one_bucket() {
        let h = AtomicHistogram::new();
        // 98% fast, 2% slow — p50 must stay fast, p99 must go slow.
        for _ in 0..980 {
            h.record(100);
        }
        for _ in 0..20 {
            h.record(10_000);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        assert!(
            p50 >= 100 && p50 <= 100 + bucket_width(bucket_index(100)),
            "p50={p50}"
        );
        assert!(p99 >= 10_000, "p99={p99}");
        assert!(
            p99 <= 10_000 + bucket_width(bucket_index(10_000)),
            "p99={p99}"
        );
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 980 * 100 + 20 * 10_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = AtomicHistogram::new().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_adds_mass() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        a.record(10);
        b.record(1000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 1010);
        assert!(s.quantile(1.0) >= 1000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 997);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 40_000);
    }
}
