//! Index introspection: the structural statistics behind the `INSPECT`
//! verb and the `pexeso inspect` CLI.
//!
//! Where [`crate::stats::SearchStats`] describes one *query*, an
//! [`IndexInspection`] describes the *index itself*: how many columns and
//! vectors each partition holds, how the grid's non-empty leaf cells are
//! populated (postings-length and occupancy histograms — the shape that
//! decides how well the blocking phase prunes), how spread out the pivot
//! coordinates are, and how deep the live delta overlay has grown since
//! the base build. All of it is derived by one read-only walk over the
//! resident structures; nothing here is sampled or approximate.
//!
//! The histograms reuse the log-bucketed [`crate::hist`] layout so the
//! serve tier can expose them through the same Prometheus rendering as
//! its latency histograms.

use crate::hist::{AtomicHistogram, HistSnapshot};

/// The spread of one pivot's mapped coordinate over the repository:
/// a pivot whose coordinates bunch together discriminates poorly (every
/// vector lands in the same grid slice along that axis).
#[derive(Debug, Clone, PartialEq)]
pub struct PivotSpread {
    pub min: f32,
    pub max: f32,
    pub mean: f32,
}

/// Structural statistics of one partition's PEXESO index.
#[derive(Debug, Clone, Default)]
pub struct PartitionInspection {
    /// Columns in the partition, live tombstoned ones included.
    pub columns: u64,
    /// Columns lazily deleted (tombstoned) but not yet compacted away.
    pub deleted_columns: u64,
    /// Repository vectors indexed.
    pub vectors: u64,
    /// Non-empty leaf cells of `HG_RV`.
    pub cells: u64,
    /// Total postings entries (Σ per-cell distinct columns).
    pub postings: u64,
    /// Histogram of per-cell postings length (distinct columns per
    /// non-empty leaf cell).
    pub postings_len: HistSnapshot,
    /// Histogram of per-cell occupancy (vectors per non-empty leaf
    /// cell).
    pub cell_occupancy: HistSnapshot,
    /// Per-pivot coordinate spread, pivot order.
    pub pivot_spread: Vec<PivotSpread>,
}

/// A whole deployment's introspection: every partition plus the delta
/// overlay depth. The delta fields are filled by the owner of the
/// overlay (the serve tier); a bare in-memory index reports zeros.
#[derive(Debug, Clone, Default)]
pub struct IndexInspection {
    pub partitions: Vec<PartitionInspection>,
    /// Live columns ingested into the delta overlay since the base build.
    pub delta_columns: u64,
    /// Vectors those delta columns hold.
    pub delta_vectors: u64,
    /// Tables tombstoned in the delta log.
    pub delta_tombstones: u64,
    /// Raw delta-log records replayed (appends + tombstones).
    pub delta_records: u64,
}

impl PartitionInspection {
    /// Derive the statistics of one partition by walking its inverted
    /// index and mapped coordinates. `deleted` marks tombstoned columns;
    /// `mapped_iter` yields each vector's pivot-space coordinates.
    pub fn derive<'a>(
        inv: &crate::invindex::InvertedIndex,
        deleted: &[bool],
        num_vectors: u64,
        mapped_iter: impl Iterator<Item = &'a [f32]>,
        num_pivots: usize,
    ) -> Self {
        let postings_len = AtomicHistogram::new();
        let cell_occupancy = AtomicHistogram::new();
        let mut postings = 0u64;
        for (_key, cell) in inv.iter_cells() {
            postings_len.record(cell.cols.len() as u64);
            cell_occupancy.record(cell.vecs.len() as u64);
            postings += cell.cols.len() as u64;
        }
        let mut mins = vec![f32::INFINITY; num_pivots];
        let mut maxs = vec![f32::NEG_INFINITY; num_pivots];
        let mut sums = vec![0f64; num_pivots];
        let mut n = 0u64;
        for coords in mapped_iter {
            n += 1;
            for (p, &c) in coords.iter().enumerate() {
                mins[p] = mins[p].min(c);
                maxs[p] = maxs[p].max(c);
                sums[p] += c as f64;
            }
        }
        let pivot_spread = (0..num_pivots)
            .map(|p| PivotSpread {
                min: if n == 0 { 0.0 } else { mins[p] },
                max: if n == 0 { 0.0 } else { maxs[p] },
                mean: if n == 0 {
                    0.0
                } else {
                    (sums[p] / n as f64) as f32
                },
            })
            .collect();
        Self {
            columns: deleted.len() as u64,
            deleted_columns: deleted.iter().filter(|&&d| d).count() as u64,
            vectors: num_vectors,
            cells: inv.num_cells() as u64,
            postings,
            postings_len: postings_len.snapshot(),
            cell_occupancy: cell_occupancy.snapshot(),
            pivot_spread,
        }
    }
}

impl IndexInspection {
    /// Merge the per-partition statistics into whole-deployment totals:
    /// (columns, deleted, vectors, cells, postings).
    pub fn totals(&self) -> (u64, u64, u64, u64, u64) {
        let mut t = (0, 0, 0, 0, 0);
        for p in &self.partitions {
            t.0 += p.columns;
            t.1 += p.deleted_columns;
            t.2 += p.vectors;
            t.3 += p.cells;
            t.4 += p.postings;
        }
        t
    }

    /// Postings-length histogram summed over every partition.
    pub fn postings_len(&self) -> HistSnapshot {
        self.merged(|p| &p.postings_len)
    }

    /// Cell-occupancy histogram summed over every partition.
    pub fn cell_occupancy(&self) -> HistSnapshot {
        self.merged(|p| &p.cell_occupancy)
    }

    fn merged(&self, pick: impl Fn(&PartitionInspection) -> &HistSnapshot) -> HistSnapshot {
        let mut out = AtomicHistogram::new().snapshot();
        for p in &self.partitions {
            out.merge(pick(p));
        }
        out
    }

    /// The `key=value` text body the `INSPECT` verb answers with: totals,
    /// overlay depth, histogram quantiles, and per-partition lines.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let (columns, deleted, vectors, cells, postings) = self.totals();
        let _ = writeln!(out, "partitions={}", self.partitions.len());
        let _ = writeln!(out, "columns={columns}");
        let _ = writeln!(out, "deleted_columns={deleted}");
        let _ = writeln!(out, "vectors={vectors}");
        let _ = writeln!(out, "cells={cells}");
        let _ = writeln!(out, "postings={postings}");
        let _ = writeln!(out, "delta_columns={}", self.delta_columns);
        let _ = writeln!(out, "delta_vectors={}", self.delta_vectors);
        let _ = writeln!(out, "delta_tombstones={}", self.delta_tombstones);
        let _ = writeln!(out, "delta_records={}", self.delta_records);
        let mut hist_lines = |name: &str, h: &HistSnapshot| {
            let _ = writeln!(out, "{name}.p50={}", h.quantile(0.5));
            let _ = writeln!(out, "{name}.p99={}", h.quantile(0.99));
            let _ = writeln!(out, "{name}.mean={:.2}", h.mean());
        };
        hist_lines("postings_len", &self.postings_len());
        hist_lines("cell_occupancy", &self.cell_occupancy());
        for (i, p) in self.partitions.iter().enumerate() {
            let _ = writeln!(
                out,
                "partition{i}.columns={} partition{i}.deleted={} partition{i}.vectors={} \
                 partition{i}.cells={} partition{i}.postings={}",
                p.columns, p.deleted_columns, p.vectors, p.cells, p.postings
            );
            if !p.pivot_spread.is_empty() {
                let widths: Vec<f32> = p.pivot_spread.iter().map(|s| s.max - s.min).collect();
                let min_w = widths.iter().copied().fold(f32::INFINITY, f32::min);
                let max_w = widths.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mean_w = widths.iter().sum::<f32>() / widths.len() as f32;
                let _ = writeln!(
                    out,
                    "partition{i}.pivot_spread.min={min_w:.4} \
                     partition{i}.pivot_spread.max={max_w:.4} \
                     partition{i}.pivot_spread.mean={mean_w:.4}"
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridParams;
    use crate::invindex::InvertedIndex;
    use crate::mapping::MappedVectors;

    fn tiny_index() -> (InvertedIndex, MappedVectors) {
        // Two pivots, one-level grid over span 4: cell width 4/2 = 2.
        let params = GridParams::new(2, 1, 4.0).unwrap();
        let mapped = MappedVectors::from_raw(
            2,
            vec![
                0.5, 0.5, // cell (0,0) — col 0
                0.6, 0.4, // cell (0,0) — col 0 again
                3.0, 0.5, // cell (1,0) — col 1
            ],
        )
        .unwrap();
        let inv = InvertedIndex::build(&params, &mapped, &[0, 0, 1]).unwrap();
        (inv, mapped)
    }

    #[test]
    fn partition_inspection_counts_cells_and_postings() {
        let (inv, mapped) = tiny_index();
        let p = PartitionInspection::derive(&inv, &[false, true], 3, mapped.iter(), 2);
        assert_eq!(p.columns, 2);
        assert_eq!(p.deleted_columns, 1);
        assert_eq!(p.vectors, 3);
        assert_eq!(p.cells, 2);
        // Cell (0,0) holds one column, cell (1,0) one column.
        assert_eq!(p.postings, 2);
        assert_eq!(p.postings_len.count, 2);
        assert_eq!(p.cell_occupancy.count, 2);
        // Occupancies are 2 and 1 vectors.
        assert_eq!(p.cell_occupancy.sum, 3);
        assert_eq!(p.pivot_spread.len(), 2);
        let s0 = &p.pivot_spread[0];
        assert!((s0.min - 0.5).abs() < 1e-6 && (s0.max - 3.0).abs() < 1e-6);
    }

    #[test]
    fn inspection_totals_and_render() {
        let (inv, mapped) = tiny_index();
        let p = PartitionInspection::derive(&inv, &[false, false], 3, mapped.iter(), 2);
        let insp = IndexInspection {
            partitions: vec![p.clone(), p],
            delta_columns: 4,
            delta_vectors: 9,
            delta_tombstones: 1,
            delta_records: 5,
        };
        assert_eq!(insp.totals(), (4, 0, 6, 4, 4));
        assert_eq!(insp.postings_len().count, 4);
        let text = insp.render_text();
        assert!(text.contains("partitions=2"), "{text}");
        assert!(text.contains("vectors=6"), "{text}");
        assert!(text.contains("delta_columns=4"), "{text}");
        assert!(text.contains("partition1.cells=2"), "{text}");
        assert!(text.contains("postings_len.p50="), "{text}");
    }

    #[test]
    fn empty_inspection_renders_zeros() {
        let insp = IndexInspection::default();
        let text = insp.render_text();
        assert!(text.contains("partitions=0"), "{text}");
        assert!(text.contains("columns=0"), "{text}");
    }
}
