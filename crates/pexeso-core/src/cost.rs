//! Cost model and optimal-m selection (Section III-E).
//!
//! The expected verification cost of a query workload is
//! `E = Σ_{q ∈ C} N(SQR(q', τ))` (Eq. 1), where `C` is the multiset of
//! query-vector occurrences in candidate pairs. `N` is upper-bounded via
//! per-dimension PDFs of the mapped vectors (Eq. 2):
//! `N̂ = min_i ∫ PDFᵢ over [q'ᵢ − τ − w/2, q'ᵢ + τ + w/2]`, with `w` the
//! leaf-cell width — the minimum over dimensions because a vector survives
//! only if *no* dimension filters it.
//!
//! Blocking is cheap (Table VI shows it is negligible), so candidate sets
//! are obtained by actually blocking a sampled workload per candidate `m`;
//! only verification is estimated. The paper optimises fractional `m` by
//! gradient descent and ceils; we evaluate the (small, discrete) range
//! exhaustively and refine with a parabola fit, which is equivalent here
//! and deterministic.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::block::block;
use crate::column::ColumnSet;
use crate::config::{LemmaFlags, MAX_LEVELS};
use crate::error::Result;
use crate::grid::{GridParams, HierarchicalGrid};
use crate::histogram::Histogram;
use crate::mapping::MappedVectors;
use crate::metric::Metric;
use crate::stats::SearchStats;
use crate::util::FastMap;

/// Vectors sampled from the repository as the query workload.
const WORKLOAD_SAMPLE: usize = 256;
/// Repository vectors sampled for blocking-based candidate counting.
const RV_SAMPLE: usize = 20_000;
/// Histogram bins per pivot dimension.
const PDF_BINS: usize = 64;
/// τ values of the synthetic workload, as fractions of the span
/// (the paper suggests 0–10 % of the maximum distance).
const WORKLOAD_TAUS: [f32; 3] = [0.02, 0.05, 0.08];

/// Per-dimension PDFs of the mapped repository vectors.
pub struct PivotSpacePdfs {
    pub dims: Vec<Histogram>,
    pub n_vectors: usize,
}

impl PivotSpacePdfs {
    pub fn build(mapped: &MappedVectors, span: f32) -> Self {
        let k = mapped.num_pivots();
        let dims = (0..k)
            .map(|i| Histogram::from_values(mapped.iter().map(|mv| mv[i]), 0.0, span, PDF_BINS))
            .collect();
        Self {
            dims,
            n_vectors: mapped.len(),
        }
    }

    /// Eq. 2: upper bound on the vectors inside `SQR(q', τ)` when the leaf
    /// cell width is `w`.
    pub fn n_max(&self, q_mapped: &[f32], tau: f32, cell_width: f32) -> f64 {
        let half = cell_width / 2.0;
        let frac = q_mapped
            .iter()
            .zip(self.dims.iter())
            .map(|(&q, h)| h.mass_in(q - tau - half, q + tau + half))
            .fold(f64::INFINITY, f64::min);
        frac * self.n_vectors as f64
    }
}

/// Expected verification cost (Eq. 1) of a sampled workload at grid depth
/// `m`, using real blocking for `C` and Eq. 2 for `N`.
fn expected_cost(
    m: usize,
    span: f32,
    workload: &MappedVectors,
    rv_sample: &MappedVectors,
    pdfs: &PivotSpacePdfs,
    taus: &[f32],
) -> Result<f64> {
    let params = GridParams::new(workload.num_pivots(), m, span)?;
    let hgq = HierarchicalGrid::build(params.clone(), workload)?;
    let hgrv = HierarchicalGrid::build_keys_only(params.clone(), rv_sample)?;
    let cell_width = params.cell_width(m);
    let mut total = 0.0f64;
    for &tau_frac in taus {
        let tau = tau_frac * span;
        let mut stats = SearchStats::new();
        let out = block(
            &hgq,
            &hgrv,
            workload,
            tau,
            LemmaFlags::all(),
            None,
            FastMap::default(),
            &mut stats,
        );
        for (q, cells) in &out.candidates {
            let nmax = pdfs.n_max(workload.get(*q as usize), tau, cell_width);
            total += nmax * cells.len() as f64;
        }
    }
    Ok(total)
}

/// Fit a parabola through three points around the discrete argmin and
/// return the fractional minimiser, mimicking the paper's gradient-descent
/// + ceiling step. Falls back to the discrete argmin at the range edges.
fn parabola_refine(costs: &[f64], argmin: usize) -> f64 {
    if argmin == 0 || argmin + 1 >= costs.len() {
        return (argmin + 1) as f64; // m is 1-based
    }
    let (y0, y1, y2) = (costs[argmin - 1], costs[argmin], costs[argmin + 1]);
    let denom = y0 - 2.0 * y1 + y2;
    if denom.abs() < 1e-12 {
        return (argmin + 1) as f64;
    }
    let offset = 0.5 * (y0 - y2) / denom;
    (argmin + 1) as f64 + offset.clamp(-1.0, 1.0)
}

/// Result of the optimal-m analysis, exposed for the Table VI companion
/// experiment ("optimal m obtained by analysis").
#[derive(Debug, Clone)]
pub struct LevelChoice {
    /// Expected cost per m (index 0 = m 1).
    pub costs: Vec<f64>,
    /// Fractional minimiser after parabola refinement.
    pub fractional_m: f64,
    /// Final integer choice: ceil(fractional), clamped to the legal range.
    pub chosen_m: usize,
}

/// Analyse the expected cost across m = 1..=MAX_LEVELS.
pub fn analyze_levels<M: Metric>(
    columns: &ColumnSet,
    rv_mapped: &MappedVectors,
    _pivots: &[Vec<f32>],
    _metric: &M,
    span: f32,
    seed: u64,
) -> Result<LevelChoice> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0571e5);

    // Workload: sampled repository vectors re-used as queries (option 1 in
    // Section III-E: "sample a subset of R as query workload").
    let n = rv_mapped.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    let workload_idx = &idx[..WORKLOAD_SAMPLE.min(n)];
    let k = rv_mapped.num_pivots();
    let mut wl_data = Vec::with_capacity(workload_idx.len() * k);
    for &i in workload_idx {
        wl_data.extend_from_slice(rv_mapped.get(i));
    }
    let workload = MappedVectors::from_raw(k, wl_data)?;

    // Sampled repository for blocking.
    let rv_idx = &idx[..RV_SAMPLE.min(n)];
    let mut rv_data = Vec::with_capacity(rv_idx.len() * k);
    for &i in rv_idx {
        rv_data.extend_from_slice(rv_mapped.get(i));
    }
    let rv_sample = MappedVectors::from_raw(k, rv_data)?;

    let pdfs = PivotSpacePdfs::build(rv_mapped, span);
    let _ = columns; // columns reserved for future workload-shaping

    let mut costs = Vec::with_capacity(MAX_LEVELS);
    for m in 1..=MAX_LEVELS {
        costs.push(expected_cost(
            m,
            span,
            &workload,
            &rv_sample,
            &pdfs,
            &WORKLOAD_TAUS,
        )?);
    }
    let argmin = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let fractional = parabola_refine(&costs, argmin);
    let chosen = (fractional.ceil() as usize).clamp(1, MAX_LEVELS);
    Ok(LevelChoice {
        costs,
        fractional_m: fractional,
        chosen_m: chosen,
    })
}

/// Choose the grid depth for index construction.
pub fn choose_levels<M: Metric>(
    columns: &ColumnSet,
    rv_mapped: &MappedVectors,
    pivots: &[Vec<f32>],
    metric: &M,
    span: f32,
    seed: u64,
) -> Result<usize> {
    Ok(analyze_levels(columns, rv_mapped, pivots, metric, span, seed)?.chosen_m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;
    use rand::Rng;

    fn random_columns(seed: u64, n_cols: usize, col_len: usize) -> ColumnSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 12;
        let mut columns = ColumnSet::new(dim);
        for c in 0..n_cols {
            let mut vecs = Vec::new();
            for _ in 0..col_len {
                let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
                v.iter_mut().for_each(|x| *x /= n);
                vecs.push(v);
            }
            let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
            columns
                .add_column("t", &format!("c{c}"), c as u64, refs)
                .unwrap();
        }
        columns
    }

    fn setup(seed: u64) -> (ColumnSet, MappedVectors, Vec<Vec<f32>>, f32) {
        let columns = random_columns(seed, 20, 40);
        let pivots: Vec<Vec<f32>> = (0..3)
            .map(|i| columns.store().get_raw(i * 11).to_vec())
            .collect();
        let mapped = MappedVectors::build(columns.store(), &pivots, &Euclidean, None).unwrap();
        let span = 2.0f32.max(mapped.max_coord()) + 1e-4;
        (columns, mapped, pivots, span)
    }

    #[test]
    fn pdfs_nmax_bounds_actual_counts() {
        let (_, mapped, _, span) = setup(1);
        let pdfs = PivotSpacePdfs::build(&mapped, span);
        let tau = 0.1 * span;
        // For a sample of query points, N̂ must upper-bound the true number
        // of vectors inside SQR (no dimension filters them).
        for qi in (0..mapped.len()).step_by(97) {
            let q = mapped.get(qi);
            let est = pdfs.n_max(q, tau, span / 16.0);
            let actual = (0..mapped.len())
                .filter(|&x| {
                    let xm = mapped.get(x);
                    q.iter().zip(xm.iter()).all(|(a, b)| (a - b).abs() <= tau)
                })
                .count() as f64;
            assert!(
                est + 1e-9 >= actual,
                "Eq.2 bound violated at q{qi}: est {est} < actual {actual}"
            );
        }
    }

    #[test]
    fn analyze_levels_returns_legal_choice() {
        let (columns, mapped, pivots, span) = setup(2);
        let choice = analyze_levels(&columns, &mapped, &pivots, &Euclidean, span, 7).unwrap();
        assert_eq!(choice.costs.len(), MAX_LEVELS);
        assert!((1..=MAX_LEVELS).contains(&choice.chosen_m));
        assert!(choice.fractional_m > 0.0);
        assert!(choice.costs.iter().all(|&c| c.is_finite() && c >= 0.0));
    }

    #[test]
    fn choice_is_deterministic() {
        let (columns, mapped, pivots, span) = setup(3);
        let a = choose_levels(&columns, &mapped, &pivots, &Euclidean, span, 9).unwrap();
        let b = choose_levels(&columns, &mapped, &pivots, &Euclidean, span, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parabola_refine_interior_and_edges() {
        // Symmetric parabola around index 2 (m = 3).
        let costs = vec![9.0, 4.0, 1.0, 4.0, 9.0];
        let frac = parabola_refine(&costs, 2);
        assert!((frac - 3.0).abs() < 1e-9);
        // Edge argmin falls back to the discrete value.
        assert_eq!(parabola_refine(&costs, 0), 1.0);
        assert_eq!(parabola_refine(&costs, 4), 5.0);
        // Skewed: vertex shifts toward the cheaper neighbour (m=3 side).
        let skew = vec![5.0, 1.0, 2.0, 8.0];
        let f = parabola_refine(&skew, 1);
        assert!(f > 2.0 && f < 3.0, "frac {f}");
    }
}
